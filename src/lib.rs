//! Umbrella crate for the Pahoehoe reproduction.
//!
//! Re-exports the workspace crates so that the `examples/` and `tests/`
//! directories at the repository root can exercise the whole system through
//! one dependency. Library users should depend on the individual crates
//! ([`pahoehoe`], [`erasure`], [`simnet`], …) directly.
//!
//! ```
//! use pahoehoe_repro::pahoehoe::cluster::{Cluster, ClusterConfig};
//!
//! let mut cluster = Cluster::build(ClusterConfig::paper_default(), 1);
//! cluster.put(b"hello", b"world".to_vec());
//! let report = cluster.run_to_convergence();
//! assert_eq!(report.amr_versions, 1);
//! assert_eq!(cluster.get(b"hello"), Some(b"world".to_vec()));
//! ```

pub use erasure;
pub use experiments;
pub use pahoehoe;
pub use simnet;
pub use stats;
