//! `pahoehoe-sim` — run a Pahoehoe scenario from the command line.
//!
//! A swiss-army driver for the simulated cluster: choose a workload, an
//! optimization preset, failures and a loss rate, and get the paper-style
//! per-message-kind report plus convergence statistics.
//!
//! ```text
//! USAGE: pahoehoe-sim [OPTIONS]
//!   --puts N            number of puts              [default: 20]
//!   --value-bytes N     object size in bytes        [default: 102400]
//!   --opt PRESET        naive|fsamr-s|fsamr-u|putamr|sibling|all [default: all]
//!   --drop-rate P       message drop probability    [default: 0.0]
//!   --fs-down N         FSs unavailable for 10 min  [default: 0]
//!   --kls-down PATTERN  0|1|2C|2P|3                 [default: 0]
//!   --seed N            simulation seed             [default: 42]
//!   --trace             print the first 40 traced messages
//! ```
//!
//! Example: reproduce one trial of the paper's Figure 7 "2-All" bar:
//!
//! ```text
//! cargo run --release --bin pahoehoe-sim -- --puts 100 --fs-down 2 --opt all
//! ```

use pahoehoe_repro::experiments::figures::{fs_outage, kls_outage, paper_layout};
use pahoehoe_repro::pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe_repro::pahoehoe::convergence::ConvergenceOptions;
use pahoehoe_repro::simnet::{FaultPlan, NetworkConfig};

struct Args {
    puts: usize,
    value_bytes: usize,
    opt: String,
    drop_rate: f64,
    fs_down: usize,
    kls_down: String,
    seed: u64,
    trace: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        puts: 20,
        value_bytes: 100 * 1024,
        opt: "all".into(),
        drop_rate: 0.0,
        fs_down: 0,
        kls_down: "0".into(),
        seed: 42,
        trace: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--puts" => args.puts = val("--puts")?.parse().map_err(|e| format!("--puts: {e}"))?,
            "--value-bytes" => {
                args.value_bytes = val("--value-bytes")?
                    .parse()
                    .map_err(|e| format!("--value-bytes: {e}"))?
            }
            "--opt" => args.opt = val("--opt")?,
            "--drop-rate" => {
                args.drop_rate = val("--drop-rate")?
                    .parse()
                    .map_err(|e| format!("--drop-rate: {e}"))?
            }
            "--fs-down" => {
                args.fs_down = val("--fs-down")?
                    .parse()
                    .map_err(|e| format!("--fs-down: {e}"))?
            }
            "--kls-down" => args.kls_down = val("--kls-down")?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--trace" => args.trace = true,
            "--help" | "-h" => {
                return Err("see the module docs at the top of pahoehoe-sim.rs".into())
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn preset(name: &str) -> Result<ConvergenceOptions, String> {
    Ok(match name {
        "naive" => ConvergenceOptions::naive(),
        "fsamr-s" => ConvergenceOptions::fs_amr_synchronized(),
        "fsamr-u" => ConvergenceOptions::fs_amr_unsynchronized(),
        "putamr" => ConvergenceOptions::put_amr(),
        "sibling" => ConvergenceOptions::sibling(),
        "all" => ConvergenceOptions::all(),
        other => return Err(format!("unknown preset {other}")),
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pahoehoe-sim: {e}");
            std::process::exit(2);
        }
    };
    let conv = match preset(&args.opt) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pahoehoe-sim: {e}");
            std::process::exit(2);
        }
    };

    let layout = paper_layout();
    let mut faults = FaultPlan::none();
    if args.fs_down > 0 {
        faults.merge(&fs_outage(layout, args.fs_down));
    }
    if args.kls_down != "0" {
        faults.merge(&kls_outage(layout, &args.kls_down));
    }

    let mut cfg = ClusterConfig::paper_default();
    cfg.layout = layout;
    cfg.convergence = conv;
    cfg.workload_puts = args.puts;
    cfg.workload_value_len = args.value_bytes;
    cfg.network = NetworkConfig::with_drop_rate(args.drop_rate);

    let mut cluster = Cluster::build_with_faults(cfg, args.seed, faults);
    if args.trace {
        cluster.sim_mut().enable_trace();
    }

    println!(
        "pahoehoe-sim: {} puts x {} B, opt={}, drop={}, fs-down={}, kls-down={}, seed={}",
        args.puts,
        args.value_bytes,
        args.opt,
        args.drop_rate,
        args.fs_down,
        args.kls_down,
        args.seed
    );
    let report = cluster.run_to_convergence();

    println!("\noutcome:        {:?}", report.outcome);
    println!("sim time:       {}", report.sim_time);
    println!(
        "puts:           {} attempted, {} succeeded",
        report.puts_attempted, report.puts_succeeded
    );
    println!(
        "versions:       {} AMR ({} excess), {} non-durable, {} stuck",
        report.amr_versions, report.excess_amr, report.non_durable, report.durable_not_amr
    );
    if !report.time_to_amr.is_empty() {
        let mid = &report.time_to_amr[report.time_to_amr.len() / 2];
        let max = report.time_to_amr.last().expect("non-empty");
        println!("time to AMR:    median {mid}, max {max}");
    }

    println!("\nper-kind traffic (client traffic excluded):");
    println!("{:22} {:>10} {:>14}", "kind", "count", "bytes");
    for (kind, stats) in report.metrics.iter() {
        if kind.starts_with("Client") {
            continue;
        }
        println!("{:22} {:>10} {:>14}", kind, stats.count, stats.bytes);
    }
    let (mut c, mut b) = (0u64, 0u64);
    for (kind, stats) in report.metrics.iter() {
        if !kind.starts_with("Client") {
            c += stats.count;
            b += stats.bytes;
        }
    }
    println!("{:22} {:>10} {:>14}", "TOTAL", c, b);

    if args.trace {
        if let Some(trace) = cluster.sim().trace() {
            println!("\nfirst traced messages:");
            for e in trace.events().iter().take(40) {
                println!(
                    "  {} {} -> {} {} ({} B) {:?}",
                    e.at, e.from, e.to, e.kind, e.bytes, e.disposition
                );
            }
        }
    }
}
