//! Property-based tests over whole-cluster behaviour: proptest generates
//! fault schedules, workloads and policies; the properties are the
//! paper's correctness claims.

use bytes::Bytes;
use pahoehoe_repro::pahoehoe::analysis;
use pahoehoe_repro::pahoehoe::client::{Client, ClientOp};
use pahoehoe_repro::pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout};
use pahoehoe_repro::pahoehoe::types::Key;
use pahoehoe_repro::pahoehoe::Policy;
use pahoehoe_repro::simnet::{FaultPlan, NetworkConfig, RunOutcome, SimDuration, SimTime};
use proptest::prelude::*;

fn layout() -> ClusterLayout {
    ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    }
}

/// A generated outage: which server, when, and for how long.
#[derive(Debug, Clone)]
struct Outage {
    kls: bool,
    dc: usize,
    idx: usize,
    start_secs: u64,
    dur_secs: u64,
}

fn outage_strategy() -> impl Strategy<Value = Outage> {
    (
        any::<bool>(),
        0usize..2,
        0usize..2, // for FSs this picks among the first two of three
        0u64..180,
        30u64..600,
    )
        .prop_map(|(kls, dc, idx, start_secs, dur_secs)| Outage {
            kls,
            dc,
            idx,
            start_secs,
            dur_secs,
        })
}

fn plan_from(outages: &[Outage]) -> FaultPlan {
    let l = layout();
    let mut plan = FaultPlan::none();
    for o in outages {
        let node = if o.kls {
            l.kls(o.dc, o.idx)
        } else {
            l.fs(o.dc, o.idx)
        };
        plan.add_node_outage(
            node,
            SimTime::ZERO + SimDuration::from_secs(o.start_secs),
            SimDuration::from_secs(o.dur_secs),
        );
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, // each case is a full cluster simulation
        .. ProptestConfig::default()
    })]

    /// Eventual consistency: under arbitrary finite outage schedules and
    /// moderate loss, every durable version reaches AMR and every put
    /// eventually succeeds.
    #[test]
    fn converges_under_arbitrary_outage_schedules(
        outages in proptest::collection::vec(outage_strategy(), 0..4),
        drop_pct in 0u32..8,
        seed in 0u64..1_000,
    ) {
        let mut cfg = ClusterConfig::paper_default();
        cfg.workload_puts = 4;
        cfg.workload_value_len = 4096;
        cfg.network = NetworkConfig::with_drop_rate(drop_pct as f64 / 100.0);
        let mut cluster =
            Cluster::build_with_faults(cfg, seed, plan_from(&outages));
        let report = cluster.run_to_convergence();
        prop_assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);
        prop_assert_eq!(report.puts_succeeded, 4);
        prop_assert_eq!(report.durable_not_amr, 0);

        // Check the AMR predicate globally, not just through the report.
        let topo = cluster.topology().clone();
        let fss: Vec<_> = topo.all_fss().collect();
        let klss: Vec<_> = topo.all_klss().collect();
        let durable = analysis::durable_versions(cluster.sim(), &fss);
        for ov in analysis::known_versions(cluster.sim(), &klss, &fss) {
            if durable.contains(&ov) {
                prop_assert!(analysis::is_amr(cluster.sim(), &topo, ov));
            }
        }
    }

    /// Round-trip integrity: whatever the value and (valid) policy,
    /// get(put(v)) == v after convergence.
    #[test]
    fn put_get_roundtrip_for_any_value_and_policy(
        value in proptest::collection::vec(any::<u8>(), 0..20_000),
        k in 1u8..=4,
        extra in 0u8..=4,
        seed in 0u64..1_000,
    ) {
        // n spread over 2 DCs with <=2 per FS and k fitting in one DC.
        let per_dc = (k + extra).min(6).max(k);
        let n = per_dc * 2;
        let policy = Policy::new(k, n, 2, 2);
        let mut cfg = ClusterConfig::paper_default();
        cfg.policy = policy;
        let mut cluster = Cluster::build(cfg, seed);
        cluster.put(b"prop", value.clone());
        let report = cluster.run_to_convergence();
        prop_assert_eq!(report.amr_versions, 1);
        prop_assert_eq!(cluster.get(b"prop"), Some(value));
    }

    /// Determinism: a run is a pure function of its seed, whatever the
    /// fault schedule.
    #[test]
    fn runs_are_deterministic_under_faults(
        outages in proptest::collection::vec(outage_strategy(), 0..3),
        seed in 0u64..1_000,
    ) {
        let run = || {
            let mut cfg = ClusterConfig::paper_default();
            cfg.workload_puts = 3;
            cfg.workload_value_len = 2048;
            let mut cluster =
                Cluster::build_with_faults(cfg, seed, plan_from(&outages));
            let r = cluster.run_to_convergence();
            (r.sim_time, r.metrics.total_count(), r.metrics.total_bytes())
        };
        prop_assert_eq!(run(), run());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// The client's scripted interface preserves per-key last-writer
    /// semantics: after converged sequential overwrites, the get returns
    /// the newest value for every key.
    #[test]
    fn last_writer_wins_per_key(
        writes in proptest::collection::vec((0u8..4, any::<u8>()), 1..12),
        seed in 0u64..1_000,
    ) {
        let mut cfg = ClusterConfig::paper_default();
        let l = layout();
        let mut cluster = Cluster::build(cfg.clone(), seed);
        let _ = &mut cfg;
        let mut expected: std::collections::BTreeMap<u8, u8> =
            std::collections::BTreeMap::new();
        {
            let client_id = l.client();
            let sim = cluster.sim_mut();
            let client = sim.actor_mut::<Client>(client_id);
            for &(key_id, byte) in &writes {
                expected.insert(key_id, byte);
                client.enqueue(ClientOp::Put {
                    key: Key::from_u64(u64::from(key_id)),
                    value: Bytes::from(vec![byte; 512]),
                    policy: Policy::paper_default(),
                });
            }
            sim.schedule_timer(client_id, SimDuration::ZERO, 1);
        }
        let report = cluster.run_to_convergence();
        prop_assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);
        for (key_id, byte) in expected {
            let client_id = l.client();
            let sim = cluster.sim_mut();
            let client = sim.actor_mut::<Client>(client_id);
            let before = client.gets_done().len();
            client.enqueue(ClientOp::Get { key: Key::from_u64(u64::from(key_id)) });
            sim.schedule_timer(client_id, SimDuration::ZERO, 1);
            sim.run_until(move |s| {
                s.actor::<Client>(client_id).gets_done().len() > before
            });
            let outcome = &cluster.client().gets_done()[before];
            let (_, v) = outcome.result.as_ref().expect("converged key readable");
            prop_assert_eq!(v[0], byte, "key {}", key_id);
        }
    }
}
