//! Cross-crate integration tests: the erasure codec, the discrete-event
//! simulator and the Pahoehoe protocols working together.

use pahoehoe_repro::pahoehoe::client::Client;
use pahoehoe_repro::pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout};
use pahoehoe_repro::pahoehoe::convergence::ConvergenceOptions;
use pahoehoe_repro::pahoehoe::Policy;
use pahoehoe_repro::simnet::{FaultPlan, RunOutcome, SimDuration, SimTime};

fn small(puts: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = puts;
    cfg.workload_value_len = 8 * 1024;
    cfg
}

#[test]
fn values_survive_the_full_pipeline_bit_exactly() {
    // Values are encoded by the proxy, scattered as fragments, and
    // reassembled by a get: check byte-exactness across many sizes,
    // including sizes not divisible by k and the empty value.
    let mut cluster = Cluster::build(ClusterConfig::paper_default(), 31);
    let sizes = [0usize, 1, 3, 4, 5, 1023, 4096, 9999, 100 * 1024];
    for (i, &size) in sizes.iter().enumerate() {
        let value = Client::synthetic_value(i as u64, size).to_vec();
        cluster.put(format!("obj-{size}").as_bytes(), value);
    }
    let report = cluster.run_to_convergence();
    assert_eq!(report.amr_versions, sizes.len());
    for (i, &size) in sizes.iter().enumerate() {
        let expect = Client::synthetic_value(i as u64, size).to_vec();
        assert_eq!(
            cluster.get(format!("obj-{size}").as_bytes()),
            Some(expect),
            "size {size}"
        );
    }
}

#[test]
fn all_optimization_configs_reach_the_same_amr_state() {
    // Optimizations change costs, never outcomes: every configuration
    // converges the same workload to the same number of AMR versions.
    let configs = [
        ConvergenceOptions::naive(),
        ConvergenceOptions::fs_amr_synchronized(),
        ConvergenceOptions::fs_amr_unsynchronized(),
        ConvergenceOptions::put_amr(),
        ConvergenceOptions::sibling(),
        ConvergenceOptions::all(),
    ];
    for conv in configs {
        let mut cfg = small(8);
        cfg.convergence = conv.clone();
        let mut cluster = Cluster::build(cfg, 5);
        let report = cluster.run_to_convergence();
        assert_eq!(report.outcome, RunOutcome::PredicateSatisfied, "{conv:?}");
        assert_eq!(report.amr_versions, 8, "{conv:?}");
        assert_eq!(report.durable_not_amr, 0, "{conv:?}");
        assert_eq!(report.non_durable, 0, "{conv:?}");
    }
}

#[test]
fn optimization_cost_ordering_matches_the_paper() {
    // Fig. 5's ordering must hold for message counts on any seed.
    let count = |conv: ConvergenceOptions, seed| {
        let mut cfg = small(10);
        cfg.convergence = conv;
        let mut cluster = Cluster::build(cfg, seed);
        let r = cluster.run_to_convergence();
        // Exclude client traffic like the experiments do.
        r.metrics.total_count()
            - r.metrics.kind("ClientPutReq").count
            - r.metrics.kind("ClientPutRep").count
    };
    for seed in [1, 77] {
        let naive = count(ConvergenceOptions::naive(), seed);
        let fsamr_s = count(ConvergenceOptions::fs_amr_synchronized(), seed);
        let fsamr_u = count(ConvergenceOptions::fs_amr_unsynchronized(), seed);
        let all = count(ConvergenceOptions::all(), seed);
        assert!(fsamr_s > naive, "seed {seed}: {fsamr_s} vs {naive}");
        assert!(fsamr_u < naive, "seed {seed}: {fsamr_u} vs {naive}");
        assert!(all < fsamr_u, "seed {seed}: {all} vs {fsamr_u}");
    }
}

#[test]
fn sibling_recovery_cuts_recovery_bytes() {
    // Fig. 7's headline: with sibling fragment recovery, rebuilding after
    // an outage retrieves k fragments once instead of once per FS.
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let retrieve_bytes = |sibling: bool, seed| {
        let mut conv = ConvergenceOptions::all();
        conv.sibling_recovery = sibling;
        let mut cfg = small(6);
        cfg.convergence = conv;
        let mut faults = FaultPlan::none();
        faults.add_node_outage(layout.fs(0, 0), SimTime::ZERO, SimDuration::from_mins(10));
        faults.add_node_outage(layout.fs(1, 0), SimTime::ZERO, SimDuration::from_mins(10));
        let mut cluster = Cluster::build_with_faults(cfg, seed, faults);
        let r = cluster.run_to_convergence();
        assert_eq!(r.durable_not_amr, 0);
        r.metrics.kind("RetrieveFragRep").bytes
    };
    let with = retrieve_bytes(true, 3);
    let without = retrieve_bytes(false, 3);
    assert!(
        with * 2 < without,
        "sibling recovery should at least halve retrieval bytes: {with} vs {without}"
    );
}

#[test]
fn kls_partition_is_repaired_with_fs_decide_locs() {
    // Fig. 8's 2P case: both KLSs of the remote DC unreachable during the
    // puts, so no locations exist for that DC until convergence repairs
    // the metadata through FsDecideLocs + LocsIndication.
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let mut faults = FaultPlan::none();
    for i in 0..2 {
        faults.add_node_outage(layout.kls(1, i), SimTime::ZERO, SimDuration::from_mins(10));
    }
    let mut cluster = Cluster::build_with_faults(small(5), 9, faults);
    let report = cluster.run_to_convergence();
    assert_eq!(report.amr_versions, 5);
    assert!(report.metrics.kind("FSDecideLocsReq").count > 0);
    assert!(report.metrics.kind("LocsIndication").count > 0);
    assert!(
        report.metrics.kind("SiblingStoreReq").count > 0,
        "remote-DC fragments regenerated via sibling recovery"
    );
}

#[test]
fn replication_is_the_k1_special_case() {
    // §6: Pahoehoe "supports both erasure codes and replication" —
    // replication is the (k = 1, n) code.
    let mut cfg = ClusterConfig::paper_default();
    cfg.policy = Policy::new(1, 4, 2, 2);
    let mut cluster = Cluster::build(cfg, 13);
    cluster.put(b"replicated", vec![0x42; 2000]);
    let report = cluster.run_to_convergence();
    assert_eq!(report.amr_versions, 1);
    assert_eq!(cluster.get(b"replicated"), Some(vec![0x42; 2000]));
}

#[test]
fn give_up_age_stops_hopeless_convergence() {
    // §3.5: versions that can never achieve AMR (fewer than k durable
    // fragments) are retried with exponential backoff and abandoned after
    // the give-up age ("in practice, we set this parameter to two
    // months"; shortened here). We blank out five of six FSs for the
    // first minute so the early put attempts fail with only two durable
    // fragments — non-durable versions that convergence can never fix.
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let give_up = SimDuration::from_mins(10);
    let mut conv = ConvergenceOptions::all();
    conv.give_up_age = Some(give_up);
    let mut cfg = small(1);
    cfg.convergence = conv;
    let mut faults = FaultPlan::none();
    for (dc, i) in [(0, 1), (0, 2), (1, 0), (1, 1), (1, 2)] {
        faults.add_node_outage(layout.fs(dc, i), SimTime::ZERO, SimDuration::from_secs(60));
    }
    let mut cluster = Cluster::build_with_faults(cfg, 21, faults);
    let report = cluster.run_to_convergence();
    // The eventual attempt succeeded; the early ones left non-durable
    // versions behind.
    assert_eq!(report.puts_succeeded, 1);
    assert!(report.puts_attempted > 1, "outage forced retries");
    assert!(report.non_durable >= 1);
    assert_eq!(report.durable_not_amr, 0);

    // Let the give-up age elapse: every FS abandons the hopeless
    // versions instead of gossiping forever.
    let deadline = cluster.sim().now() + give_up + SimDuration::from_mins(15);
    cluster.sim_mut().run_until_time(deadline);
    let mut gave_up_total = 0;
    for dc in 0..2 {
        for i in 0..3 {
            let fs = cluster.fs(layout.fs(dc, i));
            assert_eq!(
                fs.pending_versions().count(),
                0,
                "fs({dc},{i}) still has pending work"
            );
            gave_up_total += fs.gave_up_versions().count();
        }
    }
    assert!(
        gave_up_total >= 1,
        "someone abandoned the hopeless versions"
    );
}

#[test]
fn three_data_centers_converge_too() {
    // The protocols generalize beyond the paper's 2-DC setup: a 3-DC
    // cluster with an (k=4, n=18) policy (6 fragments per DC).
    let mut cfg = ClusterConfig::paper_default();
    cfg.layout = ClusterLayout {
        dcs: 3,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    cfg.policy = Policy::new(4, 18, 3, 2);
    cfg.workload_puts = 5;
    cfg.workload_value_len = 8 * 1024;
    let mut cluster = Cluster::build(cfg, 23);
    let report = cluster.run_to_convergence();
    assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);
    assert_eq!(report.amr_versions, 5);
    // 18 fragments stored per put.
    assert_eq!(report.metrics.kind("StoreFragmentReq").count, 5 * 18);
    // And with an entire DC partitioned away, values still decode.
    let layout = cluster.layout();
    let mut faults = FaultPlan::none();
    let others: Vec<_> = layout
        .dc_nodes(0)
        .into_iter()
        .chain(layout.dc_nodes(1))
        .chain([layout.proxy(), layout.client()])
        .collect();
    faults.add_partition(
        &others,
        &layout.dc_nodes(2),
        SimTime::ZERO,
        SimDuration::from_mins(10),
    );
    let mut cfg = ClusterConfig::paper_default();
    cfg.layout = layout;
    cfg.policy = Policy::new(4, 18, 3, 2);
    let mut cluster = Cluster::build_with_faults(cfg, 24, faults);
    cluster.put(b"global", vec![5; 4096]);
    cluster
        .sim_mut()
        .run_until_time(SimTime::ZERO + SimDuration::from_secs(30));
    assert_eq!(cluster.get(b"global"), Some(vec![5; 4096]));
}

#[test]
fn lan_wan_latency_classes_speed_up_local_work() {
    // Opt-in LAN/WAN latency refinement: intra-DC at 1-3 ms instead of
    // the paper's uniform 10-30 ms. In a single-DC deployment every link
    // is LAN, so full redundancy lands an order of magnitude sooner;
    // outcomes are unchanged.
    let finish_time = |lan: bool| {
        let mut cfg = ClusterConfig::paper_default();
        cfg.layout = ClusterLayout {
            dcs: 1,
            kls_per_dc: 2,
            fs_per_dc: 6,
        };
        cfg.policy = Policy::new(4, 12, 1, 2);
        cfg.workload_puts = 5;
        cfg.workload_value_len = 8 * 1024;
        if lan {
            cfg.network = cfg.layout.lan_wan_network(
                cfg.network.clone(),
                SimDuration::from_millis(1),
                SimDuration::from_millis(3),
            );
        }
        let mut cluster = Cluster::build(cfg, 29);
        let report = cluster.run_to_convergence();
        assert_eq!(report.amr_versions, 5);
        *report.time_to_amr.last().expect("versions exist")
    };
    let with_lan = finish_time(true);
    let uniform = finish_time(false);
    assert!(
        with_lan.as_micros() * 3 < uniform.as_micros(),
        "all-LAN deployment converges much faster: {with_lan} vs {uniform}"
    );
}

#[test]
fn proxy_failure_mid_put_yields_excess_amr() {
    // §5's setup notes that message drops also model "a proxy failing
    // after completing only some portion of a put operation". Here the
    // proxy loses every server link right after its fragment stores go
    // out: the version becomes durable (the stores were sent) but the
    // acknowledgments never return, so the client is told failure and
    // retries. Convergence finishes the orphaned version anyway — the
    // paper's "excess AMR" outcome.
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let mut faults = FaultPlan::none();
    // One-way modeling isn't supported; an outage window starting ~70 ms
    // in (after the decide+store sends at ~20-50 ms, before the replies
    // arrive) cuts the proxy off for 2 minutes.
    faults.add_node_outage(
        layout.proxy(),
        SimTime::ZERO + SimDuration::from_micros(71_000),
        SimDuration::from_secs(120),
    );
    let mut cluster = Cluster::build_with_faults(small(1), 19, faults);
    let report = cluster.run_to_convergence();
    assert_eq!(report.puts_succeeded, 1, "the retry eventually lands");
    assert!(report.puts_attempted >= 2, "first attempt was orphaned");
    assert!(
        report.excess_amr >= 1,
        "the orphaned-but-durable version converged: {report:?}"
    );
    assert_eq!(report.durable_not_amr, 0);
}

#[test]
fn multiple_failures_compose() {
    // An FS outage + a KLS outage + 5% loss, all at once.
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let mut faults = FaultPlan::none();
    faults.add_node_outage(layout.fs(1, 2), SimTime::ZERO, SimDuration::from_mins(10));
    faults.add_node_outage(layout.kls(0, 1), SimTime::ZERO, SimDuration::from_mins(10));
    let mut cfg = small(6);
    cfg.network = pahoehoe_repro::simnet::NetworkConfig::with_drop_rate(0.05);
    let mut cluster = Cluster::build_with_faults(cfg, 17, faults);
    let report = cluster.run_to_convergence();
    assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);
    assert_eq!(report.puts_succeeded, 6);
    assert_eq!(report.durable_not_amr, 0);
}
