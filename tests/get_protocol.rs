//! Get-protocol behaviour: paged timestamp retrieval (§3.5), safe
//! fallback across non-AMR versions, and abort semantics.

use pahoehoe_repro::pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout, ExtraProxy};
use pahoehoe_repro::simnet::{FaultPlan, SimDuration, SimTime};

fn layout() -> ClusterLayout {
    ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    }
}

/// Builds the paging scenario: version v1 of a key converges, then the
/// primary proxy's links to five of six FSs are cut, so every further put
/// attempt of that key leaves a failed, two-fragment version behind. A
/// reader in the other DC (whose proxy is unblocked) must page through
/// the pile of dead versions and return v1.
#[test]
fn get_pages_through_failed_versions_to_the_latest_recoverable() {
    let l = layout();
    let mut cfg = ClusterConfig::paper_default();
    cfg.extra_proxies = vec![ExtraProxy {
        dc: 1,
        clock_skew: SimDuration::ZERO,
    }];
    // Small pages force iteration (the paper's iterative retrieval).
    cfg.proxy.ts_page_size = 2;

    // Cut the primary proxy's links to all FSs except fs(0,0), starting
    // after v1 has converged (60 s in).
    let cut_start = SimTime::ZERO + SimDuration::from_secs(60);
    let forever = SimDuration::from_secs(1_000_000);
    let mut faults = FaultPlan::none();
    for (dc, i) in [(0, 1), (0, 2), (1, 0), (1, 1), (1, 2)] {
        faults.add_link_outage(l.proxy(), l.fs(dc, i), cut_start, forever);
    }

    let mut cluster = Cluster::build_with_faults(cfg, 11, faults);
    cluster.put(b"paged", b"v1-durable".to_vec());
    let r = cluster.run_to_convergence();
    assert_eq!(r.amr_versions, 1);

    // Enter the degraded window and pile up failed attempts of the same
    // key (the client retries a put that can never reach k fragments).
    cluster
        .sim_mut()
        .run_until_time(cut_start + SimDuration::from_secs(1));
    cluster.put(b"paged", b"v2-unreachable".to_vec());
    cluster
        .sim_mut()
        .run_until_time(cut_start + SimDuration::from_secs(30));

    // The reader in DC1 sees: several newer versions, none decodable
    // (five FSs answer ⊥ for them), each provably non-AMR -> fall back,
    // page by page, to v1.
    let got = cluster.get_from(0, b"paged");
    assert_eq!(got, Some(b"v1-durable".to_vec()));

    // Paging actually happened: more than one RetrieveTs round trip per
    // KLS for this single get (4 KLSs x 1 page would be 4 requests; the
    // failed-version pile spans multiple pages of size 2).
    let retrieves = cluster.sim().metrics().kind("RetrieveTsReq").count;
    assert!(retrieves > 8, "expected paging, saw {retrieves} requests");
}

#[test]
fn get_aborts_rather_than_returning_stale_data_without_proof() {
    // All FSs unreachable: retrieving the (AMR) newest version stalls
    // with no ⊥ evidence, so the get must abort — not fall back —
    // preserving regular semantics.
    let l = layout();
    let mut faults = FaultPlan::none();
    let forever = SimDuration::from_secs(1_000_000);
    let outage_start = SimTime::ZERO + SimDuration::from_secs(120);
    for dc in 0..2 {
        for i in 0..3 {
            faults.add_node_outage(l.fs(dc, i), outage_start, forever);
        }
    }
    let mut cfg = ClusterConfig::paper_default();
    cfg.max_sim_time = SimDuration::from_secs(600);
    let mut cluster = Cluster::build_with_faults(cfg, 5, faults);
    cluster.put(b"k", b"v1".to_vec());
    cluster.put(b"k", b"v2".to_vec());
    let r = cluster.run_to_convergence();
    assert_eq!(r.amr_versions, 2, "both versions converged pre-outage");
    cluster
        .sim_mut()
        .run_until_time(outage_start + SimDuration::from_secs(5));
    // v2 is AMR; with every FS dark there is no ⊥ and no incomplete
    // metadata — no proof of non-AMR — so the get aborts instead of
    // returning v1.
    assert_eq!(cluster.get(b"k"), None, "abort, never stale data");
}

#[test]
fn paged_and_unpaged_gets_agree() {
    // Same history read with page sizes 1 and 100: identical results.
    let value_of = |ps: u16| {
        let mut cfg = ClusterConfig::paper_default();
        cfg.proxy.ts_page_size = ps;
        let mut cluster = Cluster::build(cfg, 9);
        for gen in 0..6u8 {
            cluster.put(b"multi", vec![gen; 256]);
            cluster.run_to_convergence();
        }
        cluster.get(b"multi")
    };
    let paged = value_of(1);
    let unpaged = value_of(100);
    assert_eq!(paged, unpaged);
    assert_eq!(paged, Some(vec![5u8; 256]));
}

#[test]
fn empty_page_size_one_still_finds_single_version() {
    let mut cfg = ClusterConfig::paper_default();
    cfg.proxy.ts_page_size = 1;
    let mut cluster = Cluster::build(cfg, 3);
    cluster.put(b"one", vec![7; 100]);
    cluster.run_to_convergence();
    assert_eq!(cluster.get(b"one"), Some(vec![7; 100]));
    assert_eq!(cluster.get(b"absent"), None);
}
