//! Cross-WAN traffic accounting via the simulator's message trace.
//!
//! Figure 8's discussion makes a claim the aggregate counters cannot
//! check directly: during recovery from a metadata partition, sibling
//! fragment recovery "prevents all FSs from independently transferring
//! fragments needed for their recovery over the WAN; instead, only one of
//! the FSs performs this recovery on behalf of the others", reducing
//! *WAN* usage specifically (the regenerated fragments then travel over
//! the LAN). With per-message traces we can measure exactly the bytes
//! crossing the inter-data-center boundary.

use pahoehoe_repro::pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout};
use pahoehoe_repro::pahoehoe::convergence::ConvergenceOptions;
use pahoehoe_repro::simnet::{FaultPlan, NodeId, SimDuration, SimTime};

fn layout() -> ClusterLayout {
    ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    }
}

/// Runs the Figure-8 "2P" scenario (both remote-DC KLSs down during the
/// puts) and returns (cross-WAN bytes, total bytes).
fn wan_bytes(sibling_recovery: bool, seed: u64) -> (u64, u64) {
    let l = layout();
    let mut faults = FaultPlan::none();
    for i in 0..2 {
        faults.add_node_outage(l.kls(1, i), SimTime::ZERO, SimDuration::from_mins(10));
    }
    let mut conv = ConvergenceOptions::all();
    conv.sibling_recovery = sibling_recovery;
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 10;
    cfg.workload_value_len = 64 * 1024;
    cfg.convergence = conv;
    let mut cluster = Cluster::build_with_faults(cfg, seed, faults);
    cluster.sim_mut().enable_trace();
    let report = cluster.run_to_convergence();
    assert_eq!(report.durable_not_amr, 0);
    assert_eq!(report.amr_versions, 10);

    // DC0 side includes the proxy and client (they live there).
    let mut side_a: Vec<NodeId> = l.dc_nodes(0);
    side_a.push(l.proxy());
    side_a.push(l.client());
    let side_b = l.dc_nodes(1);
    let trace = cluster.sim().trace().expect("tracing enabled");
    (
        trace.bytes_between(&side_a, &side_b),
        cluster.sim().metrics().total_bytes(),
    )
}

#[test]
fn sibling_recovery_cuts_wan_bytes_specifically() {
    let (wan_with, _) = wan_bytes(true, 7);
    let (wan_without, _) = wan_bytes(false, 7);

    // Fragments are 16 KiB (64 KiB / k=4). Baseline WAN cost present in
    // both runs: the put sends 6 fragments per object to DC1 = 96 KiB per
    // object. Recovery-from-DC0 adds WAN retrievals: with sibling
    // recovery one FS pulls k=4 fragments per object (64 KiB); without,
    // each of the three DC1 FSs pulls at least k (>= 192 KiB).
    assert!(
        wan_without > wan_with,
        "naive recovery must cost more WAN: {wan_without} vs {wan_with}"
    );
    let saved = wan_without - wan_with;
    // At least one object-worth of duplicate k-fragment transfers per
    // object version is saved (2 extra FSs x 4 fragments x 16 KiB x 10
    // objects minus protocol noise).
    assert!(
        saved > 10 * 8 * 16 * 1024 / 2,
        "savings too small: {saved} bytes"
    );
}

#[test]
fn fragment_stores_respect_dc_locality_during_partition() {
    // During the 2P window the proxy has no DC1 locations, so *no*
    // StoreFragmentReq crosses the WAN until convergence repairs the
    // metadata after the outage lifts.
    let l = layout();
    let mut faults = FaultPlan::none();
    for i in 0..2 {
        faults.add_node_outage(l.kls(1, i), SimTime::ZERO, SimDuration::from_mins(10));
    }
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 5;
    cfg.workload_value_len = 32 * 1024;
    let mut cluster = Cluster::build_with_faults(cfg, 9, faults);
    cluster.sim_mut().enable_trace();
    cluster.run_to_convergence();

    let trace = cluster.sim().trace().expect("enabled");
    let dc1: Vec<NodeId> = l.dc_nodes(1);
    let cross_stores: Vec<_> = trace
        .of_kind("StoreFragmentReq")
        .filter(|e| dc1.contains(&e.to))
        .collect();
    assert!(
        cross_stores.is_empty(),
        "proxy never learned DC1 locations, so no direct stores there: {cross_stores:?}"
    );
    // DC1's fragments arrived via sibling pushes instead.
    assert!(trace.of_kind("SiblingStoreReq").count() > 0);
}
