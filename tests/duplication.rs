//! Idempotence under message duplication.
//!
//! The paper's system model assumes "point-to-point channels with fair
//! losses and **bounded message duplication**" (§3.1), so every protocol
//! handler must be idempotent: stores, converge probes, indications and
//! recovery pushes may all arrive twice.

use pahoehoe_repro::pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout};
use pahoehoe_repro::simnet::{FaultPlan, NetworkConfig, RunOutcome, SimDuration, SimTime};

#[test]
fn cluster_state_is_identical_under_full_duplication() {
    // Every message delivered twice: the workload must converge to
    // exactly the same logical state (same AMR count, same values).
    let run = |duplicate_rate: f64| {
        let mut cfg = ClusterConfig::paper_default();
        cfg.workload_puts = 8;
        cfg.workload_value_len = 4096;
        cfg.network = NetworkConfig {
            duplicate_rate,
            ..NetworkConfig::paper_default()
        };
        let mut cluster = Cluster::build(cfg, 77);
        let report = cluster.run_to_convergence();
        assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);
        (
            report.amr_versions,
            report.non_durable,
            report.puts_succeeded,
        )
    };
    assert_eq!(run(0.0), run(1.0));
    assert_eq!(run(1.0), (8, 0, 8));
}

#[test]
fn duplicated_stores_do_not_double_fragments() {
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 3;
    cfg.workload_value_len = 2048;
    cfg.network = NetworkConfig {
        duplicate_rate: 1.0,
        ..NetworkConfig::paper_default()
    };
    let mut cluster = Cluster::build(cfg, 5);
    let report = cluster.run_to_convergence();
    assert_eq!(report.amr_versions, 3);
    // Each FS holds exactly its assigned fragments — duplication never
    // inflates the stores.
    let layout = cluster.layout();
    let mut total_fragments = 0;
    for dc in 0..2 {
        for i in 0..3 {
            let fs = cluster.fs(layout.fs(dc, i));
            for ov in fs.known_versions() {
                let entry = fs.entry(ov).expect("known");
                assert_eq!(
                    entry.fragments.len(),
                    entry.meta.fragments_of(layout.fs(dc, i)).len(),
                    "exactly the assigned fragments"
                );
                total_fragments += entry.fragments.len();
            }
        }
    }
    assert_eq!(total_fragments, 3 * 12);
    assert!(cluster.sim().metrics().duplicated() > 0);
}

#[test]
fn duplication_combined_with_loss_and_outage_still_converges() {
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let mut faults = FaultPlan::none();
    faults.add_node_outage(layout.fs(1, 1), SimTime::ZERO, SimDuration::from_mins(10));
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 5;
    cfg.workload_value_len = 4096;
    cfg.network = NetworkConfig {
        duplicate_rate: 0.2,
        drop_rate: 0.05,
        ..NetworkConfig::paper_default()
    };
    let mut cluster = Cluster::build_with_faults(cfg, 31, faults);
    let report = cluster.run_to_convergence();
    assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);
    assert_eq!(report.puts_succeeded, 5);
    assert_eq!(report.durable_not_amr, 0);
    // And reads return correct data afterwards.
    let v = cluster.get(b"");
    assert_eq!(v, None, "unknown key still fails cleanly");
}
