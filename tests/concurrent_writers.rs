//! Concurrent-writer tests: multiple proxies in different data centers
//! with loosely synchronized clocks (§3.1).
//!
//! "Pahoehoe orders concurrent puts in the order they were received,
//! subject to the synchronization limits of NTP. This order matches
//! users' expected order for partitioned data centers when they happen to
//! access different ones during the partition."

use pahoehoe_repro::pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout, ExtraProxy};
use pahoehoe_repro::simnet::{FaultPlan, SimDuration, SimTime};

fn layout() -> ClusterLayout {
    ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    }
}

fn two_proxy_config(skew: SimDuration) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default();
    cfg.extra_proxies = vec![ExtraProxy {
        dc: 1,
        clock_skew: skew,
    }];
    cfg
}

#[test]
fn writers_in_both_dcs_converge_to_one_history() {
    let mut cluster = Cluster::build(two_proxy_config(SimDuration::ZERO), 1);
    // Interleave writers on different keys.
    cluster.put(b"from-dc0", vec![0; 2048]);
    cluster.put_from(0, b"from-dc1", vec![1; 2048]);
    let report = cluster.run_to_convergence();
    assert_eq!(report.puts_succeeded, 2);
    assert_eq!(report.amr_versions, 2);
    // Both values readable from both sides.
    assert_eq!(cluster.get(b"from-dc1"), Some(vec![1; 2048]));
    assert_eq!(cluster.get_from(0, b"from-dc0"), Some(vec![0; 2048]));
}

#[test]
fn later_clock_wins_for_same_key_writes() {
    // Sequential-but-close writes to the same key from the two DCs: the
    // version with the later (clock, proxy-id) timestamp is what gets
    // return after convergence.
    let mut cluster = Cluster::build(two_proxy_config(SimDuration::ZERO), 2);
    cluster.put(b"shared", b"dc0-first".to_vec());
    let r = cluster.run_to_convergence();
    assert_eq!(r.amr_versions, 1);
    cluster.put_from(0, b"shared", b"dc1-second".to_vec());
    cluster.run_to_convergence();
    assert_eq!(cluster.get(b"shared"), Some(b"dc1-second".to_vec()));
    assert_eq!(cluster.get_from(0, b"shared"), Some(b"dc1-second".to_vec()));
}

#[test]
fn clock_skew_orders_concurrent_partitioned_writes() {
    // During a WAN partition, both sides accept a write to the same key.
    // DC1's proxy clock runs 30 s ahead; after the partition heals, both
    // versions converge and every reader sees DC1's (later-stamped)
    // version, regardless of true write order.
    let l = layout();
    let mut side_a = l.dc_nodes(0);
    side_a.push(l.proxy());
    side_a.push(l.client());
    let mut side_b = l.dc_nodes(1);
    // Extra pair ids follow the primary client.
    let extra_proxy = pahoehoe_repro::simnet::NodeId::new(l.client().index() as u32 + 1);
    let extra_client = pahoehoe_repro::simnet::NodeId::new(l.client().index() as u32 + 2);
    side_b.push(extra_proxy);
    side_b.push(extra_client);

    let mut faults = FaultPlan::none();
    faults.add_partition(&side_a, &side_b, SimTime::ZERO, SimDuration::from_mins(10));

    let mut cluster =
        Cluster::build_with_faults(two_proxy_config(SimDuration::from_secs(30)), 3, faults);
    // Sanity: the configured pair got the ids we partitioned.
    assert_eq!(cluster.extra_pair(0), (extra_proxy, extra_client));

    // DC0 writes *after* DC1 in real time, but DC1's skewed clock stamps
    // its version later.
    cluster.put_from(0, b"contested", b"dc1-skewed-ahead".to_vec());
    cluster.put(b"contested", b"dc0-actually-later".to_vec());
    let report = cluster.run_to_convergence();
    assert_eq!(report.puts_succeeded, 2);
    assert_eq!(report.durable_not_amr, 0);

    // Both versions exist; the get returns the newest timestamp, which
    // belongs to DC1 thanks to its +30 s clock.
    assert_eq!(
        cluster.get(b"contested"),
        Some(b"dc1-skewed-ahead".to_vec())
    );
    assert_eq!(
        cluster.get_from(0, b"contested"),
        Some(b"dc1-skewed-ahead".to_vec())
    );
}

#[test]
fn proxy_id_breaks_exact_clock_ties() {
    // With identical clocks, two writes at the same instant to the same
    // key are ordered by the proxies' unique ids — deterministically,
    // with no lost update: one version wins everywhere.
    let mut cluster = Cluster::build(two_proxy_config(SimDuration::ZERO), 4);
    // Enqueue both before running: both clients fire at t=0 and the two
    // proxies stamp the same clock microsecond.
    cluster.put(b"tie", b"writer-0".to_vec());
    cluster.put_from(0, b"tie", b"writer-1".to_vec());
    let report = cluster.run_to_convergence();
    assert_eq!(report.puts_succeeded, 2);
    let a = cluster.get(b"tie").expect("readable");
    let b = cluster.get_from(0, b"tie").expect("readable");
    assert_eq!(a, b, "both sides agree on the winner");
    // The higher proxy id (the extra proxy, uid 1) wins clock ties.
    assert_eq!(a, b"writer-1".to_vec());
}
