//! The paper's §2 durability claims for the default policy, tested as
//! specifications:
//!
//! "This policy has the same storage overhead as triple replication, but
//! can tolerate many more failure scenarios: up to eight simultaneous
//! disk failures; or a network partition between data centers in
//! conjunction with either two simultaneous disk failures or a single
//! unavailable FS."

use pahoehoe_repro::pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout};
use pahoehoe_repro::pahoehoe::fs::Fs;
use pahoehoe_repro::simnet::{FaultPlan, SimDuration, SimTime};

fn layout() -> ClusterLayout {
    ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    }
}

/// A converged cluster holding one object.
fn seeded(faults: FaultPlan, seed: u64) -> Cluster {
    let mut cfg = ClusterConfig::paper_default();
    let mut cluster = Cluster::build_with_faults(cfg.clone(), seed, faults);
    let _ = &mut cfg;
    cluster.put(b"precious", vec![0x5A; 40 * 1024]);
    let r = cluster.run_to_convergence();
    assert_eq!(r.amr_versions, 1);
    cluster
}

#[test]
fn storage_overhead_equals_triple_replication() {
    let mut cluster = seeded(FaultPlan::none(), 1);
    let stored = cluster.sim().metrics().kind("StoreFragmentReq").bytes;
    let user = 40 * 1024;
    let overhead = stored as f64 / user as f64;
    assert!(
        (2.9..3.1).contains(&overhead),
        "3x overhead like triple replication, got {overhead:.2}x"
    );
    assert_eq!(cluster.get(b"precious"), Some(vec![0x5A; 40 * 1024]));
}

#[test]
fn tolerates_eight_simultaneous_disk_failures() {
    let mut cluster = seeded(FaultPlan::none(), 2);
    let l = layout();
    // Destroy eight of the twelve disks (two whole FSs per DC).
    let now = cluster.sim().now();
    for (dc, i) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
        for disk in 0..2 {
            cluster
                .sim_mut()
                .actor_mut::<Fs>(l.fs(dc, i))
                .destroy_disk(disk, now);
        }
    }
    assert_eq!(
        cluster.get(b"precious"),
        Some(vec![0x5A; 40 * 1024]),
        "any 4 surviving fragments decode"
    );
}

#[test]
fn tolerates_partition_plus_two_disk_failures() {
    // Converge first, then partition the DCs and destroy two disks on
    // the reader's side: 6 local fragments - 2 = 4 = k still decode.
    let l = layout();
    let partition_start = SimTime::ZERO + SimDuration::from_mins(5);
    let mut faults = FaultPlan::none();
    let mut side_a = l.dc_nodes(0);
    side_a.push(l.proxy());
    side_a.push(l.client());
    faults.add_partition(
        &side_a,
        &l.dc_nodes(1),
        partition_start,
        SimDuration::from_mins(60),
    );
    let mut cluster = seeded(faults, 3);
    cluster
        .sim_mut()
        .run_until_time(partition_start + SimDuration::from_secs(5));
    // Two disk failures within DC0 (distinct FSs).
    let now = cluster.sim().now();
    cluster
        .sim_mut()
        .actor_mut::<Fs>(l.fs(0, 0))
        .destroy_disk(0, now);
    cluster
        .sim_mut()
        .actor_mut::<Fs>(l.fs(0, 1))
        .destroy_disk(1, now);
    assert_eq!(
        cluster.get(b"precious"),
        Some(vec![0x5A; 40 * 1024]),
        "partition + two disk failures tolerated"
    );
}

#[test]
fn tolerates_partition_plus_one_unavailable_fs() {
    let l = layout();
    let failures_start = SimTime::ZERO + SimDuration::from_mins(5);
    let mut faults = FaultPlan::none();
    let mut side_a = l.dc_nodes(0);
    side_a.push(l.proxy());
    side_a.push(l.client());
    faults.add_partition(
        &side_a,
        &l.dc_nodes(1),
        failures_start,
        SimDuration::from_mins(60),
    );
    // One whole FS in DC0 also goes dark.
    faults.add_node_outage(l.fs(0, 2), failures_start, SimDuration::from_mins(60));
    let mut cluster = seeded(faults, 4);
    cluster
        .sim_mut()
        .run_until_time(failures_start + SimDuration::from_secs(5));
    assert_eq!(
        cluster.get(b"precious"),
        Some(vec![0x5A; 40 * 1024]),
        "partition + one unavailable FS tolerated"
    );
}

#[test]
fn nine_disk_failures_exceed_the_policy() {
    // The converse bound: losing 9 of 12 fragments leaves fewer than k,
    // and the value is (correctly) unreadable until convergence rebuilds
    // nothing — it cannot, since fewer than k fragments survive anywhere.
    let mut cluster = seeded(FaultPlan::none(), 5);
    let l = layout();
    let now = cluster.sim().now();
    let mut destroyed = 0;
    'outer: for dc in 0..2 {
        for i in 0..3 {
            for disk in 0..2 {
                if destroyed == 9 {
                    break 'outer;
                }
                cluster
                    .sim_mut()
                    .actor_mut::<Fs>(l.fs(dc, i))
                    .destroy_disk(disk, now);
                destroyed += 1;
            }
        }
    }
    assert_eq!(
        cluster.get(b"precious"),
        None,
        "3 fragments < k=4: unreadable, and the get aborts cleanly"
    );
}
