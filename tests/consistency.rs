//! Consistency-semantics tests: Pahoehoe's eventual consistency with
//! regular semantics that permits aborts (§3.6).
//!
//! The contract under test:
//!
//! * **Regular semantics with aborts** — a get returns a *recent* version
//!   (any durable version newer than the latest AMR version at get
//!   start), or the *latest AMR* version, or aborts. It never returns a
//!   version older than the latest AMR version.
//! * **Eventual consistency** — once puts stop, every durable version
//!   reaches AMR, after which gets deterministically return the newest.
//! * **AMR stability** — once a version is AMR it stays AMR forever
//!   (nothing ever deletes metadata or fragments).

use pahoehoe_repro::pahoehoe::analysis;
use pahoehoe_repro::pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout};
use pahoehoe_repro::simnet::{FaultPlan, NetworkConfig, SimDuration, SimTime};

#[test]
fn get_returns_latest_amr_version_after_each_overwrite() {
    let mut cluster = Cluster::build(ClusterConfig::paper_default(), 1);
    for generation in 0..5u8 {
        cluster.put(b"doc", vec![generation; 1024]);
        let report = cluster.run_to_convergence();
        assert_eq!(report.durable_not_amr, 0);
        assert_eq!(
            cluster.get(b"doc"),
            Some(vec![generation; 1024]),
            "generation {generation}"
        );
    }
}

#[test]
fn get_never_returns_older_than_latest_amr() {
    // Write v0 and let it become AMR. Then write v1 during a WAN
    // partition (v1 is durable on DC0 only, not AMR). A get must return
    // v1 (a recent version) or abort — never v0.
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let partition_start = SimTime::ZERO + SimDuration::from_mins(2);
    let mut side_a = layout.dc_nodes(0);
    side_a.push(layout.proxy());
    side_a.push(layout.client());
    let mut faults = FaultPlan::none();
    faults.add_partition(
        &side_a,
        &layout.dc_nodes(1),
        partition_start,
        SimDuration::from_mins(30),
    );

    let mut cfg = ClusterConfig::paper_default();
    cfg.layout = layout;
    let mut cluster = Cluster::build_with_faults(cfg, 3, faults);

    cluster.put(b"doc", b"v0-old".to_vec());
    let r = cluster.run_to_convergence();
    assert_eq!(r.amr_versions, 1, "v0 is the latest AMR version");

    // Enter the partition and overwrite.
    cluster
        .sim_mut()
        .run_until_time(partition_start + SimDuration::from_secs(10));
    cluster.put(b"doc", b"v1-new".to_vec());
    cluster
        .sim_mut()
        .run_until_time(partition_start + SimDuration::from_mins(1));

    // Several reads during the partition: each must be v1 or an abort.
    for i in 0..3 {
        if let Some(v) = cluster.get(b"doc") {
            assert_eq!(v, b"v1-new".to_vec(), "read {i} regressed to v0");
        } // an abort (None) is allowed by the semantics
    }
}

#[test]
fn amr_is_stable_across_later_failures() {
    // Once AMR, a version stays AMR: a later outage makes servers
    // unreachable but never un-stores anything (crash-recovery model with
    // stable storage, §3.1).
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let outage_start = SimTime::ZERO + SimDuration::from_mins(5);
    let mut faults = FaultPlan::none();
    faults.add_node_outage(layout.fs(0, 0), outage_start, SimDuration::from_mins(10));
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 5;
    cfg.workload_value_len = 4096;
    let mut cluster = Cluster::build_with_faults(cfg, 11, faults);
    let before = cluster.run_to_convergence();
    assert_eq!(before.amr_versions, 5);

    // Jump beyond the outage; nothing should have changed.
    cluster
        .sim_mut()
        .run_until_time(outage_start + SimDuration::from_mins(20));
    let after = cluster.report(pahoehoe_repro::simnet::RunOutcome::Quiescent);
    assert_eq!(after.amr_versions, 5, "AMR is a stable property");
    assert_eq!(after.durable_not_amr, 0);
}

#[test]
fn eventual_consistency_under_randomized_fault_schedules() {
    // A randomized stress: for a batch of seeds, build an arbitrary (but
    // seed-derived) schedule of node outages, partitions and loss, run a
    // small workload, and check the eventual-consistency postcondition:
    // every durable version is AMR at quiescence and the system state is
    // globally consistent.
    for seed in 0..12u64 {
        let layout = ClusterLayout {
            dcs: 2,
            kls_per_dc: 2,
            fs_per_dc: 3,
        };
        let mut faults = FaultPlan::none();
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = |m: u64| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s % m
        };
        // 0–3 random node outages among KLSs and FSs.
        for _ in 0..next(4) {
            let node = match next(2) {
                0 => layout.kls(next(2) as usize, next(2) as usize),
                _ => layout.fs(next(2) as usize, next(3) as usize),
            };
            let start = SimTime::ZERO + SimDuration::from_secs(next(120));
            let dur = SimDuration::from_secs(60 + next(540));
            faults.add_node_outage(node, start, dur);
        }
        // Possibly a WAN partition.
        if next(2) == 0 {
            let mut side_a = layout.dc_nodes(0);
            side_a.push(layout.proxy());
            side_a.push(layout.client());
            faults.add_partition(
                &side_a,
                &layout.dc_nodes(1),
                SimTime::ZERO + SimDuration::from_secs(next(60)),
                SimDuration::from_secs(120 + next(600)),
            );
        }
        let mut cfg = ClusterConfig::paper_default();
        cfg.workload_puts = 5;
        cfg.workload_value_len = 4096;
        cfg.network = NetworkConfig::with_drop_rate(next(8) as f64 / 100.0);
        let mut cluster = Cluster::build_with_faults(cfg, seed, faults);
        let report = cluster.run_to_convergence();
        assert_eq!(
            report.durable_not_amr, 0,
            "seed {seed}: durable version stuck non-AMR"
        );
        assert_eq!(report.puts_succeeded, 5, "seed {seed}");

        // Double-check the global AMR predicate directly.
        let topo = cluster.topology().clone();
        let klss: Vec<_> = topo.all_klss().collect();
        let fss: Vec<_> = topo.all_fss().collect();
        let durable = analysis::durable_versions(cluster.sim(), &fss);
        for ov in analysis::known_versions(cluster.sim(), &klss, &fss) {
            if durable.contains(&ov) {
                assert!(
                    analysis::is_amr(cluster.sim(), &topo, ov),
                    "seed {seed}: durable {ov:?} not AMR"
                );
            }
        }
    }
}

#[test]
fn concurrent_history_reads_are_monotonic_after_convergence() {
    // Writes w0 < w1 < w2 to the same key with convergence between them:
    // reads after each convergence never go backwards.
    let mut cluster = Cluster::build(ClusterConfig::paper_default(), 8);
    let mut last_seen: Option<u8> = None;
    for gen in [10u8, 20, 30] {
        cluster.put(b"mono", vec![gen; 512]);
        cluster.run_to_convergence();
        let got = cluster.get(b"mono").expect("converged value readable");
        let g = got[0];
        if let Some(prev) = last_seen {
            assert!(g >= prev, "read regressed: {g} < {prev}");
        }
        assert_eq!(g, gen);
        last_seen = Some(g);
    }
}
