//! Tests for the paper's elided robustness features (§3.1): disk
//! corruption detection via hashes, scrubbing, and disk rebuild.

use pahoehoe_repro::pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout};
use pahoehoe_repro::pahoehoe::fs::{Fs, WAKE_TIMER_TAG};
use pahoehoe_repro::simnet::SimDuration;

fn layout() -> ClusterLayout {
    ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    }
}

fn converged_cluster(scrub: Option<SimDuration>, seed: u64) -> Cluster {
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 3;
    cfg.workload_value_len = 8 * 1024;
    cfg.convergence.scrub_interval = scrub;
    let mut cluster = Cluster::build(cfg, seed);
    let report = cluster.run_to_convergence();
    assert_eq!(report.amr_versions, 3);
    cluster
}

/// The versions stored on an FS, with one fragment index each.
fn stored_versions(
    cluster: &Cluster,
    fs: pahoehoe_repro::simnet::NodeId,
) -> Vec<(pahoehoe_repro::pahoehoe::ObjectVersion, u8)> {
    let actor = cluster.fs(fs);
    actor
        .known_versions()
        .filter_map(|ov| {
            actor
                .entry(ov)
                .and_then(|e| e.fragments.keys().next().copied())
                .map(|idx| (ov, idx))
        })
        .collect()
}

#[test]
fn read_path_detects_corruption_and_convergence_repairs_it() {
    use pahoehoe_repro::pahoehoe::client::{Client, ClientOp};

    let mut cluster = converged_cluster(None, 1);
    let fs_id = layout().fs(0, 0);
    let victims = stored_versions(&cluster, fs_id);
    assert!(!victims.is_empty());
    let (ov, idx) = victims[0];

    // Corrupt one fragment in place (checksum left stale).
    assert!(cluster
        .sim_mut()
        .actor_mut::<Fs>(fs_id)
        .corrupt_fragment(ov, idx));

    // Read the corrupted object through the client. The FS detects the
    // bad hash, answers ⊥ for that fragment, and the get still succeeds
    // from the remaining eleven fragments.
    let client_id = cluster.layout().client();
    let before = cluster.client().gets_done().len();
    {
        let sim = cluster.sim_mut();
        sim.actor_mut::<Client>(client_id)
            .enqueue(ClientOp::Get { key: ov.key });
        sim.schedule_timer(client_id, SimDuration::ZERO, 1);
        sim.run_until(move |s| s.actor::<Client>(client_id).gets_done().len() > before);
    }
    let outcome = &cluster.client().gets_done()[before];
    assert!(
        outcome.result.is_some(),
        "get succeeds despite the corrupted fragment"
    );
    assert_eq!(cluster.fs(fs_id).corruption_detected(), 1);

    // The read dropped the bad fragment and re-pended the version;
    // convergence regenerates it.
    cluster
        .sim_mut()
        .schedule_timer(fs_id, SimDuration::ZERO, WAKE_TIMER_TAG);
    let report = cluster.run_to_convergence();
    assert_eq!(report.durable_not_amr, 0);
    let fs = cluster.fs(fs_id);
    let entry = fs.entry(ov).expect("entry kept");
    assert!(
        entry.fragments.contains_key(&idx),
        "fragment regenerated after read-path detection"
    );
    assert!(fs.verified(ov));
}

#[test]
fn scrubber_detects_and_repairs_corruption() {
    let mut cluster = converged_cluster(Some(SimDuration::from_secs(30)), 2);
    let fs_id = layout().fs(1, 1);
    let victims = stored_versions(&cluster, fs_id);
    assert!(!victims.is_empty());
    let (ov, idx) = victims[0];
    assert!(cluster
        .sim_mut()
        .actor_mut::<Fs>(fs_id)
        .corrupt_fragment(ov, idx));

    // Let the scrubber run and convergence repair the fragment.
    let deadline = cluster.sim().now() + SimDuration::from_mins(20);
    cluster.sim_mut().run_until_time(deadline);

    let fs = cluster.fs(fs_id);
    assert!(fs.corruption_detected() >= 1, "scrubber found the rot");
    let entry = fs.entry(ov).expect("version still stored");
    assert!(
        entry.fragments.contains_key(&idx),
        "fragment regenerated after scrub dropped it"
    );
    // The regenerated fragment passes verification again.
    assert!(fs.verified(ov));
    assert_eq!(fs.pending_versions().count(), 0, "re-converged");
}

#[test]
fn destroyed_disk_is_rebuilt_by_convergence() {
    let mut cluster = converged_cluster(None, 3);
    let fs_id = layout().fs(0, 1);
    let before: usize = {
        let fs = cluster.fs(fs_id);
        fs.known_versions()
            .filter_map(|ov| fs.entry(ov))
            .map(|e| e.fragments.len())
            .sum()
    };
    assert!(before > 0);

    // Wipe disk 0 on this FS and wake its convergence loop.
    let now = cluster.sim().now();
    let lost = cluster
        .sim_mut()
        .actor_mut::<Fs>(fs_id)
        .destroy_disk(0, now);
    assert!(lost > 0, "disk 0 held fragments");
    cluster
        .sim_mut()
        .schedule_timer(fs_id, SimDuration::ZERO, WAKE_TIMER_TAG);

    let report = cluster.run_to_convergence();
    assert_eq!(report.durable_not_amr, 0);
    let after: usize = {
        let fs = cluster.fs(fs_id);
        fs.known_versions()
            .filter_map(|ov| fs.entry(ov))
            .map(|e| e.fragments.len())
            .sum()
    };
    assert_eq!(after, before, "every lost fragment was rebuilt");
    assert!(report.metrics.kind("RetrieveFragReq").count > 0);
}

#[test]
fn scrubbing_a_clean_store_changes_nothing() {
    let mut cluster = converged_cluster(Some(SimDuration::from_secs(20)), 4);
    let deadline = cluster.sim().now() + SimDuration::from_mins(5);
    cluster.sim_mut().run_until_time(deadline);
    for dc in 0..2 {
        for i in 0..3 {
            let fs = cluster.fs(layout().fs(dc, i));
            assert_eq!(fs.corruption_detected(), 0);
            assert_eq!(fs.pending_versions().count(), 0);
        }
    }
}
