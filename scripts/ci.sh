#!/usr/bin/env bash
# Full CI gate: formatting, clippy (warnings are errors), tests, the
# determinism lint, and an explorer smoke sweep that model-checks the
# protocol invariants. Run locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> determinism lint"
cargo run -p check --bin lint

echo "==> semantic analyzer (workspace must be clean)"
cargo run -p check --release --bin analyze

echo "==> mutation smoke (pinned 14 mutants, kill-rate gate >= 12/14)"
# Surviving mutants print their diff; the binary exits 1 below the gate.
cargo run -p check --release --bin mutate -- --smoke --bench-out BENCH_analysis.json
python3 -m json.tool BENCH_analysis.json > /dev/null

echo "==> invariant explorer (smoke sweep, sequential, + scale spot check)"
cargo run -p check --release --bin explore -- --smoke --scale --digest-out target/digest-seq.txt

echo "==> invariant explorer (smoke sweep, parallel harness)"
cargo run -p check --release --bin explore -- --smoke --scale --workers 2 --digest-out target/digest-par.txt
cmp target/digest-seq.txt target/digest-par.txt
echo "    parallel sweep digest (incl. scale line) is byte-identical to sequential"

echo "==> invariant explorer (smoke sweep, parallel engine vs sequential-sharded)"
# The same smoke sweep executed inside the simulation engines themselves:
# sequential-sharded (one logical process per DC, run in-place) must be
# byte-identical to true parallel execution at 2 workers. --mesh adds the
# 3-DC constant-latency spot check whose round-boundary ties exercise the
# (time, src-shard, seq) mailbox-merge tie-break.
cargo run -p check --release --bin explore -- --smoke --engine sharded --mesh --digest-out target/digest-eng-seq.txt
cargo run -p check --release --bin explore -- --smoke --engine parallel --workers 2 --mesh --digest-out target/digest-eng-par2.txt
cmp target/digest-eng-seq.txt target/digest-eng-par2.txt
echo "    parallel-engine digest (incl. mesh line) is byte-identical to sequential-sharded"

echo "==> invariant explorer (smoke sweep, batched protocol rounds)"
cargo run -p check --release --bin explore -- --smoke --protocol batched

echo "==> invariant explorer (smoke sweep, delta codec, sequential vs parallel)"
# Two workload rounds under delta coding: every second-round put overwrites
# a key through the XOR-delta stripe path, checked by every invariant.
cargo run -p check --release --bin explore -- --smoke --delta --digest-out target/digest-delta-seq.txt
cargo run -p check --release --bin explore -- --smoke --delta --workers 2 --digest-out target/digest-delta-par.txt
cmp target/digest-delta-seq.txt target/digest-delta-par.txt
echo "    delta-mode parallel sweep digest is byte-identical to sequential"

echo "==> invariant explorer (smoke sweep + repair scenario families, sequential vs parallel)"
# Four churn families (node churn, rack outage, flash-crowd reads during
# rebuild, throttled repair storm) on a repair-enabled rack-aware cluster,
# checked by the redundancy-floor invariant; the digest lines fold the
# EV_REPAIR_* counters.
cargo run -p check --release --bin explore -- --smoke --repair --digest-out target/digest-repair-seq.txt
cargo run -p check --release --bin explore -- --smoke --repair --workers 2 --digest-out target/digest-repair-par.txt
cmp target/digest-repair-seq.txt target/digest-repair-par.txt
echo "    repair-mode parallel sweep digest is byte-identical to sequential"

echo "==> bench baseline (smoke)"
cargo run -p bench --release --bin baseline -- --smoke
python3 -m json.tool BENCH_codec.json > /dev/null
python3 -m json.tool BENCH_engine.json > /dev/null
python3 -m json.tool BENCH_convergence.json > /dev/null
python3 -m json.tool BENCH_protocol.json > /dev/null

echo "==> bench scale (smoke, incl. a parallel-engine cell at 2 workers)"
cargo run -p bench --release --bin scale -- --smoke
python3 -m json.tool BENCH_scale.json > /dev/null

echo "==> bench delta (smoke, gates the >= 3x hot-pair payload reduction)"
cargo run -p bench --release --bin delta -- --smoke
python3 -m json.tool BENCH_delta.json > /dev/null
grep -q '"schema_version": 1' BENCH_delta.json || { echo "    BENCH_delta.json schema drift"; exit 1; }

echo "==> bench repair (smoke, gates re-protection in every cell)"
cargo run -p bench --release --bin repair -- --smoke
python3 -m json.tool BENCH_repair.json > /dev/null
grep -q '"schema_version": 1' BENCH_repair.json || { echo "    BENCH_repair.json schema drift"; exit 1; }
grep -q '"host"' BENCH_repair.json || { echo "    BENCH_repair.json missing host context"; exit 1; }

echo "==> bench schema versions"
for f in BENCH_*.json; do
    grep -q '"schema_version"' "$f" || { echo "    $f missing schema_version"; exit 1; }
done
echo "    every BENCH_*.json carries a schema_version"

echo "CI green."
