//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` convenience methods
//! (`random`, `random_range`, `random_bool`, `fill_bytes`) — backed by a
//! deterministic xoshiro256++ generator seeded through SplitMix64.
//!
//! Determinism is the whole point of the simulator, so nothing here ever
//! touches OS entropy: there is deliberately no `thread_rng`/`rng()`
//! equivalent, which also keeps the workspace's determinism lint honest.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an `Rng` (the `StandardUniform`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable uniformly (the `SampleRange` abstraction).
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform `u64` in `[0, bound)` by rejection sampling (Lemire's
/// unbiased method without the multiply shortcut — simple and exact).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Largest multiple of `bound` that fits in u64; reject above it.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] like in real `rand`.
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; not cryptographic, which the simulator never needs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start in the all-zero state.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_are_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut low = 0usize;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                low += 1;
            }
        }
        assert!((4_000..6_000).contains(&low), "badly skewed: {low}");
    }

    #[test]
    fn ranges_are_inclusive_and_exclusive_as_typed() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.random_range(10u64..=30);
            assert!((10..=30).contains(&x));
            let y = rng.random_range(5u32..8);
            assert!((5..8).contains(&y));
        }
        // Inclusive endpoints are actually reachable.
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..10_000 {
            match rng.random_range(0u8..=3) {
                0 => hit_lo = true,
                3 => hit_hi = true,
                _ => {}
            }
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
