//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API shape the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, throughput annotations and the
//! `criterion_group!`/`criterion_main!` macros — over a simple wall-clock
//! measurement loop. No statistics, plots or comparisons: each benchmark
//! runs a short calibrated loop and prints mean time per iteration (and
//! derived throughput). Good enough to keep `cargo bench` useful and the
//! bench targets compiling.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// In real criterion this parses CLI flags; here it is a no-op hook
    /// kept for API compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let report = run_bench(self.sample_size, self.measurement_time, &mut f);
        print_report(&id.to_string(), &report, None);
    }
}

/// A parameterized benchmark identifier.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying just a parameter (grouped benches).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units for reporting work per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let report = run_bench(
            self.criterion.sample_size,
            self.criterion.measurement_time,
            &mut f,
        );
        print_report(&format!("{}/{}", self.name, id), &report, self.throughput);
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Handed to benchmark closures to run the timed loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

struct Report {
    mean: Duration,
}

fn run_bench<F: FnMut(&mut Bencher)>(
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) -> Report {
    // Calibrate: grow the iteration count until one sample is ≥ 1/10 of
    // the per-sample budget (so fast routines are timed in batches).
    let budget = measurement_time / sample_size.max(1) as u32;
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed * 10 >= budget || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += b.iters;
    }
    Report {
        mean: if total_iters == 0 {
            Duration::ZERO
        } else {
            total / total_iters.max(1) as u32
        },
    }
}

fn print_report(name: &str, report: &Report, throughput: Option<Throughput>) {
    let per_iter = report.mean;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let bps = n as f64 / per_iter.as_secs_f64();
            format!("  {:.1} MiB/s", bps / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let eps = n as f64 / per_iter.as_secs_f64();
            format!("  {eps:.0} elem/s")
        }
        _ => String::new(),
    };
    println!("bench {name:<50} {per_iter:>12.2?}/iter{rate}");
}

/// Declares a group of benchmark functions, in either the list or the
/// `name/config/targets` form of real criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("selftest");
        g.throughput(Throughput::Bytes(1024));
        g.bench_with_input(BenchmarkId::from_parameter("sum"), &1024usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        g.finish();
    }

    criterion_group! {
        name = selftest_group;
        config = Criterion::default().sample_size(3).measurement_time(
            std::time::Duration::from_millis(10),
        );
        targets = quick
    }

    #[test]
    fn harness_runs() {
        selftest_group();
    }
}
