//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], an immutable, cheaply cloneable byte buffer backed
//! by `Arc<Vec<u8>>` plus a view window — the subset of the real crate's
//! API this workspace uses. Cloning is a reference-count bump,
//! [`slice`](Bytes::slice) is zero-copy (a narrower view of the same
//! allocation), and `From<Vec<u8>>` adopts the vector without copying its
//! contents — all of which the simulator and the erasure codec rely on
//! when fanning fragments of one encoded stripe out to many actors.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer (a `[start, start+len)`
/// window over a shared allocation).
///
/// Equality, ordering, and hashing are over the viewed contents, not the
/// backing storage, matching the real crate.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    fn from_vec(data: Vec<u8>) -> Self {
        let len = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            len,
        }
    }

    /// Wraps a static slice (copied; the real crate borrows, but nothing
    /// here depends on that optimization).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_vec(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// A new buffer viewing `self[range]` — zero-copy; the backing
    /// allocation is shared, only the window narrows.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of range for Bytes of length {}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            len: end - start,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        // Adopts the vector's allocation — no copy. This keeps
        // `Codec::encode`'s single-stripe buffer a single allocation end
        // to end.
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from_vec(v.into_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from_vec(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from_vec(iter.into_iter().collect())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr(), "shared storage");
    }

    #[test]
    fn deref_and_index() {
        let a = Bytes::from(vec![9, 8, 7]);
        assert_eq!(a[0], 9);
        assert_eq!(a.len(), 3);
        assert_eq!(a.to_vec(), vec![9, 8, 7]);
    }

    #[test]
    fn slice_ranges() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4]);
        assert_eq!(a.slice(1..3).to_vec(), vec![1, 2]);
        assert_eq!(a.slice(..).to_vec(), a.to_vec());
        assert_eq!(a.slice(3..).to_vec(), vec![3, 4]);
    }

    #[test]
    fn from_vec_adopts_allocation() {
        let v = vec![1u8, 2, 3];
        let p = v.as_ptr();
        let b = Bytes::from(v);
        assert_eq!(b.as_ref().as_ptr(), p, "From<Vec<u8>> must not copy");
    }

    #[test]
    fn slice_is_zero_copy() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = a.slice(2..4);
        assert_eq!(
            s.as_ref().as_ptr(),
            a.as_ref()[2..].as_ptr(),
            "same allocation"
        );
        let ss = s.slice(1..2);
        assert_eq!(ss.to_vec(), vec![3]);
        assert_eq!(
            ss.as_ref().as_ptr(),
            a.as_ref()[3..].as_ptr(),
            "nested view"
        );
    }

    #[test]
    fn equality_is_by_contents_not_backing() {
        let a = Bytes::from(vec![9, 1, 2, 9]);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a.slice(1..3), b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        a.slice(1..3).hash(&mut ha);
        let mut hb = DefaultHasher::new();
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish(), "hash follows contents");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let a = Bytes::from(vec![1, 2, 3]);
        let _ = a.slice(1..5);
    }

    #[test]
    fn from_static_and_comparisons() {
        let a = Bytes::from_static(b"hi");
        assert_eq!(a, b"hi".to_vec());
        assert_eq!(a, &b"hi"[..]);
    }
}
