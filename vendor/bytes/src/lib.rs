//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], an immutable, cheaply cloneable byte buffer backed
//! by `Arc<[u8]>` — the subset of the real crate's API this workspace
//! uses. Cloning is a reference-count bump, which is what the simulator
//! relies on when fanning a fragment out to many actors.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copied; the real crate borrows, but nothing
    /// here depends on that optimization).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// A new buffer holding `self[range]`.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes {
            data: self.data[start..end].into(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes {
            data: v.into_bytes().into(),
        }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes {
            data: iter.into_iter().collect(),
        }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &*self.data == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == &*other.data
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.data == *other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr(), "shared storage");
    }

    #[test]
    fn deref_and_index() {
        let a = Bytes::from(vec![9, 8, 7]);
        assert_eq!(a[0], 9);
        assert_eq!(a.len(), 3);
        assert_eq!(a.to_vec(), vec![9, 8, 7]);
    }

    #[test]
    fn slice_ranges() {
        let a = Bytes::from(vec![0, 1, 2, 3, 4]);
        assert_eq!(a.slice(1..3).to_vec(), vec![1, 2]);
        assert_eq!(a.slice(..).to_vec(), a.to_vec());
        assert_eq!(a.slice(3..).to_vec(), vec![3, 4]);
    }

    #[test]
    fn from_static_and_comparisons() {
        let a = Bytes::from_static(b"hi");
        assert_eq!(a, b"hi".to_vec());
        assert_eq!(a, &b"hi"[..]);
    }
}
