//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Anything usable as a vector-length specification.
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.rng().random_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.rng().random_range(self.clone())
    }
}

/// Strategy for vectors of values from `element`.
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating `Vec`s of `element` values with a length drawn
/// from `len` (a fixed `usize` or a range).
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}
