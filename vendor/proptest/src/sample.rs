//! Sampling strategies (`proptest::sample::subsequence`).

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy for order-preserving subsequences of a base vector.
pub struct Subsequence<T> {
    base: Vec<T>,
    size: usize,
}

impl<T: Clone + Debug> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        // Choose `size` distinct indices by partial Fisher–Yates, then
        // emit the chosen elements in their original order.
        let n = self.base.len();
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..self.size {
            let j = rng.rng().random_range(i..n);
            idx.swap(i, j);
        }
        let mut chosen = idx[..self.size].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.base[i].clone()).collect()
    }
}

/// A strategy picking subsequences of exactly `size` elements of `base`,
/// preserving their relative order.
pub fn subsequence<T: Clone + Debug>(base: Vec<T>, size: usize) -> Subsequence<T> {
    assert!(
        size <= base.len(),
        "subsequence size {size} exceeds base length {}",
        base.len()
    );
    Subsequence { base, size }
}
