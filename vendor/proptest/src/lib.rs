//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert*` / `prop_assume!`, value
//! strategies for primitives, ranges, tuples, simple regex-class strings,
//! `collection::vec`, `sample::subsequence`, `Just`, `prop_map` and
//! `prop_flat_map`, plus a deterministic [`test_runner::TestRunner`].
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — a failure reports the generated inputs, case number
//!   and per-test seed instead of a minimized counterexample;
//! * generation is derandomized: each test function derives its stream
//!   from a hash of its name (override with `PROPTEST_SEED`), so CI runs
//!   are reproducible;
//! * `PROPTEST_CASES` overrides the case count, as in real proptest.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub mod num {
    //! Numeric strategy helpers (range strategies live on the std range
    //! types themselves, as in real proptest).
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u8..9, b in 10u64..=20, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((10..=20).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn any_and_typed_params(x: u8, y: bool, _z: u64) {
            let _ = y;
            prop_assert!(u16::from(x) <= 255);
        }

        #[test]
        fn tuples_maps_and_flat_maps(
            (k, n) in (1usize..=6).prop_flat_map(|k| (Just(k), k..=12)),
            v in crate::collection::vec(any::<u8>(), 0..50),
        ) {
            prop_assert!(k <= n && n <= 12);
            prop_assert!(v.len() < 50);
        }

        #[test]
        fn string_regex_classes(s in "[a-z]{1,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn subsequences_preserve_order(
            rows in crate::sample::subsequence((0usize..12).collect::<Vec<_>>(), 4),
        ) {
            prop_assert_eq!(rows.len(), 4);
            prop_assert!(rows.windows(2).all(|w| w[0] < w[1]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn config_block_form_works(x in 0u32..10) {
            prop_assert!(x < 10);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..=255) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
