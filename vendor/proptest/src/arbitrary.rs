//! `any::<T>()` — full-domain strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng().random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform unit interval: ordinary, well-behaved values (real
        // proptest also generates infinities/NaN; nothing here wants them).
        rng.rng().random::<f64>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().random::<f32>()
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
