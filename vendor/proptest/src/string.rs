//! Tiny regex-subset string generation for `&str` strategies.
//!
//! Supports what this workspace's tests use: concatenations of literal
//! characters and character classes `[a-z0-9_]`, each optionally repeated
//! with `{n}`, `{m,n}`, `*`, `+` or `?`. Anything fancier panics loudly
//! so a future test author knows to extend it.

use crate::test_runner::TestRng;
use rand::Rng;

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let mut ranges = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        ranges.push((chars[j], chars[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((chars[j], chars[j]));
                        j += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(ranges)
            }
            '\\' => {
                i += 2;
                Atom::Literal(*chars.get(i - 1).expect("dangling escape"))
            }
            c if "(){}|.^$*+?".contains(c) => {
                panic!("unsupported regex feature {c:?} in pattern {pattern:?}")
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed repetition in {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("repetition lower bound"),
                            hi.trim().parse().expect("repetition upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("repetition count");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generates one string matching `pattern`.
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = rng.rng().random_range(piece.min..=piece.max);
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    // Weight ranges by size so [a-z0] is near-uniform.
                    let total: u32 = ranges
                        .iter()
                        .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                        .sum();
                    let mut pick = rng.rng().random_range(0..total);
                    for &(lo, hi) in ranges {
                        let span = hi as u32 - lo as u32 + 1;
                        if pick < span {
                            out.push(char::from_u32(lo as u32 + pick).expect("valid char"));
                            break;
                        }
                        pick -= span;
                    }
                }
            }
        }
    }
    out
}
