//! The [`Strategy`] trait and core combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating test values.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the runner's RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// String literals are pattern strategies (a small regex subset; see
/// [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_pattern(self, rng)
    }
}
