//! Deterministic case runner plus the `proptest!`/`prop_assert*` macros.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (the subset of real proptest's this workspace
/// sets: `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) tolerated across the run
    /// before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the run fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; draw fresh ones.
    Reject,
}

/// Result type the generated test closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG handed to strategies. Wraps the vendored [`StdRng`] so
/// strategy code is insulated from the generator choice.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// FNV-1a, used to derive a per-test seed from its name.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `case` up to `config.cases` times with deterministic per-case
/// RNGs; panics with a reproduction message on the first failure.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let base_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| hash_name(test_name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut draw = 0u64;
    while passed < config.cases {
        let case_seed = base_seed ^ draw.wrapping_mul(0x9E3779B97F4A7C15);
        draw += 1;
        let mut rng = TestRng {
            inner: StdRng::seed_from_u64(case_seed),
        };
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest {test_name}: too many prop_assume! rejections \
                         ({rejected}) after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest failed: {test_name}, case {passed} \
                     (case seed {case_seed}, PROPTEST_SEED={base_seed}):\n{msg}"
                );
            }
        }
    }
}

/// `proptest! { ... }`: wraps property functions into `#[test]` items.
///
/// Supports the two parameter forms of real proptest —
/// `name: Type` (full-domain [`any`](crate::arbitrary::any)) and
/// `pattern in strategy` — and an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal: splits a `proptest!` body into per-function expansions.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $crate::__proptest_parse! {
            ($cfg) [$(#[$attr])*] fn $name [] ($($params)*) $body
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Internal: munches the parameter list into `(pattern, strategy)` pairs.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse {
    // `ident: Type` — full-domain strategy. (Tried first: a lone ident
    // also parses as a pattern, so the `in` arms must not shadow this.)
    (($cfg:expr) [$($attrs:tt)*] fn $name:ident [$($acc:tt)*]
     ($pname:ident : $pty:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_parse! {
            ($cfg) [$($attrs)*] fn $name
            [$($acc)* ($pname, $crate::arbitrary::any::<$pty>())]
            ($($rest)*) $body
        }
    };
    (($cfg:expr) [$($attrs:tt)*] fn $name:ident [$($acc:tt)*]
     ($pname:ident : $pty:ty) $body:block) => {
        $crate::__proptest_parse! {
            ($cfg) [$($attrs)*] fn $name
            [$($acc)* ($pname, $crate::arbitrary::any::<$pty>())]
            () $body
        }
    };
    // `pattern in strategy`.
    (($cfg:expr) [$($attrs:tt)*] fn $name:ident [$($acc:tt)*]
     ($pat:pat in $strat:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_parse! {
            ($cfg) [$($attrs)*] fn $name [$($acc)* ($pat, $strat)] ($($rest)*) $body
        }
    };
    (($cfg:expr) [$($attrs:tt)*] fn $name:ident [$($acc:tt)*]
     ($pat:pat in $strat:expr) $body:block) => {
        $crate::__proptest_parse! {
            ($cfg) [$($attrs)*] fn $name [$($acc)* ($pat, $strat)] () $body
        }
    };
    // Done: emit the test.
    (($cfg:expr) [$($attrs:tt)*] fn $name:ident
     [$(($pat:pat, $strat:expr))*] () $body:block) => {
        $($attrs)*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng| {
                    let __proptest_values = (
                        $($crate::strategy::Strategy::generate(&($strat), __proptest_rng),)*
                    );
                    let __proptest_dbg = ::std::format!("{:#?}", __proptest_values);
                    #[allow(unused_variables)]
                    let ($($pat,)*) = __proptest_values;
                    let __proptest_result: $crate::test_runner::TestCaseResult =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __proptest_result {
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(::std::format!(
                                "{msg}\ninputs: {}", __proptest_dbg
                            )),
                        ),
                        other => other,
                    }
                },
            );
        }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($a), stringify!($b), a, b, ::std::format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!(a, b)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($a), stringify!($b), a, ::std::format!($($fmt)*)
        );
    }};
}

/// `prop_assume!(cond)`: rejects the current inputs without failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}
