//! Property-based tests for the discrete-event engine.

use std::any::Any;

use proptest::prelude::*;
use simnet::{
    Actor, Context, FaultPlan, NetworkConfig, NodeId, Payload, SimDuration, SimTime, Simulation,
};

#[derive(Clone, Debug)]
struct Token(#[allow(dead_code)] u32);

impl Payload for Token {
    const KINDS: &'static [&'static str] = &["Token"];
    fn kind_id(&self) -> usize {
        0
    }
    fn wire_size(&self) -> usize {
        16
    }
}

/// Forwards each token to a fixed next hop a bounded number of times and
/// records receipt times.
struct Hop {
    next: NodeId,
    remaining: u32,
    received_at: Vec<SimTime>,
}

impl Actor<Token> for Hop {
    fn on_message(&mut self, ctx: &mut Context<'_, Token>, _from: NodeId, msg: Token) {
        self.received_at.push(ctx.now());
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(self.next, msg);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Token>, _tag: u64) {
        ctx.send(self.next, Token(0));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn ring(seed: u64, nodes: u32, hops: u32, drop: f64) -> Simulation<Token> {
    let mut sim = Simulation::with_network(
        seed,
        NetworkConfig {
            drop_rate: drop,
            ..NetworkConfig::paper_default()
        },
        FaultPlan::none(),
    );
    for i in 0..nodes {
        sim.add_actor(Hop {
            next: NodeId::new((i + 1) % nodes),
            remaining: hops,
            received_at: Vec::new(),
        });
    }
    sim.schedule_timer(NodeId::new(0), SimDuration::from_millis(1), 0);
    sim
}

proptest! {
    #[test]
    fn time_never_goes_backwards(
        seed: u64,
        nodes in 2u32..8,
        hops in 0u32..50,
    ) {
        let mut sim = ring(seed, nodes, hops, 0.0);
        sim.run_until_quiescent();
        for i in 0..nodes {
            let hop: &Hop = sim.actor(NodeId::new(i));
            for w in hop.received_at.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn deliveries_respect_latency_bounds(
        seed: u64,
        nodes in 2u32..6,
    ) {
        let mut sim = ring(seed, nodes, 20, 0.0);
        sim.enable_trace();
        sim.run_until_quiescent();
        // Collect receipt times across all hops in order; consecutive
        // deliveries are one link apart: 10..=30ms.
        let mut all: Vec<SimTime> = Vec::new();
        for i in 0..nodes {
            let hop: &Hop = sim.actor(NodeId::new(i));
            all.extend(&hop.received_at);
        }
        all.sort();
        for w in all.windows(2) {
            let gap = w[1].duration_since(w[0]).as_micros();
            prop_assert!((10_000..=30_000).contains(&gap), "gap {gap}us");
        }
    }

    #[test]
    fn same_seed_same_trace(seed: u64, drop in 0.0f64..0.5) {
        let run = |seed| {
            let mut sim = ring(seed, 4, 30, drop);
            sim.enable_trace();
            sim.run_until_quiescent();
            (
                sim.trace().expect("enabled").events().to_vec(),
                sim.metrics().total_count(),
                sim.metrics().dropped(),
            )
        };
        let (t1, c1, d1) = run(seed);
        let (t2, c2, d2) = run(seed);
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn metrics_and_trace_agree(seed: u64, drop in 0.0f64..0.9) {
        let mut sim = ring(seed, 3, 40, drop);
        sim.enable_trace();
        sim.run_until_quiescent();
        let trace = sim.trace().expect("enabled");
        prop_assert_eq!(
            trace.len() as u64,
            sim.metrics().total_count(),
            "every send traced"
        );
        let dropped = trace
            .events()
            .iter()
            .filter(|e| e.disposition != simnet::Disposition::Delivered)
            .count() as u64;
        prop_assert_eq!(dropped, sim.metrics().dropped());
        let bytes: u64 =
            trace.events().iter().map(|e| e.bytes as u64).sum();
        prop_assert_eq!(bytes, sim.metrics().total_bytes());
    }

    #[test]
    fn event_count_is_bounded_by_sends(
        seed: u64,
        nodes in 2u32..6,
        hops in 0u32..30,
    ) {
        let mut sim = ring(seed, nodes, hops, 0.0);
        sim.run_until_quiescent();
        // One timer + one delivery per surviving send.
        prop_assert!(
            sim.events_processed() <= 1 + sim.metrics().total_count()
        );
    }
}
