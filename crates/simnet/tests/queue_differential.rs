//! Differential tests: the timing-wheel event queue against the reference
//! binary heap.
//!
//! Both queue implementations must dispatch **exactly** the same events in
//! the same `(time, seq)` order for any schedule of sends, timers, and
//! cancellations — that is what makes the wheel a drop-in replacement and
//! keeps replay digests stable across the swap. The scripts here interleave
//! all three operation kinds (including cancelling timers that are already
//! sitting in the queue), and re-run the wheel with the sequence counter
//! started deep into the `u64` range to show ordering does not depend on
//! small sequence numbers.

use std::any::Any;

use proptest::prelude::*;
use simnet::{
    Actor, Context, NodeId, Payload, SimDuration, SimTime, Simulation, TimerId, TraceEvent,
};

#[derive(Clone, Debug)]
enum Msg {
    Work,
    Ack,
}

impl Payload for Msg {
    const KINDS: &'static [&'static str] = &["Ack", "Work"];
    fn kind_id(&self) -> usize {
        match self {
            Msg::Ack => 0,
            Msg::Work => 1,
        }
    }
    fn wire_size(&self) -> usize {
        match self {
            Msg::Ack => 16,
            Msg::Work => 120,
        }
    }
}

/// One scripted action, consumed left to right as events arrive.
#[derive(Clone, Debug)]
enum Op {
    /// Send `Work` to node `(self + hop) % nodes`.
    Send { hop: u32 },
    /// Schedule a timer `delay_ms` out, remembering its id.
    Timer { delay_ms: u64 },
    /// Cancel the `idx % live` oldest remembered timer (no-op when none).
    Cancel { idx: usize },
}

/// Replays a shared script: every delivered message or fired timer consumes
/// the next op. Identical seeds and scripts make two runs bit-identical —
/// unless the event queue itself reorders something.
struct Scripted {
    nodes: u32,
    script: std::rc::Rc<Vec<Op>>,
    pc: std::rc::Rc<std::cell::Cell<usize>>,
    timers: Vec<TimerId>,
}

impl Scripted {
    fn step(&mut self, ctx: &mut Context<'_, Msg>) {
        let pc = self.pc.get();
        let Some(op) = self.script.get(pc) else {
            return;
        };
        self.pc.set(pc + 1);
        match *op {
            Op::Send { hop } => {
                let to = NodeId::new((ctx.self_id().index() as u32 + hop) % self.nodes);
                ctx.send(to, Msg::Work);
            }
            Op::Timer { delay_ms } => {
                let id = ctx.schedule_timer(SimDuration::from_millis(delay_ms), 7);
                self.timers.push(id);
            }
            Op::Cancel { idx } => {
                if !self.timers.is_empty() {
                    let id = self.timers.remove(idx % self.timers.len());
                    ctx.cancel_timer(id);
                }
            }
        }
    }
}

impl Actor<Msg> for Scripted {
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        if matches!(msg, Msg::Work) {
            ctx.send(from, Msg::Ack);
        }
        self.step(ctx);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _tag: u64) {
        self.step(ctx);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Runs one scripted simulation to quiescence and returns its full
/// observable state: trace, dispatch count, final clock, and metric sums.
fn run(
    seed: u64,
    nodes: u32,
    script: &[Op],
    reference: Option<bool>,
    seq_base: Option<u64>,
) -> Observed {
    let mut sim: Simulation<Msg> = Simulation::new(seed);
    if let Some(reference) = reference {
        sim.use_reference_queue(reference);
    }
    if let Some(base) = seq_base {
        sim.set_seq_base(base);
    }
    sim.enable_trace();
    let script = std::rc::Rc::new(script.to_vec());
    let pc = std::rc::Rc::new(std::cell::Cell::new(0));
    for _ in 0..nodes {
        sim.add_actor(Scripted {
            nodes,
            script: script.clone(),
            pc: pc.clone(),
            timers: Vec::new(),
        });
    }
    // Kick every node so scripts drain even when early ops are cancels.
    for i in 0..nodes {
        sim.schedule_timer(
            NodeId::new(i),
            SimDuration::from_millis(1 + u64::from(i)),
            7,
        );
    }
    sim.run_until_quiescent();
    Observed {
        trace: sim.trace().expect("enabled").events().to_vec(),
        events: sim.events_processed(),
        now: sim.now(),
        count: sim.metrics().total_count(),
        bytes: sim.metrics().total_bytes(),
    }
}

#[derive(Debug, PartialEq)]
struct Observed {
    trace: Vec<TraceEvent>,
    events: u64,
    now: SimTime,
    count: u64,
    bytes: u64,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Delays straddle the wheel's 65.536 ms near-term window: short ones
    // land in slots, long ones go through the overflow heap and get
    // promoted later.
    (0u8..3, 1u32..4, 0u64..200, 0usize..8).prop_map(|(tag, hop, delay_ms, idx)| match tag {
        0 => Op::Send { hop },
        1 => Op::Timer { delay_ms },
        _ => Op::Cancel { idx },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wheel_and_reference_heap_dispatch_identically(
        seed: u64,
        nodes in 2u32..5,
        script in proptest::collection::vec(op_strategy(), 0..60),
    ) {
        let wheel = run(seed, nodes, &script, Some(false), None);
        let heap = run(seed, nodes, &script, Some(true), None);
        prop_assert_eq!(&wheel, &heap);

        // Same schedule with the sequence counter near the top of the u64
        // range: ordering must not depend on absolute sequence values.
        let high = run(seed, nodes, &script, Some(false), Some(u64::MAX - (1 << 20)));
        prop_assert_eq!(&wheel, &high);
    }
}

#[test]
fn predicate_runs_once_per_dispatched_event() {
    // `run_until` must evaluate its predicate exactly once up front and
    // once per *dispatched* event — never for queue housekeeping such as
    // skipping cancelled timers.
    for reference in [false, true] {
        let mut sim: Simulation<Msg> = Simulation::new(7);
        sim.use_reference_queue(reference);
        let script = std::rc::Rc::new(vec![Op::Send { hop: 1 }, Op::Send { hop: 1 }]);
        let pc = std::rc::Rc::new(std::cell::Cell::new(0));
        for _ in 0..2 {
            sim.add_actor(Scripted {
                nodes: 2,
                script: script.clone(),
                pc: pc.clone(),
                timers: Vec::new(),
            });
        }
        // Five timers, three cancelled while still queued: the cancelled
        // ones are skipped inside the queue and must not be visible to
        // the predicate.
        let ids: Vec<TimerId> = (0..5)
            .map(|i| sim.schedule_timer(NodeId::new(0), SimDuration::from_millis(2 + i), 7))
            .collect();
        for id in [ids[0], ids[2], ids[4]] {
            sim.cancel_timer(id);
        }
        let calls = std::cell::Cell::new(0u64);
        sim.run_until(|_| {
            calls.set(calls.get() + 1);
            false
        });
        assert_eq!(
            calls.get(),
            1 + sim.events_processed(),
            "reference={reference}: one call up front plus one per dispatch"
        );
        assert!(sim.events_processed() > 0, "something actually ran");
    }
}

#[test]
fn long_timers_cross_the_wheel_window_identically() {
    // A hand-picked script whose timers all exceed the 65.536 ms slot
    // window, forcing every one through overflow promotion.
    let script: Vec<Op> = (0..20)
        .map(|i| match i % 3 {
            0 => Op::Timer {
                delay_ms: 70 + 13 * i,
            },
            1 => Op::Send { hop: 1 },
            _ => Op::Cancel { idx: i as usize },
        })
        .collect();
    let wheel = run(99, 3, &script, Some(false), None);
    let heap = run(99, 3, &script, Some(true), None);
    assert_eq!(wheel, heap);
}

#[test]
fn process_wide_reference_queue_mode_applies_at_construction() {
    // `set_reference_queue_mode` must switch *subsequently constructed*
    // simulations to the reference heap with no per-instance call, and a
    // run under the process-wide switch must be observationally identical
    // to both explicitly selected modes.
    let script: Vec<Op> = (0..15)
        .map(|i| match i % 3 {
            0 => Op::Send { hop: 1 },
            1 => Op::Timer { delay_ms: 4 + i },
            _ => Op::Cancel { idx: i as usize },
        })
        .collect();
    let wheel = run(11, 3, &script, Some(false), None);
    let heap = run(11, 3, &script, Some(true), None);

    simnet::set_reference_queue_mode(true);
    let constructed_under_switch: Simulation<Msg> = Simulation::new(11);
    let global = run(11, 3, &script, None, None);
    simnet::set_reference_queue_mode(false);

    assert!(
        constructed_under_switch.queue_is_reference(),
        "process-wide switch applies at construction"
    );
    assert!(
        !Simulation::<Msg>::new(11).queue_is_reference(),
        "switch restored: fresh simulations are back on the wheel"
    );
    assert_eq!(global, heap);
    assert_eq!(global, wheel);
}
