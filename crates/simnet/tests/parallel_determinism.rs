//! Property-based determinism tests for the sharded engine: a run is a
//! pure function of (seed, plan, fault plan) and byte-identical at every
//! worker count.

use std::any::Any;

use proptest::prelude::*;
use simnet::{
    Actor, Context, FaultPlan, NetworkConfig, NodeId, Payload, ShardPlan, ShardedSimulation,
    SimDuration, SimTime,
};

#[derive(Clone, Debug)]
struct Token(#[allow(dead_code)] u32);

impl Payload for Token {
    const KINDS: &'static [&'static str] = &["Token"];
    fn kind_id(&self) -> usize {
        0
    }
    fn wire_size(&self) -> usize {
        16
    }
}

/// Forwards each token to a fixed next hop a bounded number of times; the
/// hop target wraps around the ring so shards exchange constantly.
struct Hop {
    next: NodeId,
    remaining: u32,
    received_at: Vec<SimTime>,
}

impl Actor<Token> for Hop {
    fn on_message(&mut self, ctx: &mut Context<'_, Token>, _from: NodeId, msg: Token) {
        self.received_at.push(ctx.now());
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(self.next, msg);
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Token>, _tag: u64) {
        ctx.send(self.next, Token(0));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A ring of `nodes` hops striped round-robin over `shards` shards, with
/// optional random loss and one optional node-outage window.
fn sharded_ring(
    seed: u64,
    nodes: u32,
    shards: u16,
    workers: usize,
    hops: u32,
    drop: f64,
    outages: &[(u32, u64, u64)],
) -> ShardedSimulation<Token> {
    let mut faults = FaultPlan::none();
    for &(node, start_ms, len_ms) in outages {
        faults.add_node_outage(
            NodeId::new(node % nodes),
            SimTime::from_micros(start_ms * 1_000),
            SimDuration::from_millis(len_ms),
        );
    }
    let plan = ShardPlan {
        owner: (0..nodes).map(|i| (i % u32::from(shards)) as u16).collect(),
        lookahead: SimDuration::from_millis(10),
        workers,
    };
    let mut sim = ShardedSimulation::with_network(
        seed,
        NetworkConfig {
            drop_rate: drop,
            ..NetworkConfig::paper_default()
        },
        faults,
        plan,
    );
    for i in 0..nodes {
        sim.add_actor(Hop {
            next: NodeId::new((i + 1) % nodes),
            remaining: hops,
            received_at: Vec::new(),
        });
    }
    sim.enable_trace();
    sim.schedule_timer(NodeId::new(0), SimDuration::from_millis(1), 0);
    sim
}

fn digest(sim: &ShardedSimulation<Token>) -> String {
    format!(
        "now={} events={} metrics={:?} trace:\n{}",
        sim.now(),
        sim.events_processed(),
        sim.metrics(),
        sim.trace().map(|t| t.render()).unwrap_or_default()
    )
}

proptest! {
    /// The tentpole property: byte-identical traces, metrics and clocks
    /// at every worker count, over random seeds, topologies, loss rates
    /// and fault plans.
    #[test]
    fn worker_count_never_changes_the_run(
        seed: u64,
        nodes in 2u32..9,
        shards in 1u16..5,
        hops in 0u32..40,
        drop in 0.0f64..0.4,
        outages in proptest::collection::vec((0u32..8, 0u64..200, 1u64..300), 0..3),
    ) {
        let run = |workers: usize| {
            let mut sim = sharded_ring(seed, nodes, shards, workers, hops, drop, &outages);
            sim.run_until_quiescent();
            digest(&sim)
        };
        let sequential = run(1);
        for workers in [2usize, 4] {
            prop_assert_eq!(&run(workers), &sequential, "workers={} diverged", workers);
        }
    }

    /// Per-hop virtual receipt times are monotone under sharded
    /// execution, just as on the legacy engine.
    #[test]
    fn time_never_goes_backwards_sharded(
        seed: u64,
        nodes in 2u32..8,
        shards in 1u16..4,
        hops in 0u32..40,
    ) {
        let mut sim = sharded_ring(seed, nodes, shards, 2, hops, 0.0, &[]);
        sim.run_until_quiescent();
        for i in 0..nodes {
            let hop: &Hop = sim.actor(NodeId::new(i));
            for w in hop.received_at.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }
    }

    /// Metrics and trace stay in lockstep at quiescence regardless of
    /// worker count or loss.
    #[test]
    fn metrics_and_trace_agree_sharded(
        seed: u64,
        shards in 1u16..4,
        workers in 1usize..5,
        drop in 0.0f64..0.9,
    ) {
        let mut sim = sharded_ring(seed, 4, shards, workers, 30, drop, &[]);
        sim.run_until_quiescent();
        let trace = sim.trace().expect("enabled");
        prop_assert_eq!(trace.len() as u64, sim.metrics().total_count());
        let dropped = trace
            .events()
            .iter()
            .filter(|e| e.disposition != simnet::Disposition::Delivered)
            .count() as u64;
        prop_assert_eq!(dropped, sim.metrics().dropped());
    }
}
