//! Optional event tracing.
//!
//! When enabled on a [`Simulation`](crate::Simulation), every message
//! send is recorded as a [`TraceEvent`] — what was sent, by whom, to
//! whom, when, how big, and whether the loss model delivered or dropped
//! it. Traces make protocol debugging tractable ("which converge probe
//! woke that FS up?") and enable offline analyses that aggregate counters
//! cannot answer, like per-link traffic matrices.
//!
//! Tracing is off by default: big experiments send millions of messages
//! and the paper's metrics only need the counters.

use crate::node::NodeId;
use crate::time::SimTime;

/// What happened to a sent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Scheduled for delivery.
    Delivered,
    /// Dropped by the random-loss model.
    DroppedRandom,
    /// Dropped by a scheduled fault (node or link outage).
    DroppedFault,
}

/// One recorded message send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the message was sent.
    pub at: SimTime,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Message kind label (as reported to the metrics).
    pub kind: &'static str,
    /// Modeled wire size.
    pub bytes: usize,
    /// Delivery outcome.
    pub disposition: Disposition,
}

/// An in-memory trace of message sends.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Records one send.
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All recorded events in send order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Removes and returns all recorded events, leaving the trace empty.
    /// Used by the sharded engine to merge per-shard traces at each round
    /// barrier.
    pub(crate) fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events on the directed link `from → to`.
    pub fn on_link(&self, from: NodeId, to: NodeId) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events
            .iter()
            .filter(move |e| e.from == from && e.to == to)
    }

    /// Total bytes sent between two (unordered) endpoints — e.g. to
    /// measure cross-WAN traffic between two data-center node groups.
    pub fn bytes_between(&self, a: &[NodeId], b: &[NodeId]) -> u64 {
        self.events
            .iter()
            .filter(|e| {
                (a.contains(&e.from) && b.contains(&e.to))
                    || (b.contains(&e.from) && a.contains(&e.to))
            })
            .map(|e| e.bytes as u64)
            .sum()
    }

    /// Renders the trace as one line per event (for dumping to a file).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{} {} -> {} {} {}B {:?}\n",
                e.at, e.from, e.to, e.kind, e.bytes, e.disposition
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, from: u32, to: u32, kind: &'static str, bytes: usize) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_micros(at_us),
            from: NodeId::new(from),
            to: NodeId::new(to),
            kind,
            bytes,
            disposition: Disposition::Delivered,
        }
    }

    #[test]
    fn record_and_query() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.record(ev(1, 0, 1, "A", 10));
        t.record(ev(2, 1, 0, "B", 20));
        t.record(ev(3, 0, 2, "A", 30));
        assert_eq!(t.len(), 3);
        assert_eq!(t.of_kind("A").count(), 2);
        assert_eq!(t.on_link(NodeId::new(0), NodeId::new(1)).count(), 1);
        assert_eq!(t.on_link(NodeId::new(1), NodeId::new(0)).count(), 1);
    }

    #[test]
    fn bytes_between_groups_is_symmetric() {
        let mut t = Trace::new();
        t.record(ev(1, 0, 2, "A", 100));
        t.record(ev(2, 2, 0, "B", 50));
        t.record(ev(3, 0, 1, "C", 999)); // intra-group: excluded
        let g1 = [NodeId::new(0), NodeId::new(1)];
        let g2 = [NodeId::new(2)];
        assert_eq!(t.bytes_between(&g1, &g2), 150);
        assert_eq!(t.bytes_between(&g2, &g1), 150);
    }

    #[test]
    fn render_is_line_per_event() {
        let mut t = Trace::new();
        t.record(ev(1_000_000, 0, 1, "Ping", 64));
        let s = t.render();
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("Ping"), "{s}");
        assert!(s.contains("64B"), "{s}");
    }
}
