//! Deterministic parallel fan-out over independent work items.
//!
//! Simulations are pure functions of their inputs, so a *sweep* over many
//! scenarios (the invariant explorer's 144-scenario grid, a benchmark's
//! seed batch) is embarrassingly parallel — as long as the merge step
//! never lets worker scheduling leak into the result. [`map_indexed`]
//! guarantees that: items are claimed from a shared cursor, each result
//! is written back at its item's index, and the returned `Vec` is in
//! input order regardless of which worker finished first. Running with
//! `workers == 1` and `workers == N` is byte-identical by construction,
//! which the explorer's CI digest check enforces end to end.
//!
//! Workers are **scoped** threads (`std::thread::scope`), not free-running
//! `std::thread::spawn` — they cannot outlive the call, so nothing ever
//! interleaves with a simulation's event loop. (The determinism lint bans
//! `thread::spawn` for exactly that reason.)

use std::sync::Mutex;
use std::thread;

/// Applies `f` to every item, fanning work out across `workers` scoped
/// threads, and returns the results **in input order**.
///
/// `f` must be safe to call concurrently on distinct items (it only gets
/// a shared reference to itself); each item is processed exactly once.
/// `workers` is clamped to at least 1 and at most the number of items; a
/// single-worker sweep degenerates to a plain sequential map over the
/// same code path, so the two configurations are trivially identical.
///
/// A panic inside `f` propagates to the caller once in-flight items have
/// finished (scoped threads join on scope exit).
pub fn map_indexed<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    // Work is claimed item-by-item from a shared cursor (the same pattern
    // as the experiment runner): faster workers take more items, and the
    // indexed write-back keeps the merge order independent of scheduling.
    let queue: Mutex<(usize, Vec<Option<T>>)> =
        Mutex::new((0, items.into_iter().map(Some).collect()));
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let (i, item) = {
                    let mut q = queue.lock().expect("sweep queue poisoned");
                    let i = q.0;
                    if i >= n {
                        break;
                    }
                    q.0 += 1;
                    (i, q.1[i].take().expect("item claimed once"))
                };
                let r = f(i, item);
                *results[i].lock().expect("sweep result poisoned") = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("sweep result poisoned")
                .expect("every item produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 200] {
            let got = map_indexed(items.clone(), workers, |_, i| i * i);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items = vec!["a", "b", "c"];
        let got = map_indexed(items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u32> = map_indexed(Vec::<u32>::new(), 4, |_, x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn parallel_equals_sequential_for_stateful_work() {
        // Each item's work depends only on the item, so any worker count
        // must give the same answer.
        let work = |_, seed: u64| {
            let mut h = seed;
            for _ in 0..1000 {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            h
        };
        let items: Vec<u64> = (0..37).collect();
        let seq = map_indexed(items.clone(), 1, work);
        let par = map_indexed(items, 4, work);
        assert_eq!(seq, par);
    }
}
