//! Node identifiers.

use std::fmt;

/// Identifies an actor in a [`Simulation`](crate::Simulation).
///
/// Ids are dense indices assigned in the order actors are added. The paper
/// relies on server ids being totally ordered — the sibling-fragment-
/// recovery backoff rule is "an FS only backs off if its unique server id is
/// lower than the other sibling FS's unique id" — which `NodeId`'s `Ord`
/// provides.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from its raw index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_order() {
        let a = NodeId::new(3);
        assert_eq!(a.index(), 3);
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(format!("{a}"), "n3");
    }
}
