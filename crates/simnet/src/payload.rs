//! The message payload contract.

/// A message type that can travel through the simulated network.
///
/// The methods feed the per-kind [`Metrics`](crate::Metrics): the paper
/// reports both the **number of messages sent** and the **message bytes
/// sent**, broken down by message kind (the stacked legends of Figures
/// 5–8), so each payload declares a metric label and a modeled wire size.
///
/// Kinds form a compile-time registry: [`KINDS`](Payload::KINDS) lists
/// every label and [`kind_id`](Payload::kind_id) returns this message's
/// dense index into it. The engine's `record_send` is then a single array
/// index — no map lookup on the per-message hot path — while reports
/// still render labels (sorted) through [`kind`](Payload::kind).
pub trait Payload: Clone {
    /// Every metric label this message type can produce, indexed by
    /// [`kind_id`](Payload::kind_id). Order is arbitrary but fixed; it is
    /// the layout of the per-kind metric arrays.
    const KINDS: &'static [&'static str];

    /// Protocol event counters this payload's actors may record via
    /// [`Metrics::record_event`](crate::Metrics::record_event), indexed by
    /// event id. These count protocol-level happenings (cache hits, delta
    /// fallbacks, bytes saved) rather than messages, and stay out of the
    /// per-kind send/drop tables. Defaults to none.
    const EVENTS: &'static [&'static str] = &[];

    /// Dense index of this message's kind into [`KINDS`](Payload::KINDS).
    fn kind_id(&self) -> usize;

    /// Stable metric label for this message, e.g. `"StoreFragmentReq"`.
    fn kind(&self) -> &'static str {
        Self::KINDS[self.kind_id()]
    }

    /// Modeled size of the message on the wire, in bytes, including any
    /// fragment payload it carries.
    fn wire_size(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Blob(usize);
    impl Payload for Blob {
        const KINDS: &'static [&'static str] = &["Blob"];
        fn kind_id(&self) -> usize {
            0
        }
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn payload_contract() {
        let b = Blob(128);
        assert_eq!(b.kind_id(), 0);
        assert_eq!(b.kind(), "Blob", "kind defaults through the registry");
        assert_eq!(b.wire_size(), 128);
    }
}
