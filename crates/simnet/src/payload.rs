//! The message payload contract.

/// A message type that can travel through the simulated network.
///
/// The two methods feed the per-kind [`Metrics`](crate::Metrics): the paper
/// reports both the **number of messages sent** and the **message bytes
/// sent**, broken down by message kind (the stacked legends of Figures
/// 5–8), so each payload declares a metric label and a modeled wire size.
pub trait Payload: Clone {
    /// Stable metric label for this message, e.g. `"StoreFragmentReq"`.
    fn kind(&self) -> &'static str;

    /// Modeled size of the message on the wire, in bytes, including any
    /// fragment payload it carries.
    fn wire_size(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Blob(usize);
    impl Payload for Blob {
        fn kind(&self) -> &'static str {
            "Blob"
        }
        fn wire_size(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn payload_contract() {
        let b = Blob(128);
        assert_eq!(b.kind(), "Blob");
        assert_eq!(b.wire_size(), 128);
    }
}
