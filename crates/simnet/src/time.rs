//! Virtual time: instants and durations with microsecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since the start of
/// the run. The clock starts at [`SimTime::ZERO`] and only moves forward.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant (useful as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds since simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is later than self"),
        )
    }

    /// Saturating addition of a duration (saturates at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1_000_000)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by an integer factor (saturating).
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_mins(1).as_micros(), 60_000_000);
        assert_eq!(SimTime::from_micros(5_000).as_millis(), 5);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_micros(), 10_000);
        let mut u = t;
        u += SimDuration::from_millis(5);
        assert_eq!(u.duration_since(t), SimDuration::from_millis(5));
        assert_eq!(
            SimDuration::from_secs(3) - SimDuration::from_secs(1),
            SimDuration::from_secs(2)
        );
        assert_eq!(
            SimDuration::from_secs(1) + SimDuration::from_secs(2),
            SimDuration::from_secs(3)
        );
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimTime::MAX > SimTime::from_micros(u64::MAX - 1));
        assert_eq!(
            SimDuration::from_millis(5).min(SimDuration::from_millis(3)),
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_micros(u64::MAX)
                .saturating_mul(2)
                .as_micros(),
            u64::MAX
        );
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn negative_duration_panics() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_micros(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_micros(1_500_000)), "t+1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
    }
}
