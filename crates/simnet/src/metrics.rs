//! Per-message-kind traffic accounting.
//!
//! The paper's evaluation criteria (§5.1): "the message bytes sent and the
//! number of messages sent to reach AMR, including all activity from the
//! proxy's put and all convergence activity". Messages are counted at
//! **send** time — a dropped message was still sent and still cost network
//! capacity, which is what the lossy-network experiment measures.

use std::collections::BTreeMap;

/// Count and byte totals for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Number of messages of this kind sent.
    pub count: u64,
    /// Total modeled wire bytes of this kind sent.
    pub bytes: u64,
}

/// Traffic totals broken down by message kind.
///
/// Kinds are ordered lexicographically (`BTreeMap`) so reports are stable
/// across runs.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    per_kind: BTreeMap<&'static str, KindStats>,
    dropped: u64,
    duplicated: u64,
}

impl Metrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records that one message of `kind` with `bytes` wire bytes was sent.
    pub fn record_send(&mut self, kind: &'static str, bytes: usize) {
        let e = self.per_kind.entry(kind).or_default();
        e.count += 1;
        e.bytes += bytes as u64;
    }

    /// Records that a sent message was dropped in flight.
    pub fn record_drop(&mut self) {
        self.dropped += 1;
    }

    /// Records that a delivered message was duplicated by the channel.
    pub fn record_duplicate(&mut self) {
        self.duplicated += 1;
    }

    /// Stats for a single kind (zero if never seen).
    pub fn kind(&self, kind: &str) -> KindStats {
        self.per_kind.get(kind).copied().unwrap_or_default()
    }

    /// Iterates over `(kind, stats)` in lexicographic kind order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, KindStats)> + '_ {
        self.per_kind.iter().map(|(&k, &v)| (k, v))
    }

    /// Total messages sent across all kinds.
    pub fn total_count(&self) -> u64 {
        self.per_kind.values().map(|s| s.count).sum()
    }

    /// Total bytes sent across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.per_kind.values().map(|s| s.bytes).sum()
    }

    /// Number of sent messages that were dropped in flight.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of messages the channel duplicated.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Merges another metrics object into this one (used when aggregating
    /// trials).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, s) in other.iter() {
            let e = self.per_kind.entry(k).or_default();
            e.count += s.count;
            e.bytes += s.bytes;
        }
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut m = Metrics::new();
        m.record_send("A", 10);
        m.record_send("A", 20);
        m.record_send("B", 5);
        assert_eq!(
            m.kind("A"),
            KindStats {
                count: 2,
                bytes: 30
            }
        );
        assert_eq!(m.kind("B"), KindStats { count: 1, bytes: 5 });
        assert_eq!(m.kind("C"), KindStats::default());
        assert_eq!(m.total_count(), 3);
        assert_eq!(m.total_bytes(), 35);
    }

    #[test]
    fn drops_tracked_separately_from_sends() {
        let mut m = Metrics::new();
        m.record_send("A", 10);
        m.record_drop();
        assert_eq!(m.total_count(), 1, "dropped messages still count as sent");
        assert_eq!(m.dropped(), 1);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut m = Metrics::new();
        m.record_send("Zed", 1);
        m.record_send("Alpha", 1);
        m.record_send("Mid", 1);
        let kinds: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, ["Alpha", "Mid", "Zed"]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Metrics::new();
        a.record_send("X", 1);
        let mut b = Metrics::new();
        b.record_send("X", 2);
        b.record_send("Y", 3);
        b.record_drop();
        a.merge(&b);
        assert_eq!(a.kind("X"), KindStats { count: 2, bytes: 3 });
        assert_eq!(a.kind("Y"), KindStats { count: 1, bytes: 3 });
        assert_eq!(a.dropped(), 1);
    }
}
