//! Per-message-kind traffic accounting.
//!
//! The paper's evaluation criteria (§5.1): "the message bytes sent and the
//! number of messages sent to reach AMR, including all activity from the
//! proxy's put and all convergence activity". Messages are counted at
//! **send** time — a dropped message was still sent and still cost network
//! capacity, which is what the lossy-network experiment measures.
//!
//! Counters are dense arrays indexed by the payload's compile-time kind
//! registry ([`Payload::KINDS`](crate::Payload::KINDS)): `record_send` is
//! a branch-free array index instead of the `BTreeMap` lookup it
//! replaced. Reports still render in sorted label order via [`iter`]
//! (which also skips never-sent kinds, so aggregated tables list only
//! traffic that exists).
//!
//! [`iter`]: Metrics::iter

use crate::payload::Payload;

/// Count and byte totals for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Number of messages of this kind sent.
    pub count: u64,
    /// Total modeled wire bytes of this kind sent.
    pub bytes: u64,
}

/// In-flight losses for one message kind, split by cause so convergence
/// cost tables can attribute lost bytes to injected faults vs. the
/// channel's random loss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropStats {
    /// Messages dropped by an injected fault (outage, partition).
    pub fault_count: u64,
    /// Wire bytes of fault-dropped messages.
    pub fault_bytes: u64,
    /// Messages dropped by the channel's random loss rate.
    pub random_count: u64,
    /// Wire bytes of randomly dropped messages.
    pub random_bytes: u64,
}

impl DropStats {
    /// Dropped messages of this kind, both causes.
    pub fn count(&self) -> u64 {
        self.fault_count + self.random_count
    }

    /// Dropped wire bytes of this kind, both causes.
    pub fn bytes(&self) -> u64 {
        self.fault_bytes + self.random_bytes
    }
}

/// Traffic totals broken down by message kind.
///
/// Backed by dense arrays laid out by a payload type's kind registry;
/// recording is O(1) array indexing, reporting sorts labels on demand.
///
/// Physical messages vs. logical entries: a coalesced batch (see
/// [`record_coalesced`](Self::record_coalesced)) counts as **one** sent
/// message carrying several logical protocol entries. `entries` tracks the
/// latter so batched and unbatched runs can be compared on equal logical
/// work while `count`/`bytes` show the physical (header-amortized) cost.
#[derive(Clone, Default)]
pub struct Metrics {
    registry: &'static [&'static str],
    sends: Vec<KindStats>,
    drops: Vec<DropStats>,
    duplicated: u64,
    entries: Vec<u64>,
    event_registry: &'static [&'static str],
    events: Vec<u64>,
}

impl std::fmt::Debug for Metrics {
    /// Matches the pre-`entries` derived output field for field: replay
    /// digests are `format!("{:?}")` of this struct, and adding the
    /// logical-entry counters must not disturb digests of runs that never
    /// coalesce (where `entries` mirrors `count` exactly).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("registry", &self.registry)
            .field("sends", &self.sends)
            .field("drops", &self.drops)
            .field("duplicated", &self.duplicated)
            .finish()
    }
}

impl Metrics {
    /// Creates empty metrics with an empty kind registry. Recording into
    /// it panics; it exists as a neutral element for [`merge`](Self::merge)
    /// and as the `Default`.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Creates metrics laid out for `registry` (one slot per kind), with
    /// no event counters.
    pub fn with_registry(registry: &'static [&'static str]) -> Self {
        Metrics::with_registries(registry, &[])
    }

    /// Creates metrics laid out for `registry` (one slot per kind) and
    /// `event_registry` (one slot per protocol event counter).
    pub fn with_registries(
        registry: &'static [&'static str],
        event_registry: &'static [&'static str],
    ) -> Self {
        Metrics {
            registry,
            sends: vec![KindStats::default(); registry.len()],
            drops: vec![DropStats::default(); registry.len()],
            duplicated: 0,
            entries: vec![0; registry.len()],
            event_registry,
            events: vec![0; event_registry.len()],
        }
    }

    /// Creates metrics laid out for message type `M`'s kind and event
    /// registries.
    pub fn for_payload<M: Payload>() -> Self {
        Metrics::with_registries(M::KINDS, M::EVENTS)
    }

    /// The kind registry this metrics object is laid out for.
    pub fn registry(&self) -> &'static [&'static str] {
        self.registry
    }

    /// Records that one message of kind `kind_id` with `bytes` wire bytes
    /// was sent.
    ///
    /// # Panics
    ///
    /// Panics if `kind_id` is out of range for the registry.
    // lint:hot
    pub fn record_send(&mut self, kind_id: usize, bytes: usize) {
        let e = &mut self.sends[kind_id];
        e.count += 1;
        e.bytes += bytes as u64;
        self.entries[kind_id] += 1;
    }

    /// Records one physical message of kind `kind_id` carrying `entries`
    /// logical protocol entries in `bytes` wire bytes — the accounting for
    /// a coalesced batch (one shared header, several entry bodies).
    ///
    /// # Panics
    ///
    /// Panics if `kind_id` is out of range for the registry.
    pub fn record_coalesced(&mut self, kind_id: usize, bytes: usize, entries: u64) {
        let e = &mut self.sends[kind_id];
        e.count += 1;
        e.bytes += bytes as u64;
        self.entries[kind_id] += entries;
    }

    /// Records that a sent message of kind `kind_id` was dropped in
    /// flight — by an injected fault if `fault`, by random channel loss
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `kind_id` is out of range for the registry.
    // lint:hot
    pub fn record_drop(&mut self, kind_id: usize, bytes: usize, fault: bool) {
        let e = &mut self.drops[kind_id];
        if fault {
            e.fault_count += 1;
            e.fault_bytes += bytes as u64;
        } else {
            e.random_count += 1;
            e.random_bytes += bytes as u64;
        }
    }

    /// Records that a delivered message was duplicated by the channel.
    pub fn record_duplicate(&mut self) {
        self.duplicated += 1;
    }

    /// Adds `amount` to the protocol event counter `event_id` (an index
    /// into the payload's event registry). Events count protocol-level
    /// happenings, not messages: they never contribute to
    /// [`total_count`](Self::total_count)/[`total_bytes`](Self::total_bytes)
    /// or to replay digests.
    ///
    /// # Panics
    ///
    /// Panics if `event_id` is out of range for the event registry.
    // lint:hot
    pub fn record_event(&mut self, event_id: usize, amount: u64) {
        self.events[event_id] += amount;
    }

    /// The event-counter registry this metrics object is laid out for.
    pub fn event_registry(&self) -> &'static [&'static str] {
        self.event_registry
    }

    /// The value of event counter `event` (zero if never recorded or
    /// unregistered).
    pub fn event(&self, event: &str) -> u64 {
        self.event_registry
            .iter()
            .position(|&e| e == event)
            .map(|i| self.events[i])
            .unwrap_or(0)
    }

    /// Iterates over `(event, total)` of every event counter with a
    /// nonzero total, in lexicographic event order.
    pub fn iter_events(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        let mut seen: Vec<(&'static str, u64)> = self
            .event_registry
            .iter()
            .zip(&self.events)
            .filter(|(_, &v)| v > 0)
            .map(|(&e, &v)| (e, v))
            .collect();
        seen.sort_unstable_by_key(|&(e, _)| e);
        seen.into_iter()
    }

    fn index_of(&self, kind: &str) -> Option<usize> {
        self.registry.iter().position(|&k| k == kind)
    }

    /// Send stats for a single kind (zero if never seen or unregistered).
    pub fn kind(&self, kind: &str) -> KindStats {
        self.index_of(kind)
            .map(|i| self.sends[i])
            .unwrap_or_default()
    }

    /// Drop stats for a single kind (zero if never seen or unregistered).
    pub fn drops_for(&self, kind: &str) -> DropStats {
        self.index_of(kind)
            .map(|i| self.drops[i])
            .unwrap_or_default()
    }

    /// Logical protocol entries sent for a single kind (zero if never seen
    /// or unregistered). Equals `kind(kind).count` unless batches were
    /// coalesced for this kind.
    pub fn entries_for(&self, kind: &str) -> u64 {
        self.index_of(kind).map(|i| self.entries[i]).unwrap_or(0)
    }

    /// Total logical protocol entries sent across all kinds.
    pub fn total_entries(&self) -> u64 {
        self.entries.iter().sum()
    }

    /// Iterates over `(kind, stats)` of every kind with at least one send,
    /// in lexicographic kind order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, KindStats)> + '_ {
        let mut seen: Vec<(&'static str, KindStats)> = self
            .registry
            .iter()
            .zip(&self.sends)
            .filter(|(_, s)| s.count > 0)
            .map(|(&k, &s)| (k, s))
            .collect();
        seen.sort_unstable_by_key(|&(k, _)| k);
        seen.into_iter()
    }

    /// Iterates over `(kind, drops)` of every kind with at least one drop,
    /// in lexicographic kind order.
    pub fn iter_drops(&self) -> impl Iterator<Item = (&'static str, DropStats)> + '_ {
        let mut seen: Vec<(&'static str, DropStats)> = self
            .registry
            .iter()
            .zip(&self.drops)
            .filter(|(_, d)| d.count() > 0)
            .map(|(&k, &d)| (k, d))
            .collect();
        seen.sort_unstable_by_key(|&(k, _)| k);
        seen.into_iter()
    }

    /// Total messages sent across all kinds.
    pub fn total_count(&self) -> u64 {
        self.sends.iter().map(|s| s.count).sum()
    }

    /// Total bytes sent across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.sends.iter().map(|s| s.bytes).sum()
    }

    /// Number of sent messages that were dropped in flight (both causes).
    pub fn dropped(&self) -> u64 {
        self.drops.iter().map(DropStats::count).sum()
    }

    /// Number of messages the channel duplicated.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Merges another metrics object into this one (used when aggregating
    /// trials). An empty-registry accumulator adopts the other's layout.
    ///
    /// # Panics
    ///
    /// Panics if both sides carry different (non-empty) registries: their
    /// dense arrays would not be commensurable.
    pub fn merge(&mut self, other: &Metrics) {
        if self.registry.is_empty() {
            self.registry = other.registry;
            self.sends = vec![KindStats::default(); other.registry.len()];
            self.drops = vec![DropStats::default(); other.registry.len()];
            self.entries = vec![0; other.registry.len()];
        }
        if self.event_registry.is_empty() {
            self.event_registry = other.event_registry;
            self.events = vec![0; other.event_registry.len()];
        }
        assert_eq!(
            self.registry, other.registry,
            "cannot merge metrics from different kind registries"
        );
        assert_eq!(
            self.event_registry, other.event_registry,
            "cannot merge metrics from different event registries"
        );
        for (a, b) in self.sends.iter_mut().zip(&other.sends) {
            a.count += b.count;
            a.bytes += b.bytes;
        }
        for (a, b) in self.drops.iter_mut().zip(&other.drops) {
            a.fault_count += b.fault_count;
            a.fault_bytes += b.fault_bytes;
            a.random_count += b.random_count;
            a.random_bytes += b.random_bytes;
        }
        self.duplicated += other.duplicated;
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            *a += b;
        }
        for (a, b) in self.events.iter_mut().zip(&other.events) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: &[&str] = &["Zed", "Alpha", "Mid"];

    #[test]
    fn record_and_query() {
        let mut m = Metrics::with_registry(KINDS);
        m.record_send(1, 10);
        m.record_send(1, 20);
        m.record_send(2, 5);
        assert_eq!(
            m.kind("Alpha"),
            KindStats {
                count: 2,
                bytes: 30
            }
        );
        assert_eq!(m.kind("Mid"), KindStats { count: 1, bytes: 5 });
        assert_eq!(m.kind("Zed"), KindStats::default());
        assert_eq!(m.kind("NoSuchKind"), KindStats::default());
        assert_eq!(m.total_count(), 3);
        assert_eq!(m.total_bytes(), 35);
    }

    #[test]
    fn drops_tracked_separately_from_sends_and_split_by_cause() {
        let mut m = Metrics::with_registry(KINDS);
        m.record_send(0, 10);
        m.record_drop(0, 10, false);
        m.record_send(0, 7);
        m.record_drop(0, 7, true);
        assert_eq!(m.total_count(), 2, "dropped messages still count as sent");
        assert_eq!(m.dropped(), 2);
        let d = m.drops_for("Zed");
        assert_eq!(
            d,
            DropStats {
                fault_count: 1,
                fault_bytes: 7,
                random_count: 1,
                random_bytes: 10,
            }
        );
        assert_eq!(d.count(), 2);
        assert_eq!(d.bytes(), 17);
        assert_eq!(m.drops_for("Alpha"), DropStats::default());
    }

    #[test]
    fn iteration_is_sorted_and_skips_unsent_kinds() {
        let mut m = Metrics::with_registry(KINDS);
        m.record_send(0, 1);
        m.record_send(1, 1);
        let kinds: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, ["Alpha", "Zed"], "sorted; never-sent Mid omitted");
        m.record_drop(2, 4, true);
        let dropped: Vec<&str> = m.iter_drops().map(|(k, _)| k).collect();
        assert_eq!(dropped, ["Mid"]);
    }

    #[test]
    fn merge_accumulates_and_adopts_registry() {
        let mut a = Metrics::new();
        let mut b = Metrics::with_registry(KINDS);
        b.record_send(0, 1);
        b.record_drop(0, 1, false);
        b.record_duplicate();
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.kind("Zed"), KindStats { count: 2, bytes: 2 });
        assert_eq!(a.dropped(), 2);
        assert_eq!(a.duplicated(), 2);
        assert_eq!(a.registry(), KINDS);
    }

    const EVENTS: &[&str] = &["zeta_event", "alpha_event"];

    #[test]
    fn events_accumulate_and_stay_out_of_traffic_totals() {
        let mut m = Metrics::with_registries(KINDS, EVENTS);
        m.record_event(0, 3);
        m.record_event(0, 2);
        m.record_event(1, 40);
        assert_eq!(m.event("zeta_event"), 5);
        assert_eq!(m.event("alpha_event"), 40);
        assert_eq!(m.event("no_such_event"), 0);
        assert_eq!(m.total_count(), 0, "events are not messages");
        assert_eq!(m.total_bytes(), 0);
        let listed: Vec<_> = m.iter_events().collect();
        assert_eq!(listed, [("alpha_event", 40), ("zeta_event", 5)]);
        let dbg = format!("{m:?}");
        assert!(
            !dbg.contains("event"),
            "events are excluded from replay digests: {dbg}"
        );

        let mut acc = Metrics::new();
        acc.merge(&m);
        acc.merge(&m);
        assert_eq!(acc.event("zeta_event"), 10);
        assert_eq!(acc.event_registry(), EVENTS);
    }

    #[test]
    #[should_panic(expected = "different kind registries")]
    fn merge_rejects_mismatched_registries() {
        let mut a = Metrics::with_registry(&["A"]);
        let b = Metrics::with_registry(&["B"]);
        a.merge(&b);
    }
}
