#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Deterministic discrete-event network simulator.
//!
//! This crate is the evaluation testbed for the Pahoehoe reproduction. The
//! DSN 2010 paper evaluates the Pahoehoe protocols "by running the Pahoehoe
//! implementation in a simulated network environment" with a simple
//! performance model — each message has a latency chosen uniformly at
//! random between 10 and 30 ms — plus injected failures (node outages,
//! partitions, random message loss). `simnet` reproduces exactly that model:
//!
//! * a virtual clock ([`SimTime`]) and a seeded event queue, so every run is
//!   a pure function of its seed;
//! * an [`Actor`] trait implemented by protocol state machines (proxies,
//!   key-lookup servers, fragment servers, clients);
//! * a [`NetworkConfig`] (latency distribution, system-wide drop rate) and a
//!   [`FaultPlan`] (node outages, link outages, partitions);
//! * per-message-kind [`Metrics`] — message **count** and message **bytes**
//!   sent, the two quantities every figure in the paper reports.
//!
//! # Examples
//!
//! ```
//! use simnet::{Actor, Context, NodeId, Payload, Simulation, SimDuration};
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl Payload for Ping {
//!     const KINDS: &'static [&'static str] = &["Ping"];
//!     fn kind_id(&self) -> usize { 0 }
//!     fn wire_size(&self) -> usize { 64 }
//! }
//!
//! struct Node { got: u32 }
//! impl Actor<Ping> for Node {
//!     fn on_message(&mut self, _ctx: &mut Context<'_, Ping>, _from: NodeId, _msg: Ping) {
//!         self.got += 1;
//!     }
//!     fn on_timer(&mut self, ctx: &mut Context<'_, Ping>, _tag: u64) {
//!         let peer = NodeId::new(1 - ctx.self_id().index() as u32);
//!         ctx.send(peer, Ping);
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let a = sim.add_actor(Node { got: 0 });
//! let _b = sim.add_actor(Node { got: 0 });
//! sim.schedule_timer(a, SimDuration::from_millis(5), 0);
//! sim.run_until_quiescent();
//! assert_eq!(sim.metrics().total_count(), 1);
//! ```

pub mod actor;
pub mod engine;
pub mod metrics;
pub mod network;
pub mod node;
pub mod parallel;
pub mod payload;
pub mod queue;
pub mod sweep;
pub mod time;
pub mod trace;

pub use actor::Actor;
pub use engine::{
    reference_queue_mode, set_reference_queue_mode, Context, Inspector, RunOutcome, Simulation,
    TimerId,
};
pub use metrics::{DropStats, KindStats, Metrics};
pub use network::{FaultPlan, LatencyOverride, NetworkConfig};
pub use node::NodeId;
pub use parallel::{ShardPlan, ShardedSimulation, SimView};
pub use payload::Payload;
pub use time::{SimDuration, SimTime};
pub use trace::{Disposition, Trace, TraceEvent};
