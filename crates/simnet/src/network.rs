//! Network performance model and fault injection.
//!
//! The paper's model (§5.1): each message has a latency chosen uniformly at
//! random in \[10 ms, 30 ms\]; failures are injected either by dropping all
//! messages in and out of designated nodes for a fixed window (simulating a
//! crash-and-recover or a partition) or by dropping a percentage of all
//! messages system-wide (the lossy-network experiment).

use rand::Rng;

use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// A latency override for links between two node groups — e.g. to model
/// fast intra-data-center links against a slow WAN. The paper's model is
/// a single uniform distribution for every link, so overrides are an
/// opt-in extension (used by ablations).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyOverride {
    /// One endpoint group.
    pub group_a: Vec<NodeId>,
    /// The other endpoint group.
    pub group_b: Vec<NodeId>,
    /// Minimum one-way latency on matching links.
    pub latency_min: SimDuration,
    /// Maximum one-way latency on matching links.
    pub latency_max: SimDuration,
}

impl LatencyOverride {
    fn matches(&self, from: NodeId, to: NodeId) -> bool {
        (self.group_a.contains(&from) && self.group_b.contains(&to))
            || (self.group_b.contains(&from) && self.group_a.contains(&to))
    }
}

/// Latency distribution and system-wide loss rate.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Minimum one-way message latency.
    pub latency_min: SimDuration,
    /// Maximum one-way message latency (inclusive bound of the uniform
    /// distribution).
    pub latency_max: SimDuration,
    /// Probability in `[0, 1]` that any given message is silently dropped
    /// (the paper's lossy-network drop rate; zero by default).
    pub drop_rate: f64,
    /// Probability in `[0, 1]` that a delivered message is delivered
    /// *twice* (with independent latencies). The paper's channel model is
    /// "point-to-point channels with fair losses and **bounded message
    /// duplication**" (§3.1); protocols must be idempotent under it. Zero
    /// by default.
    pub duplicate_rate: f64,
    /// Per-link latency overrides, first match wins (empty by default —
    /// the paper's single uniform distribution).
    pub latency_overrides: Vec<LatencyOverride>,
}

impl NetworkConfig {
    /// The paper's model: uniform 10–30 ms latency, no random loss.
    pub fn paper_default() -> Self {
        NetworkConfig {
            latency_min: SimDuration::from_millis(10),
            latency_max: SimDuration::from_millis(30),
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            latency_overrides: Vec::new(),
        }
    }

    /// Same latency model with a system-wide message drop rate.
    ///
    /// # Panics
    ///
    /// Panics if `drop_rate` is not within `[0, 1]`.
    pub fn with_drop_rate(drop_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_rate),
            "drop rate must be a probability"
        );
        NetworkConfig {
            drop_rate,
            ..NetworkConfig::paper_default()
        }
    }

    /// Same latency model with a message duplication rate.
    ///
    /// # Panics
    ///
    /// Panics if `duplicate_rate` is not within `[0, 1]`.
    pub fn with_duplicate_rate(duplicate_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&duplicate_rate),
            "duplicate rate must be a probability"
        );
        NetworkConfig {
            duplicate_rate,
            ..NetworkConfig::paper_default()
        }
    }

    /// Samples a one-way latency from the default uniform distribution.
    pub fn sample_latency<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        Self::sample(self.latency_min, self.latency_max, rng)
    }

    /// Samples a one-way latency for the specific link `from → to`,
    /// honoring [`latency_overrides`](Self::latency_overrides) (first
    /// match wins).
    pub fn sample_link_latency<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        to: NodeId,
        rng: &mut R,
    ) -> SimDuration {
        for ov in &self.latency_overrides {
            if ov.matches(from, to) {
                return Self::sample(ov.latency_min, ov.latency_max, rng);
            }
        }
        self.sample_latency(rng)
    }

    /// The minimum possible one-way latency on the link `from → to`,
    /// honoring [`latency_overrides`](Self::latency_overrides) with the
    /// same first-match-wins rule as
    /// [`sample_link_latency`](Self::sample_link_latency). This is the
    /// link's deterministic latency floor; the sharded engine
    /// ([`crate::parallel`]) derives its conservative lookahead from the
    /// minimum over all cross-shard links.
    pub fn link_latency_min(&self, from: NodeId, to: NodeId) -> SimDuration {
        for ov in &self.latency_overrides {
            if ov.matches(from, to) {
                return ov.latency_min;
            }
        }
        self.latency_min
    }

    fn sample<R: Rng + ?Sized>(min: SimDuration, max: SimDuration, rng: &mut R) -> SimDuration {
        let lo = min.as_micros();
        let hi = max.as_micros();
        if lo >= hi {
            return min;
        }
        SimDuration::from_micros(rng.random_range(lo..=hi))
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::paper_default()
    }
}

/// A half-open outage window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Window {
    start: SimTime,
    end: SimTime,
}

impl Window {
    fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }
}

/// Scheduled failures: node outages and link outages.
///
/// A *node outage* drops every message into or out of the node during the
/// window — the paper's simulation of a server crash and recovery (state is
/// preserved; only connectivity is lost, matching the crash-recovery model
/// with stable storage). A *link outage* drops messages between a specific
/// pair in both directions; [`FaultPlan::add_partition`] builds the full
/// bipartite set of link outages between two groups, the paper's WAN
/// partition.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    node_outages: Vec<(NodeId, Window)>,
    link_outages: Vec<(NodeId, NodeId, Window)>,
}

impl FaultPlan {
    /// A plan with no failures.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Makes `node` unreachable (all messages in and out dropped) during
    /// `[start, start + duration)`.
    pub fn add_node_outage(
        &mut self,
        node: NodeId,
        start: SimTime,
        duration: SimDuration,
    ) -> &mut Self {
        self.node_outages.push((
            node,
            Window {
                start,
                end: start + duration,
            },
        ));
        self
    }

    /// Blocks the link between `a` and `b` (both directions) during
    /// `[start, start + duration)`.
    pub fn add_link_outage(
        &mut self,
        a: NodeId,
        b: NodeId,
        start: SimTime,
        duration: SimDuration,
    ) -> &mut Self {
        self.link_outages.push((
            a,
            b,
            Window {
                start,
                end: start + duration,
            },
        ));
        self
    }

    /// Partitions `group_a` from `group_b` during
    /// `[start, start + duration)`: every cross-group link is blocked,
    /// links within each group stay up.
    pub fn add_partition(
        &mut self,
        group_a: &[NodeId],
        group_b: &[NodeId],
        start: SimTime,
        duration: SimDuration,
    ) -> &mut Self {
        for &a in group_a {
            for &b in group_b {
                self.add_link_outage(a, b, start, duration);
            }
        }
        self
    }

    /// Adds every outage of `other` to this plan.
    pub fn merge(&mut self, other: &FaultPlan) -> &mut Self {
        self.node_outages.extend_from_slice(&other.node_outages);
        self.link_outages.extend_from_slice(&other.link_outages);
        self
    }

    /// Whether a message from `from` to `to` sent at time `t` is blocked by
    /// a scheduled fault (node outage on either endpoint, or a link outage
    /// between them).
    pub fn blocks(&self, from: NodeId, to: NodeId, t: SimTime) -> bool {
        self.node_outages
            .iter()
            .any(|&(n, w)| (n == from || n == to) && w.contains(t))
            || self.link_outages.iter().any(|&(a, b, w)| {
                ((a == from && b == to) || (a == to && b == from)) && w.contains(t)
            })
    }

    /// Whether `node` is inside any node-outage window at time `t`.
    pub fn node_down(&self, node: NodeId, t: SimTime) -> bool {
        self.node_outages
            .iter()
            .any(|&(n, w)| n == node && w.contains(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn latency_within_bounds() {
        let cfg = NetworkConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let l = cfg.sample_latency(&mut rng);
            assert!(l >= SimDuration::from_millis(10));
            assert!(l <= SimDuration::from_millis(30));
        }
    }

    #[test]
    fn latency_spans_the_range() {
        let cfg = NetworkConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<u64> = (0..10_000)
            .map(|_| cfg.sample_latency(&mut rng).as_micros())
            .collect();
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        // With 10k uniform samples the extremes get within 1% of the bounds.
        assert!(lo < 10_200, "min {lo}");
        assert!(hi > 29_800, "max {hi}");
    }

    #[test]
    fn degenerate_latency_range() {
        let cfg = NetworkConfig {
            latency_min: SimDuration::from_millis(5),
            latency_max: SimDuration::from_millis(5),
            ..NetworkConfig::paper_default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(cfg.sample_latency(&mut rng), SimDuration::from_millis(5));
    }

    #[test]
    fn latency_overrides_apply_per_link_symmetrically() {
        let fast = LatencyOverride {
            group_a: vec![NodeId::new(0), NodeId::new(1)],
            group_b: vec![NodeId::new(0), NodeId::new(1)],
            latency_min: SimDuration::from_millis(1),
            latency_max: SimDuration::from_millis(3),
        };
        let cfg = NetworkConfig {
            latency_overrides: vec![fast],
            ..NetworkConfig::paper_default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            // Intra-group link: fast range.
            let l = cfg.sample_link_latency(NodeId::new(0), NodeId::new(1), &mut rng);
            assert!(l <= SimDuration::from_millis(3), "{l}");
            let l = cfg.sample_link_latency(NodeId::new(1), NodeId::new(0), &mut rng);
            assert!(l <= SimDuration::from_millis(3), "{l}");
            // Unmatched link: default 10-30ms.
            let l = cfg.sample_link_latency(NodeId::new(0), NodeId::new(9), &mut rng);
            assert!(l >= SimDuration::from_millis(10), "{l}");
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_drop_rate_panics() {
        let _ = NetworkConfig::with_drop_rate(1.5);
    }

    #[test]
    fn node_outage_blocks_both_directions() {
        let mut plan = FaultPlan::none();
        plan.add_node_outage(NodeId::new(2), t(10), SimDuration::from_secs(5));
        let other = NodeId::new(0);
        let down = NodeId::new(2);
        assert!(!plan.blocks(other, down, t(9)));
        assert!(plan.blocks(other, down, t(10)));
        assert!(plan.blocks(down, other, t(14)));
        assert!(!plan.blocks(down, other, t(15)), "window is half-open");
        assert!(plan.node_down(down, t(12)));
        assert!(!plan.node_down(other, t(12)));
    }

    #[test]
    fn link_outage_is_pairwise_and_symmetric() {
        let mut plan = FaultPlan::none();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        plan.add_link_outage(a, b, t(0), SimDuration::from_secs(1));
        assert!(plan.blocks(a, b, t(0)));
        assert!(plan.blocks(b, a, t(0)));
        assert!(!plan.blocks(a, c, t(0)));
        assert!(!plan.node_down(a, t(0)), "link outage is not a node outage");
    }

    #[test]
    fn merge_combines_outages() {
        let mut a = FaultPlan::none();
        a.add_node_outage(NodeId::new(0), t(0), SimDuration::from_secs(5));
        let mut b = FaultPlan::none();
        b.add_link_outage(
            NodeId::new(1),
            NodeId::new(2),
            t(0),
            SimDuration::from_secs(5),
        );
        a.merge(&b);
        assert!(a.node_down(NodeId::new(0), t(1)));
        assert!(a.blocks(NodeId::new(1), NodeId::new(2), t(1)));
    }

    #[test]
    fn partition_blocks_every_cross_pair_only() {
        let g1 = [NodeId::new(0), NodeId::new(1)];
        let g2 = [NodeId::new(2), NodeId::new(3)];
        let mut plan = FaultPlan::none();
        plan.add_partition(&g1, &g2, t(0), SimDuration::from_secs(60));
        for &a in &g1 {
            for &b in &g2 {
                assert!(plan.blocks(a, b, t(30)));
                assert!(plan.blocks(b, a, t(30)));
            }
        }
        assert!(!plan.blocks(g1[0], g1[1], t(30)));
        assert!(!plan.blocks(g2[0], g2[1], t(30)));
    }
}
