//! Event-queue implementations: the hierarchical timing wheel and the
//! reference binary heap it replaced.
//!
//! The simulator's hot loop is "pop the earliest event, dispatch it":
//! every message delivery pays one queue insert and one removal, so the
//! queue is pure per-event overhead. The paper's network model samples
//! every latency uniformly from 10–30 ms, which makes the schedule
//! extremely near-term and dense — exactly the shape a timing wheel
//! serves in O(1) while a binary heap pays `O(log n)` sifts plus cache
//! misses on every operation.
//!
//! # Ordering contract
//!
//! Events execute in `(time, seq)` order, where `seq` is a global
//! monotone insertion counter. Both implementations preserve that order
//! **exactly**; the explorer's replay digests are byte-identical across
//! them, which is enforced by a differential proptest. The old heap stays
//! available behind [`EventQueue::reference`] (mirroring
//! `Codec::set_reference_mode`) so the recorded benchmarks measure an
//! honest before/after through the same code paths.
//!
//! # Wheel layout
//!
//! The wheel has 65 536 slots of 1 µs each (span 65.536 ms), covering the
//! whole 10–30 ms latency band; events further out (convergence timers,
//! fault windows) sit in an overflow heap and are promoted into slots as
//! virtual time approaches them. Because the live window `[cursor,
//! cursor + span)` is exactly one span long, two different in-window
//! times can never map to the same slot — so every event in one slot
//! shares the same timestamp, and FIFO order within a slot *is* `seq`
//! order. The one exception is promotion: an overflow event can share a
//! timestamp with an event pushed directly into the slot earlier, so
//! promotion inserts by `seq` (a short sorted walk; slots are tiny)
//! instead of appending. Timer cancellation is a generation bump in the
//! [`TimerSlab`]; stale timer events are discarded when they surface,
//! costing nothing while buried.
//!
//! # Memory layout
//!
//! Events live in one reusable pool (`Vec`, LIFO free list), and each
//! slot is just a `(head, tail)` pair of pool indices chaining an
//! intrusive list. The pool's working set is the number of in-flight
//! events — a few cache lines for typical simulations — so pushes and
//! pops touch one cold line (the slot pair) instead of a per-slot
//! `VecDeque` allocation each. The slot scan reads the two-level
//! occupancy bitmap only: the 128-byte summary pinpoints the next
//! non-empty 64-slot word directly, and `locate_next` memoizes its
//! result so the engine's peek-then-pop pair costs a single scan.

use std::collections::BinaryHeap;

use crate::node::NodeId;
use crate::time::SimTime;

/// Handle to a scheduled timer, usable to cancel it before it fires.
///
/// Packs a slab slot and a generation stamp; cancelling bumps the
/// generation so the queued firing event becomes stale in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

impl TimerId {
    fn new(slot: u32, generation: u32) -> Self {
        TimerId((u64::from(slot) << 32) | u64::from(generation))
    }

    fn slot(self) -> usize {
        (self.0 >> 32) as usize
    }

    fn generation(self) -> u32 {
        self.0 as u32
    }
}

/// Allocation-free timer liveness tracking.
///
/// Each scheduled timer occupies a slab slot holding the slot's current
/// generation; firing or cancelling retires the slot by bumping the
/// generation and pushing it on a free list. A [`TimerId`] is live iff
/// its stamped generation still matches its slot — so cancel is two
/// array writes, and a cancelled timer's queued event is recognized as
/// stale the moment it surfaces, with no per-timer hash-set bookkeeping.
///
/// Slot reuse order (LIFO free list) is a pure function of the event
/// sequence, so allocated ids — and everything derived from them — replay
/// deterministically.
#[derive(Debug, Default)]
pub(crate) struct TimerSlab {
    generations: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl TimerSlab {
    pub(crate) fn new() -> Self {
        TimerSlab::default()
    }

    /// Allocates a live timer id.
    pub(crate) fn allocate(&mut self) -> TimerId {
        self.live += 1;
        match self.free.pop() {
            Some(slot) => TimerId::new(slot, self.generations[slot as usize]),
            None => {
                let slot = self.generations.len() as u32;
                self.generations.push(0);
                TimerId::new(slot, 0)
            }
        }
    }

    /// Whether `id` has neither fired nor been cancelled.
    pub(crate) fn is_live(&self, id: TimerId) -> bool {
        self.generations
            .get(id.slot())
            .is_some_and(|&g| g == id.generation())
    }

    /// Retires `id` (fire or cancel). Returns `false` — and changes
    /// nothing — if it was already retired.
    pub(crate) fn retire(&mut self, id: TimerId) -> bool {
        if !self.is_live(id) {
            return false;
        }
        self.generations[id.slot()] = self.generations[id.slot()].wrapping_add(1);
        self.free.push(id.slot() as u32);
        self.live -= 1;
        true
    }

    /// Number of live (scheduled, unfired, uncancelled) timers.
    pub(crate) fn live_count(&self) -> usize {
        self.live
    }
}

pub(crate) enum EventKind<M> {
    Deliver { from: NodeId, msg: M },
    Timer { id: TimerId, tag: u64 },
}

pub(crate) struct QueuedEvent<M> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) to: NodeId,
    pub(crate) kind: EventKind<M>,
}

impl<M> QueuedEvent<M> {
    fn stale_timer(&self, timers: &TimerSlab) -> bool {
        matches!(&self.kind, EventKind::Timer { id, .. } if !timers.is_live(*id))
    }
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}
impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueuedEvent<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

const SLOT_BITS: u32 = 16;
const NUM_SLOTS: usize = 1 << SLOT_BITS;
/// One slot per microsecond: the window is 65.536 ms long, comfortably
/// past the paper's 30 ms maximum link latency.
const SPAN_MICROS: u64 = NUM_SLOTS as u64;
const SLOT_MASK: u64 = SPAN_MICROS - 1;
const WORDS: usize = NUM_SLOTS / 64;
const GROUPS: usize = WORDS / 64;

/// Where the next live event sits, as computed by a peek.
#[derive(Clone, Copy)]
enum Loc {
    Slot(usize),
    Overflow,
}

/// Sentinel pool index: "no entry".
const NIL: u32 = u32::MAX;

/// Intrusive-list node in the event pool.
struct PoolEntry<M> {
    ev: Option<QueuedEvent<M>>,
    next: u32,
}

/// Head and tail pool indices of one slot's event chain.
#[derive(Clone, Copy)]
struct Slot {
    head: u32,
    tail: u32,
}

const EMPTY_SLOT: Slot = Slot {
    head: NIL,
    tail: NIL,
};

/// The near-term slotted wheel plus overflow heap.
pub(crate) struct TimingWheel<M> {
    /// Per-slot intrusive-list heads/tails into `pool`.
    slots: Box<[Slot]>,
    /// Event storage, recycled through a LIFO free list so the working
    /// set stays as small (and as cache-hot) as the in-flight event count.
    pool: Vec<PoolEntry<M>>,
    free: u32,
    /// One bit per slot; a set bit means the slot's chain is non-empty.
    occupied: Box<[u64; WORDS]>,
    /// One bit per word of `occupied`, so the next-occupied scan reads at
    /// most 16 summary words before touching a single slot word.
    summary: [u64; GROUPS],
    overflow: BinaryHeap<QueuedEvent<M>>,
    /// Latest observed virtual time; every queued event is at `>= cursor`
    /// and every slotted event is within `[cursor, cursor + span)`.
    cursor: SimTime,
    slot_events: usize,
    /// Memoized result of the last [`TimingWheel::locate_next`]. The
    /// engine peeks then immediately pops, and the memo makes the second
    /// scan free. Invalidated by a pop, by a push that orders earlier,
    /// and by timer cancellation (see [`EventQueue::invalidate_peek`]).
    cached: Option<(Loc, SimTime, u64)>,
}

impl<M> TimingWheel<M> {
    fn new() -> Self {
        TimingWheel {
            slots: vec![EMPTY_SLOT; NUM_SLOTS].into_boxed_slice(),
            pool: Vec::new(),
            free: NIL,
            occupied: Box::new([0u64; WORDS]),
            summary: [0u64; GROUPS],
            overflow: BinaryHeap::new(),
            cursor: SimTime::ZERO,
            slot_events: 0,
            cached: None,
        }
    }

    fn len(&self) -> usize {
        self.slot_events + self.overflow.len()
    }

    fn mark(&mut self, slot: usize) {
        self.occupied[slot >> 6] |= 1u64 << (slot & 63);
        self.summary[slot >> 12] |= 1u64 << ((slot >> 6) & 63);
    }

    fn unmark(&mut self, slot: usize) {
        let w = slot >> 6;
        self.occupied[w] &= !(1u64 << (slot & 63));
        if self.occupied[w] == 0 {
            self.summary[slot >> 12] &= !(1u64 << (w & 63));
        }
    }

    fn alloc(&mut self, ev: QueuedEvent<M>) -> u32 {
        if self.free == NIL {
            let idx = self.pool.len() as u32;
            self.pool.push(PoolEntry {
                ev: Some(ev),
                next: NIL,
            });
            idx
        } else {
            let idx = self.free;
            let entry = &mut self.pool[idx as usize];
            self.free = entry.next;
            entry.ev = Some(ev);
            entry.next = NIL;
            idx
        }
    }

    fn release(&mut self, idx: u32) -> QueuedEvent<M> {
        let entry = &mut self.pool[idx as usize];
        let ev = entry.ev.take().expect("live pool entry");
        entry.next = self.free;
        self.free = idx;
        ev
    }

    fn seq_of(&self, idx: u32) -> u64 {
        self.pool[idx as usize].ev.as_ref().expect("live entry").seq
    }

    /// Files an in-window event into its slot, preserving `seq` order.
    ///
    /// Direct pushes carry a fresh (maximal) `seq`, so the fast path is a
    /// plain append; only promotion out of the overflow heap — which can
    /// revive an older `seq` at a timestamp the slot already holds — pays
    /// the sorted walk.
    // lint:hot
    fn slot_insert(&mut self, ev: QueuedEvent<M>) {
        let slot = (ev.at.as_micros() & SLOT_MASK) as usize;
        let seq = ev.seq;
        let idx = self.alloc(ev);
        self.mark(slot);
        self.slot_events += 1;
        let Slot { head, tail } = self.slots[slot];
        if head == NIL {
            self.slots[slot] = Slot {
                head: idx,
                tail: idx,
            };
        } else if self.seq_of(tail) < seq {
            self.pool[tail as usize].next = idx;
            self.slots[slot].tail = idx;
        } else {
            // Promotion revived an older seq: walk to its sorted position
            // (never past the tail, which compared greater above).
            let mut prev = NIL;
            let mut cur = head;
            while self.seq_of(cur) < seq {
                prev = cur;
                cur = self.pool[cur as usize].next;
            }
            self.pool[idx as usize].next = cur;
            if prev == NIL {
                self.slots[slot].head = idx;
            } else {
                self.pool[prev as usize].next = idx;
            }
        }
    }

    /// Unlinks and returns the slot's front event.
    fn pop_front(&mut self, slot: usize) -> QueuedEvent<M> {
        let head = self.slots[slot].head;
        debug_assert_ne!(head, NIL, "pop_front on empty slot");
        let next = self.pool[head as usize].next;
        self.slots[slot].head = next;
        if next == NIL {
            self.slots[slot].tail = NIL;
            self.unmark(slot);
        }
        self.slot_events -= 1;
        self.release(head)
    }

    // lint:hot
    fn push(&mut self, ev: QueuedEvent<M>) {
        debug_assert!(ev.at >= self.cursor, "event scheduled in the past");
        if let Some((_, at, seq)) = self.cached {
            if (ev.at, ev.seq) < (at, seq) {
                self.cached = None;
            }
        }
        if ev.at.as_micros().wrapping_sub(self.cursor.as_micros()) < SPAN_MICROS {
            self.slot_insert(ev);
        } else {
            self.overflow.push(ev);
        }
    }

    /// Moves overflow events whose time has come into the window.
    fn promote_due(&mut self) {
        while let Some(top) = self.overflow.peek() {
            if top.at.as_micros().wrapping_sub(self.cursor.as_micros()) >= SPAN_MICROS {
                break;
            }
            let ev = self.overflow.pop().expect("peeked entry exists");
            self.slot_insert(ev);
        }
    }

    /// Index of the first occupied slot at or after the cursor, scanning
    /// the ring in time order via the two-level occupancy bitmap. Only
    /// bitmap words are read: the summary locates the next non-empty
    /// 64-slot word directly, so the scan is a handful of `u64` tests no
    /// matter how sparse the window is.
    fn next_occupied_slot(&self) -> Option<usize> {
        if self.slot_events == 0 {
            return None;
        }
        let start = (self.cursor.as_micros() & SLOT_MASK) as usize;
        let w0 = start >> 6;
        let head = self.occupied[w0] & (!0u64 << (start & 63));
        if head != 0 {
            return Some((w0 << 6) + head.trailing_zeros() as usize);
        }
        let first_in = |w: usize| (w << 6) + self.occupied[w].trailing_zeros() as usize;
        let g0 = w0 >> 6;
        // Words strictly after w0 within its summary group.
        let above = self.summary[g0] & ((!0u64 << (w0 & 63)) << 1);
        if above != 0 {
            return Some(first_in((g0 << 6) + above.trailing_zeros() as usize));
        }
        // Remaining groups in ring order.
        for i in 1..GROUPS {
            let g = (g0 + i) & (GROUPS - 1);
            if self.summary[g] != 0 {
                return Some(first_in(
                    (g << 6) + self.summary[g].trailing_zeros() as usize,
                ));
            }
        }
        // Wrapped: words strictly before w0 in its group, then the cursor
        // word's own low bits (next window lap).
        let below = self.summary[g0] & !(!0u64 << (w0 & 63));
        if below != 0 {
            return Some(first_in((g0 << 6) + below.trailing_zeros() as usize));
        }
        let tail = self.occupied[w0] & !(!0u64 << (start & 63));
        debug_assert_ne!(tail, 0, "slot_events > 0 but no occupied slot");
        Some((w0 << 6) + tail.trailing_zeros() as usize)
    }

    /// Locates the next live event, discarding stale timer events that
    /// surface at the front. Returns its position, time and seq.
    // lint:hot
    fn locate_next(&mut self, timers: &TimerSlab) -> Option<(Loc, SimTime, u64)> {
        if let Some(hit) = self.cached {
            return Some(hit);
        }
        self.promote_due();
        let found = loop {
            if let Some(slot) = self.next_occupied_slot() {
                let head = self.slots[slot].head as usize;
                let front = self.pool[head].ev.as_ref().expect("occupied slot");
                let (at, seq) = (front.at, front.seq);
                if front.stale_timer(timers) {
                    self.pop_front(slot);
                    continue;
                }
                break (Loc::Slot(slot), at, seq);
            }
            // Slots empty: the overflow minimum (if any) is globally next.
            let top = self.overflow.peek()?;
            if top.stale_timer(timers) {
                self.overflow.pop();
                continue;
            }
            break (Loc::Overflow, top.at, top.seq);
        };
        self.cached = Some(found);
        Some(found)
    }

    // lint:hot
    fn pop(&mut self, timers: &TimerSlab) -> Option<QueuedEvent<M>> {
        loop {
            let (loc, at, seq) = self.locate_next(timers)?;
            self.cached = None;
            self.cursor = at;
            let ev = match loc {
                Loc::Slot(slot) => self.pop_front(slot),
                Loc::Overflow => self.overflow.pop().expect("located event"),
            };
            debug_assert_eq!(ev.seq, seq, "memoized peek out of sync");
            // A cancellation may have landed between the memoized peek
            // and this pop; discard and locate afresh.
            if ev.stale_timer(timers) {
                continue;
            }
            return Some(ev);
        }
    }
}

/// The pre-wheel binary-heap queue, kept verbatim as the recorded
/// benchmark "before" and as the differential-testing oracle.
pub(crate) struct ReferenceHeap<M> {
    heap: BinaryHeap<QueuedEvent<M>>,
}

impl<M> ReferenceHeap<M> {
    fn peek_live(&mut self, timers: &TimerSlab) -> Option<&QueuedEvent<M>> {
        while let Some(ev) = self.heap.peek() {
            if ev.stale_timer(timers) {
                self.heap.pop();
                continue;
            }
            break;
        }
        self.heap.peek()
    }
}

/// The engine's event queue: timing wheel by default, binary heap in
/// reference mode. The wheel is boxed: its inline bitmaps dwarf the
/// heap variant, and one pointer hop on an always-hot allocation is
/// cheaper than carrying them in every `Inner`.
pub(crate) enum EventQueue<M> {
    Wheel(Box<TimingWheel<M>>),
    Reference(ReferenceHeap<M>),
}

impl<M> EventQueue<M> {
    pub(crate) fn wheel() -> Self {
        EventQueue::Wheel(Box::new(TimingWheel::new()))
    }

    pub(crate) fn reference() -> Self {
        EventQueue::Reference(ReferenceHeap {
            heap: BinaryHeap::new(),
        })
    }

    pub(crate) fn is_reference(&self) -> bool {
        matches!(self, EventQueue::Reference(_))
    }

    /// Queued events, including not-yet-discarded stale timer events.
    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Wheel(w) => w.len(),
            EventQueue::Reference(r) => r.heap.len(),
        }
    }

    // lint:hot
    pub(crate) fn push(&mut self, ev: QueuedEvent<M>) {
        match self {
            EventQueue::Wheel(w) => w.push(ev),
            EventQueue::Reference(r) => r.heap.push(ev),
        }
    }

    /// Drops the wheel's memoized peek. Must be called when a timer is
    /// cancelled outside of event dispatch: the memo may point at the
    /// newly stale firing event, and a subsequent peek must not report
    /// its time as the next live event.
    pub(crate) fn invalidate_peek(&mut self) {
        if let EventQueue::Wheel(w) = self {
            w.cached = None;
        }
    }

    /// `(time, seq)` of the next live event, discarding any stale timer
    /// events that surface. `None` means no live events remain.
    // lint:hot
    pub(crate) fn peek_next(&mut self, timers: &TimerSlab) -> Option<(SimTime, u64)> {
        match self {
            EventQueue::Wheel(w) => w.locate_next(timers).map(|(_, at, seq)| (at, seq)),
            EventQueue::Reference(r) => r.peek_live(timers).map(|ev| (ev.at, ev.seq)),
        }
    }

    /// Removes and returns the next live event.
    // lint:hot
    pub(crate) fn pop(&mut self, timers: &TimerSlab) -> Option<QueuedEvent<M>> {
        match self {
            EventQueue::Wheel(w) => w.pop(timers),
            EventQueue::Reference(r) => {
                r.peek_live(timers)?;
                r.heap.pop()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, seq: u64) -> QueuedEvent<()> {
        QueuedEvent {
            at: SimTime::from_micros(at_us),
            seq,
            to: NodeId::new(0),
            kind: EventKind::Deliver {
                from: NodeId::new(0),
                msg: (),
            },
        }
    }

    fn drain(q: &mut EventQueue<()>, timers: &TimerSlab) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop(timers) {
            out.push((e.at.as_micros(), e.seq));
        }
        out
    }

    #[test]
    fn wheel_pops_in_time_seq_order() {
        let timers = TimerSlab::new();
        let mut q = EventQueue::wheel();
        // In-window, overflow, same-time ties — all interleaved.
        for (at, seq) in [(30_000, 0), (10, 1), (500_000, 2), (10, 3), (65_536, 4)] {
            q.push(ev(at, seq));
        }
        assert_eq!(q.len(), 5);
        assert_eq!(
            drain(&mut q, &timers),
            [(10, 1), (10, 3), (30_000, 0), (65_536, 4), (500_000, 2)]
        );
    }

    #[test]
    fn promotion_preserves_seq_order_on_shared_timestamps() {
        let timers = TimerSlab::new();
        let mut q = EventQueue::wheel();
        // seq 0 goes to overflow (beyond the 65.536 ms window), then after
        // popping an early event the window advances and a younger seq is
        // pushed directly into the very same slot & timestamp. The promoted
        // event must still pop first.
        q.push(ev(200_000, 0));
        q.push(ev(150_000, 1));
        let first = q.pop(&timers).unwrap();
        assert_eq!(first.seq, 1);
        q.push(ev(200_000, 2));
        assert_eq!(drain(&mut q, &timers), [(200_000, 0), (200_000, 2)]);
    }

    #[test]
    fn wheel_wraps_across_window_laps() {
        let timers = TimerSlab::new();
        let mut q = EventQueue::wheel();
        let mut expect = Vec::new();
        // March virtual time through many window laps.
        for lap in 0..10u64 {
            let at = lap * 40_000 + 7;
            q.push(ev(at, lap));
            expect.push((at, lap));
            let got = q.pop(&timers).unwrap();
            assert_eq!((got.at.as_micros(), got.seq), expect[lap as usize]);
        }
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn stale_timers_are_discarded_not_returned() {
        let mut timers = TimerSlab::new();
        let mut q: EventQueue<()> = EventQueue::wheel();
        let near = timers.allocate();
        let far = timers.allocate();
        q.push(QueuedEvent {
            at: SimTime::from_micros(5),
            seq: 0,
            to: NodeId::new(0),
            kind: EventKind::Timer { id: near, tag: 1 },
        });
        q.push(QueuedEvent {
            at: SimTime::from_micros(1_000_000),
            seq: 1,
            to: NodeId::new(0),
            kind: EventKind::Timer { id: far, tag: 2 },
        });
        timers.retire(near);
        timers.retire(far);
        assert_eq!(q.peek_next(&timers), None, "both stale events discarded");
        assert_eq!(q.len(), 0);
        assert_eq!(timers.live_count(), 0);
    }

    #[test]
    fn slab_reuses_slots_with_fresh_generations() {
        let mut slab = TimerSlab::new();
        let a = slab.allocate();
        assert!(slab.is_live(a));
        assert!(slab.retire(a));
        assert!(!slab.is_live(a));
        assert!(!slab.retire(a), "double retire is a no-op");
        let b = slab.allocate();
        assert_eq!(a.slot(), b.slot(), "slot is recycled");
        assert_ne!(a, b, "generation distinguishes reuse");
        assert!(!slab.is_live(a));
        assert!(slab.is_live(b));
        assert_eq!(slab.live_count(), 1);
    }

    #[test]
    fn reference_heap_matches_wheel_on_a_mixed_schedule() {
        let timers = TimerSlab::new();
        let mut wheel = EventQueue::wheel();
        let mut heap = EventQueue::reference();
        let mut seq = 0u64;
        for round in 0..50u64 {
            for offset in [3u64, 70_000, 12_345, 0, 65_535, 131_072] {
                let at = round * 20_000 + offset;
                wheel.push(ev(at, seq));
                heap.push(ev(at, seq));
                seq += 1;
            }
        }
        assert_eq!(drain(&mut wheel, &timers), drain(&mut heap, &timers));
    }
}
