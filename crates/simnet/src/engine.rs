//! The discrete-event simulation engine.
//!
//! A [`Simulation`] owns a set of actors, a virtual clock, a seeded RNG and
//! a priority queue of pending events (message deliveries and timer
//! firings). Events execute in `(time, sequence)` order, so two runs with
//! the same seed and the same actor set are bit-for-bit identical.

use std::any::Any;
use std::sync::atomic::{AtomicBool, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actor::Actor;
use crate::metrics::Metrics;
use crate::network::{FaultPlan, NetworkConfig};
use crate::node::NodeId;
use crate::payload::Payload;
use crate::queue::{EventKind, EventQueue, QueuedEvent, TimerSlab};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Disposition, Trace, TraceEvent};

pub use crate::queue::TimerId;

/// Process-wide switch to the pre-wheel binary-heap event queue; see
/// [`set_reference_queue_mode`].
static REFERENCE_QUEUE_MODE: AtomicBool = AtomicBool::new(false);

/// Switches every *subsequently constructed* [`Simulation`] in the
/// process to the pre-optimization binary-heap event queue (mirroring
/// `erasure::Codec::set_reference_mode`).
///
/// Event order — and therefore every run's replay digest — is identical
/// in both modes; only the cost changes. This exists solely so the
/// recorded benchmarks (`cargo run -p bench --release --bin baseline`)
/// measure an honest before/after through the full protocol stack. Not
/// for production use; for per-instance control in tests see
/// [`Simulation::use_reference_queue`].
pub fn set_reference_queue_mode(enabled: bool) {
    REFERENCE_QUEUE_MODE.store(enabled, Ordering::Relaxed);
}

/// Whether [`set_reference_queue_mode`] is on.
pub fn reference_queue_mode() -> bool {
    REFERENCE_QUEUE_MODE.load(Ordering::Relaxed)
}

/// Why a `run_*` call returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Quiescent,
    /// The caller's predicate returned `true`.
    PredicateSatisfied,
    /// The virtual-time deadline was reached.
    DeadlineReached,
    /// The event-count safety limit was hit (almost certainly a bug such as
    /// a self-perpetuating timer loop).
    EventLimitReached,
}

/// Node→shard routing installed by the sharded engine
/// ([`crate::parallel`]): [`Inner::push`] diverts deliveries addressed to a
/// node owned by another shard into the sender's outbox instead of the
/// local queue, so the coordinator can merge them deterministically at the
/// next round barrier. Legacy simulations carry `None` and are untouched.
pub(crate) struct Routing {
    /// The shard this `Inner` belongs to.
    pub(crate) self_shard: u16,
    /// Owning shard of every node id, indexed by `NodeId::index`.
    pub(crate) owner: std::sync::Arc<[u16]>,
}

/// One cross-shard event in flight between round barriers: the arrival
/// time and payload are finalized on the *sending* shard (latency, drop
/// and duplication draws all happen on the sender's RNG stream), and
/// `seq` carries the sender-local sequence used by the deterministic
/// (time, src-shard, seq) mailbox merge.
pub(crate) struct Envelope<M> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) to: NodeId,
    pub(crate) kind: EventKind<M>,
}

pub(crate) struct Inner<M> {
    pub(crate) now: SimTime,
    pub(crate) seq: u64,
    pub(crate) queue: EventQueue<M>,
    /// Generation-stamped liveness for every scheduled timer; cancelling
    /// bumps a generation so the queued firing event goes stale in place.
    pub(crate) timers: TimerSlab,
    pub(crate) rng: StdRng,
    pub(crate) network: NetworkConfig,
    pub(crate) faults: FaultPlan,
    pub(crate) metrics: Metrics,
    pub(crate) trace: Option<Trace>,
    /// Shard routing, present only inside the sharded engine.
    pub(crate) routing: Option<Routing>,
    /// Cross-shard events awaiting the next round barrier (always empty
    /// in legacy simulations and at every barrier).
    pub(crate) outbox: Vec<Envelope<M>>,
}

impl<M: Payload> Inner<M> {
    pub(crate) fn push(&mut self, at: SimTime, to: NodeId, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        if let Some(routing) = &self.routing {
            if routing.owner[to.index()] != routing.self_shard {
                debug_assert!(
                    matches!(kind, EventKind::Deliver { .. }),
                    "timers never cross shards"
                );
                self.outbox.push(Envelope { at, seq, to, kind });
                return;
            }
        }
        self.queue.push(QueuedEvent { at, seq, to, kind });
    }

    pub(crate) fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) -> TimerId {
        let id = self.timers.allocate();
        let at = self.now + delay;
        self.push(at, node, EventKind::Timer { id, tag });
        id
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        // Count at send time: dropped messages were still sent (§5.1).
        self.metrics.record_send(msg.kind_id(), msg.wire_size());
        self.deliver(from, to, msg);
    }

    /// The delivery half of [`send`](Self::send): loss model, trace,
    /// duplication, latency sampling and queueing — everything except the
    /// send-side `record_send`. Split out so a coalesced batch can account
    /// for its parts as one physical message (via
    /// [`Metrics::record_coalesced`]) while each part still traverses the
    /// channel individually, drawing RNG in exactly the order the
    /// unbatched protocol would. Drops are still recorded per part.
    fn deliver(&mut self, from: NodeId, to: NodeId, msg: M) {
        let kind_id = msg.kind_id();
        let bytes = msg.wire_size();
        let disposition = if self.faults.blocks(from, to, self.now) {
            self.metrics.record_drop(kind_id, bytes, true);
            Disposition::DroppedFault
        } else if self.network.drop_rate > 0.0 && self.rng.random::<f64>() < self.network.drop_rate
        {
            self.metrics.record_drop(kind_id, bytes, false);
            Disposition::DroppedRandom
        } else {
            Disposition::Delivered
        };
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent {
                at: self.now,
                from,
                to,
                kind: msg.kind(),
                bytes: msg.wire_size(),
                disposition,
            });
        }
        if disposition != Disposition::Delivered {
            return;
        }
        // Bounded duplication (§3.1's channel model): a delivered message
        // may arrive twice, with independent latencies. The payload is
        // moved into the final delivery; only a fault-injected duplicate
        // clones it. RNG call order (one latency sample per copy, in copy
        // order) is identical either way, so traces replay byte-identically.
        if self.network.duplicate_rate > 0.0
            && self.rng.random::<f64>() < self.network.duplicate_rate
        {
            self.metrics.record_duplicate();
            let latency = self.network.sample_link_latency(from, to, &mut self.rng);
            self.push(
                self.now + latency,
                to,
                EventKind::Deliver {
                    from,
                    msg: msg.clone(),
                },
            );
        }
        let latency = self.network.sample_link_latency(from, to, &mut self.rng);
        self.push(self.now + latency, to, EventKind::Deliver { from, msg });
    }
}

/// The execution environment handed to an actor while it processes an
/// event. All actor effects — sending, timers, randomness — go through
/// here, keeping the run deterministic.
pub struct Context<'a, M: Payload> {
    pub(crate) self_id: NodeId,
    pub(crate) inner: &'a mut Inner<M>,
}

impl<M: Payload> Context<'_, M> {
    /// The id of the actor processing the current event.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// Sends `msg` to `to`. Delivery (if the message survives the loss
    /// model) happens after a sampled network latency. Messages to self are
    /// legal and traverse the network like any other.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.inner.send(self.self_id, to, msg);
    }

    /// Sends one *part* of a coalesced batch: the message traverses the
    /// channel exactly like [`send`](Self::send) — same fault and loss
    /// checks, same per-copy latency samples, drops still recorded — but no
    /// send-side metrics are recorded for it. The sender must account for
    /// the whole batch once via
    /// [`record_coalesced`](Self::record_coalesced), normally with the
    /// combined multi-entry message's `kind_id`/`wire_size`.
    ///
    /// Because parts draw RNG in the same order as individual sends,
    /// coalescing changes only the traffic accounting, never event order
    /// or actor state.
    pub fn send_coalesced_part(&mut self, to: NodeId, msg: M) {
        self.inner.deliver(self.self_id, to, msg);
    }

    /// Accounts for a coalesced batch message: one physical send of
    /// `msg.wire_size()` bytes carrying `entries` logical protocol
    /// entries. Pair with [`send_coalesced_part`](Self::send_coalesced_part)
    /// for each entry's delivery.
    pub fn record_coalesced(&mut self, msg: &M, entries: u64) {
        self.inner
            .metrics
            .record_coalesced(msg.kind_id(), msg.wire_size(), entries);
    }

    /// Adds `amount` to protocol event counter `event_id` (an index into
    /// the payload's [`EVENTS`](Payload::EVENTS) registry). Events track
    /// protocol-level happenings — cache hits, fallbacks, bytes saved —
    /// outside the per-kind message tables.
    pub fn record_event(&mut self, event_id: usize, amount: u64) {
        self.inner.metrics.record_event(event_id, amount);
    }

    /// Schedules a timer to fire on this actor after `delay`, carrying
    /// `tag` back to [`Actor::on_timer`].
    pub fn schedule_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.inner.schedule_timer(self.self_id, delay, tag)
    }

    /// Cancels a previously scheduled timer. Cancelling a timer that
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        if self.inner.timers.retire(id) {
            self.inner.queue.invalidate_peek();
        }
    }

    /// The simulation's seeded random number generator.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.inner.rng
    }
}

/// An observation hook invoked after every processed event with a shared
/// borrow of the whole simulation. See [`Simulation::set_inspector`].
pub type Inspector<M> = Box<dyn FnMut(&Simulation<M>)>;

/// A deterministic discrete-event simulation over actors exchanging
/// messages of type `M`.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Simulation<M: Payload> {
    actors: Vec<Option<Box<dyn Actor<M>>>>,
    inner: Inner<M>,
    started: bool,
    events_processed: u64,
    event_limit: u64,
    inspector: Option<Inspector<M>>,
}

impl<M: Payload> Simulation<M> {
    /// Creates a simulation with the paper-default network model
    /// (uniform 10–30 ms latency, no loss) and no scheduled faults.
    pub fn new(seed: u64) -> Self {
        Simulation::with_network(seed, NetworkConfig::paper_default(), FaultPlan::none())
    }

    /// Creates a simulation with an explicit network model and fault plan.
    pub fn with_network(seed: u64, network: NetworkConfig, faults: FaultPlan) -> Self {
        let queue = if reference_queue_mode() {
            EventQueue::reference()
        } else {
            EventQueue::wheel()
        };
        Simulation {
            actors: Vec::new(),
            inner: Inner {
                now: SimTime::ZERO,
                seq: 0,
                queue,
                timers: TimerSlab::new(),
                rng: StdRng::seed_from_u64(seed),
                network,
                faults,
                metrics: Metrics::for_payload::<M>(),
                trace: None,
                routing: None,
                outbox: Vec::new(),
            },
            started: false,
            events_processed: 0,
            event_limit: u64::MAX,
            inspector: None,
        }
    }

    /// Switches **this** simulation between the timing-wheel queue and the
    /// reference binary heap (see [`set_reference_queue_mode`] for the
    /// process-wide default). Intended for differential tests; event order
    /// is identical either way.
    ///
    /// # Panics
    ///
    /// Panics if the simulation already has queued events.
    pub fn use_reference_queue(&mut self, enabled: bool) {
        assert_eq!(
            self.inner.queue.len(),
            0,
            "queue implementation must be chosen before any event is scheduled"
        );
        if enabled != self.inner.queue.is_reference() {
            self.inner.queue = if enabled {
                EventQueue::reference()
            } else {
                EventQueue::wheel()
            };
        }
    }

    /// Whether this simulation runs on the reference binary-heap queue —
    /// chosen at construction from [`set_reference_queue_mode`] or per
    /// instance via [`Simulation::use_reference_queue`].
    pub fn queue_is_reference(&self) -> bool {
        self.inner.queue.is_reference()
    }

    /// Offsets the internal event sequence counter, so differential tests
    /// can exercise ordering comparisons near the top of the `u64` range.
    /// Must be called before any event is scheduled.
    #[doc(hidden)]
    pub fn set_seq_base(&mut self, base: u64) {
        assert_eq!(self.inner.queue.len(), 0, "seq base must be set first");
        self.inner.seq = base;
    }

    /// Installs an observation hook that runs after **every** processed
    /// event (message delivery or timer firing) with a shared borrow of the
    /// simulation, after the acting actor has been returned to its slot.
    ///
    /// The hook sees a fully consistent simulation — every
    /// [`try_actor`](Self::try_actor) accessor, [`metrics`](Self::metrics),
    /// [`trace`](Self::trace) — which makes it the natural seam for
    /// invariant checkers: panic (or record and inspect later) the moment a
    /// protocol property is violated, rather than only at quiescence.
    /// Replaces any previously installed inspector.
    pub fn set_inspector(&mut self, inspector: impl FnMut(&Simulation<M>) + 'static) {
        self.inspector = Some(Box::new(inspector));
    }

    /// Removes the observation hook installed by
    /// [`set_inspector`](Self::set_inspector), if any.
    pub fn clear_inspector(&mut self) {
        self.inspector = None;
    }

    /// Caps the total number of events this simulation will process; a run
    /// that hits the cap returns [`RunOutcome::EventLimitReached`]. Useful
    /// as a safety net around protocols that retry forever.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Adds an actor and returns its node id. Ids are dense indices in
    /// insertion order.
    ///
    /// # Panics
    ///
    /// Panics if called after the simulation has started running.
    pub fn add_actor<A: Actor<M> + 'static>(&mut self, actor: A) -> NodeId {
        assert!(!self.started, "cannot add actors after the run started");
        let id = NodeId::new(self.actors.len() as u32);
        self.actors.push(Some(Box::new(actor)));
        id
    }

    /// Number of actors in the simulation.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Schedules a timer on `node` from outside the simulation (e.g. to
    /// kick off a client workload).
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) -> TimerId {
        self.inner.schedule_timer(node, delay, tag)
    }

    /// Cancels a pending timer from outside the simulation. Cancelled
    /// timers never fire and are skipped by the queue without counting as
    /// events. Cancelling an already-fired or already-cancelled timer is
    /// a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        if self.inner.timers.retire(id) {
            self.inner.queue.invalidate_peek();
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// Traffic metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Enables per-message event tracing (off by default — large runs
    /// send millions of messages). Call before running.
    pub fn enable_trace(&mut self) {
        if self.inner.trace.is_none() {
            self.inner.trace = Some(Trace::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.inner.trace.as_ref()
    }

    /// The fault plan (immutable once running).
    pub fn faults(&self) -> &FaultPlan {
        &self.inner.faults
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of timers currently scheduled and neither fired nor
    /// cancelled. Cancelled and fired timers leave no bookkeeping behind,
    /// so at quiescence this is zero.
    pub fn pending_timers(&self) -> usize {
        self.inner.timers.live_count()
    }

    /// Borrows the actor at `id`, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the actor is not a `T`.
    pub fn actor<T: Any>(&self, id: NodeId) -> &T {
        self.try_actor(id).expect("actor type mismatch")
    }

    /// Borrows the actor at `id` if it is a `T`.
    pub fn try_actor<T: Any>(&self, id: NodeId) -> Option<&T> {
        self.actors
            .get(id.index())
            .and_then(|slot| slot.as_ref())
            .and_then(|a| a.as_any().downcast_ref::<T>())
    }

    /// Borrows the actor at `id` as a type-erased [`Any`], if present.
    /// Backs the [`crate::parallel::SimView`] impl.
    pub(crate) fn try_actor_any(&self, id: NodeId) -> Option<&dyn Any> {
        self.actors
            .get(id.index())
            .and_then(|slot| slot.as_ref())
            .map(|a| a.as_any())
    }

    /// Mutably borrows the actor at `id`, downcast to its concrete type.
    /// Intended for harnesses injecting work between run calls (e.g.
    /// appending to a scripted client); pair it with
    /// [`schedule_timer`](Self::schedule_timer) to wake the actor.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown or the actor is not a `T`.
    pub fn actor_mut<T: Any>(&mut self, id: NodeId) -> &mut T {
        self.actors
            .get_mut(id.index())
            .and_then(|slot| slot.as_mut())
            .and_then(|a| a.as_any_mut().downcast_mut::<T>())
            .expect("actor type mismatch")
    }

    /// Runs until no events remain.
    pub fn run_until_quiescent(&mut self) -> RunOutcome {
        self.run_impl(SimTime::MAX, |_| false)
    }

    /// Runs until `pred` holds or the queue drains.
    ///
    /// `pred` is evaluated once before the run starts and then exactly
    /// once per **dispatched** event (message delivery or timer firing).
    /// Queue housekeeping that dispatches nothing — discarding cancelled
    /// timers, promoting far-future events — never re-evaluates it.
    pub fn run_until(&mut self, pred: impl FnMut(&Simulation<M>) -> bool) -> RunOutcome {
        self.run_impl(SimTime::MAX, pred)
    }

    /// Runs until virtual time reaches `deadline` or the queue drains.
    /// Events scheduled exactly at the deadline do not execute.
    pub fn run_until_time(&mut self, deadline: SimTime) -> RunOutcome {
        self.run_impl(deadline, |_| false)
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            let id = NodeId::new(i as u32);
            // lint:allow(panic-path): slots are only vacated within a dispatch and restored before return
            let mut actor = self.actors[i].take().expect("actor slot occupied");
            let mut ctx = Context {
                self_id: id,
                inner: &mut self.inner,
            };
            actor.on_start(&mut ctx);
            // lint:allow(panic-path): loop index bounded by actors.len()
            self.actors[i] = Some(actor);
        }
    }

    fn run_impl(
        &mut self,
        deadline: SimTime,
        mut pred: impl FnMut(&Simulation<M>) -> bool,
    ) -> RunOutcome {
        self.start_if_needed();
        if pred(self) {
            return RunOutcome::PredicateSatisfied;
        }
        loop {
            // The queue skips cancelled timers internally, so the next
            // live event surfaces without counting housekeeping as events
            // or re-evaluating the caller's predicate.
            let inner = &mut self.inner;
            let Some((at, _)) = inner.queue.peek_next(&inner.timers) else {
                // With an explicit deadline, an idle simulation still
                // advances its clock to the deadline, so callers can move
                // virtual time forward past scheduled fault windows.
                if deadline < SimTime::MAX {
                    // A deadline already in the past leaves the clock alone:
                    // virtual time is monotone.
                    self.inner.now = self.inner.now.max(deadline);
                    return RunOutcome::DeadlineReached;
                }
                return RunOutcome::Quiescent;
            };
            if at >= deadline {
                self.inner.now = self.inner.now.max(deadline);
                return RunOutcome::DeadlineReached;
            }
            if self.events_processed >= self.event_limit {
                return RunOutcome::EventLimitReached;
            }
            let inner = &mut self.inner;
            // lint:allow(panic-path): peek_next returned Some on this very iteration
            let ev = inner.queue.pop(&inner.timers).expect("peeked event exists");
            debug_assert!(ev.at >= self.inner.now, "time went backwards");
            self.inner.now = ev.at;
            self.events_processed += 1;
            if let EventKind::Timer { id, .. } = &ev.kind {
                self.inner.timers.retire(*id);
            }

            let slot = ev.to.index();
            // lint:allow(panic-path): NodeIds are minted by add_actor, so the slot exists
            let mut actor = self.actors[slot]
                .take()
                // lint:allow(panic-path): an unknown or re-entered target is a harness bug that must fail loudly
                .expect("event addressed to unknown or re-entered actor");
            {
                let mut ctx = Context {
                    self_id: ev.to,
                    inner: &mut self.inner,
                };
                match ev.kind {
                    EventKind::Deliver { from, msg } => actor.on_message(&mut ctx, from, msg),
                    EventKind::Timer { tag, .. } => actor.on_timer(&mut ctx, tag),
                }
            }
            // lint:allow(panic-path): same slot that was just taken above
            self.actors[slot] = Some(actor);

            // The inspector borrows the whole simulation, so take it out of
            // its slot for the duration of the call.
            if let Some(mut inspector) = self.inspector.take() {
                inspector(self);
                self.inspector = Some(inspector);
            }

            if pred(self) {
                return RunOutcome::PredicateSatisfied;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    impl Payload for Msg {
        const KINDS: &'static [&'static str] = &["Ping", "Pong"];
        fn kind_id(&self) -> usize {
            match self {
                Msg::Ping(_) => 0,
                Msg::Pong(_) => 1,
            }
        }
        fn wire_size(&self) -> usize {
            match self {
                Msg::Ping(_) => 100,
                Msg::Pong(_) => 50,
            }
        }
    }

    /// Sends `rounds` pings to a peer, counting pongs.
    struct Pinger {
        peer: NodeId,
        rounds: u32,
        pongs: u32,
        last_pong_at: SimTime,
    }

    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            for i in 0..self.rounds {
                ctx.send(self.peer, Msg::Ping(i));
            }
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Pong(_) = msg {
                self.pongs += 1;
                self.last_pong_at = ctx.now();
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _tag: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Replies Pong to every Ping.
    struct Ponger;
    impl Actor<Msg> for Ponger {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(i) = msg {
                ctx.send(from, Msg::Pong(i));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _tag: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn ping_pong_sim(seed: u64, rounds: u32) -> (Simulation<Msg>, NodeId) {
        let mut sim = Simulation::new(seed);
        let ponger = sim.add_actor(Ponger);
        let pinger = sim.add_actor(Pinger {
            peer: ponger,
            rounds,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        });
        (sim, pinger)
    }

    #[test]
    fn request_reply_roundtrip() {
        let mut sim = Simulation::new(7);
        let ponger = sim.add_actor(Ponger);
        let pinger = sim.add_actor(Pinger {
            peer: ponger,
            rounds: 10,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        });
        assert_eq!(sim.run_until_quiescent(), RunOutcome::Quiescent);
        let p: &Pinger = sim.actor(pinger);
        assert_eq!(p.pongs, 10);
        // 10 pings + 10 pongs.
        assert_eq!(sim.metrics().total_count(), 20);
        assert_eq!(sim.metrics().kind("Ping").bytes, 1000);
        assert_eq!(sim.metrics().kind("Pong").bytes, 500);
        // Each round trip takes 20..60ms; all in flight concurrently.
        assert!(p.last_pong_at >= SimTime::from_micros(20_000));
        assert!(p.last_pong_at <= SimTime::from_micros(60_000));
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let run = |seed| {
            let (mut sim, pinger) = ping_pong_sim(seed, 50);
            sim.run_until_quiescent();
            let p: &Pinger = sim.actor(pinger);
            (p.last_pong_at, sim.metrics().total_count())
        };
        assert_eq!(run(123), run(123));
        assert_ne!(run(123).0, run(456).0, "different seeds differ");
    }

    #[test]
    fn drop_rate_one_loses_everything() {
        let mut sim =
            Simulation::with_network(1, NetworkConfig::with_drop_rate(1.0), FaultPlan::none());
        let ponger = sim.add_actor(Ponger);
        let pinger = sim.add_actor(Pinger {
            peer: ponger,
            rounds: 5,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        });
        sim.run_until_quiescent();
        let p: &Pinger = sim.actor(pinger);
        assert_eq!(p.pongs, 0);
        assert_eq!(sim.metrics().total_count(), 5, "sends still counted");
        assert_eq!(sim.metrics().dropped(), 5);
    }

    #[test]
    fn node_outage_blocks_messages_then_heals() {
        struct LateSender {
            peer: NodeId,
        }
        impl Actor<Msg> for LateSender {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.send(self.peer, Msg::Ping(0)); // during outage: dropped
                ctx.schedule_timer(SimDuration::from_secs(120), 0);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, _msg: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _tag: u64) {
                ctx.send(self.peer, Msg::Ping(1)); // after outage: delivered
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        struct Counter {
            seen: Vec<u32>,
        }
        impl Actor<Msg> for Counter {
            fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
                if let Msg::Ping(i) = msg {
                    self.seen.push(i);
                }
            }
            fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _tag: u64) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let counter_id = NodeId::new(0);
        let mut faults = FaultPlan::none();
        faults.add_node_outage(counter_id, SimTime::ZERO, SimDuration::from_secs(60));
        let mut sim = Simulation::with_network(9, NetworkConfig::paper_default(), faults);
        let c = sim.add_actor(Counter { seen: Vec::new() });
        assert_eq!(c, counter_id);
        sim.add_actor(LateSender { peer: c });
        sim.run_until_quiescent();
        let counter: &Counter = sim.actor(c);
        assert_eq!(counter.seen, vec![1], "only the post-outage ping lands");
    }

    #[test]
    fn duplicate_rate_one_delivers_everything_twice() {
        let mut sim = Simulation::with_network(
            4,
            NetworkConfig {
                duplicate_rate: 1.0,
                ..NetworkConfig::paper_default()
            },
            FaultPlan::none(),
        );
        let ponger = sim.add_actor(Ponger);
        let pinger = sim.add_actor(Pinger {
            peer: ponger,
            rounds: 5,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        });
        sim.run_until_quiescent();
        let p: &Pinger = sim.actor(pinger);
        // 5 pings delivered twice -> 10 pongs sent, each delivered twice.
        assert_eq!(p.pongs, 20);
        // Sends counted once per protocol send: 5 pings + 10 pongs.
        assert_eq!(sim.metrics().total_count(), 15);
        assert_eq!(sim.metrics().duplicated(), 15);
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        struct TimerBox {
            fired: Vec<u64>,
            to_cancel: Option<TimerId>,
        }
        impl Actor<Msg> for TimerBox {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.schedule_timer(SimDuration::from_millis(30), 3);
                ctx.schedule_timer(SimDuration::from_millis(10), 1);
                self.to_cancel = Some(ctx.schedule_timer(SimDuration::from_millis(20), 2));
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, _msg: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
                self.fired.push(tag);
                if tag == 1 {
                    let id = self.to_cancel.take().expect("set in on_start");
                    ctx.cancel_timer(id);
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim: Simulation<Msg> = Simulation::new(5);
        let id = sim.add_actor(TimerBox {
            fired: Vec::new(),
            to_cancel: None,
        });
        sim.run_until_quiescent();
        let b: &TimerBox = sim.actor(id);
        assert_eq!(b.fired, vec![1, 3], "tag 2 cancelled, order preserved");
    }

    #[test]
    fn cancelled_and_fired_timers_leave_no_bookkeeping() {
        struct Canceller {
            kept: Option<TimerId>,
        }
        impl Actor<Msg> for Canceller {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                // One timer fires; one is cancelled before firing; and the
                // fired one is cancelled again afterwards (a no-op).
                self.kept = Some(ctx.schedule_timer(SimDuration::from_millis(1), 1));
                let doomed = ctx.schedule_timer(SimDuration::from_millis(2), 2);
                ctx.cancel_timer(doomed);
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, _msg: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, tag: u64) {
                assert_eq!(tag, 1, "cancelled timer must not fire");
                let id = self.kept.expect("set in on_start");
                ctx.cancel_timer(id); // already fired: must not leak
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim: Simulation<Msg> = Simulation::new(11);
        sim.add_actor(Canceller { kept: None });
        assert_eq!(sim.run_until_quiescent(), RunOutcome::Quiescent);
        assert_eq!(sim.pending_timers(), 0, "no timer bookkeeping survives");
    }

    #[test]
    fn inspector_sees_every_event() {
        use std::cell::Cell;
        use std::rc::Rc;

        let observed = Rc::new(Cell::new(0u64));
        let max_pongs = Rc::new(Cell::new(0u32));
        let mut sim = Simulation::new(7);
        let ponger = sim.add_actor(Ponger);
        let pinger = sim.add_actor(Pinger {
            peer: ponger,
            rounds: 10,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        });
        let obs = Rc::clone(&observed);
        let pongs = Rc::clone(&max_pongs);
        sim.set_inspector(move |s| {
            obs.set(obs.get() + 1);
            assert_eq!(s.events_processed(), obs.get(), "runs after each event");
            pongs.set(s.actor::<Pinger>(pinger).pongs);
        });
        sim.run_until_quiescent();
        assert_eq!(observed.get(), sim.events_processed());
        assert_eq!(max_pongs.get(), 10, "inspector observes actor state");
        sim.clear_inspector();
    }

    #[test]
    fn run_until_predicate_stops_early() {
        let mut sim = Simulation::new(3);
        let ponger = sim.add_actor(Ponger);
        let pinger = sim.add_actor(Pinger {
            peer: ponger,
            rounds: 100,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        });
        let outcome = sim.run_until(|s| s.actor::<Pinger>(pinger).pongs >= 5);
        assert_eq!(outcome, RunOutcome::PredicateSatisfied);
        assert!(sim.actor::<Pinger>(pinger).pongs >= 5);
        assert!(sim.actor::<Pinger>(pinger).pongs < 100);
    }

    #[test]
    fn run_until_time_stops_at_deadline() {
        let mut sim = Simulation::new(3);
        let ponger = sim.add_actor(Ponger);
        sim.add_actor(Pinger {
            peer: ponger,
            rounds: 10,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        });
        let deadline = SimTime::from_micros(15_000);
        let outcome = sim.run_until_time(deadline);
        assert_eq!(outcome, RunOutcome::DeadlineReached);
        assert_eq!(sim.now(), deadline);
    }

    #[test]
    fn event_limit_is_a_safety_net() {
        let mut sim = Simulation::new(3);
        let ponger = sim.add_actor(Ponger);
        sim.add_actor(Pinger {
            peer: ponger,
            rounds: 100,
            pongs: 0,
            last_pong_at: SimTime::ZERO,
        });
        sim.set_event_limit(10);
        assert_eq!(sim.run_until_quiescent(), RunOutcome::EventLimitReached);
        assert_eq!(sim.events_processed(), 10);
    }

    #[test]
    fn try_actor_type_checks() {
        let mut sim: Simulation<Msg> = Simulation::new(0);
        let id = sim.add_actor(Ponger);
        assert!(sim.try_actor::<Ponger>(id).is_some());
        assert!(sim.try_actor::<Pinger>(id).is_none());
        assert!(sim.try_actor::<Ponger>(NodeId::new(99)).is_none());
    }

    #[test]
    #[should_panic(expected = "after the run started")]
    fn adding_actor_after_start_panics() {
        let mut sim: Simulation<Msg> = Simulation::new(0);
        sim.add_actor(Ponger);
        sim.run_until_quiescent();
        sim.add_actor(Ponger);
    }
}
