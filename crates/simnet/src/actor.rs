//! The actor contract implemented by protocol state machines.

use std::any::Any;

use crate::engine::Context;
use crate::node::NodeId;
use crate::payload::Payload;

/// A deterministic event-driven state machine living at one network node.
///
/// Actors never block and never read wall-clock time; all effects go
/// through the [`Context`] (sending messages, scheduling timers, sampling
/// randomness), which is what makes runs replayable from a seed.
pub trait Actor<M: Payload> {
    /// Called once when the simulation starts, before any event fires.
    /// Typical use: scheduling the first periodic timer.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message addressed to this actor is delivered.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M);

    /// Called when a timer scheduled by this actor fires. `tag` is the value
    /// passed to [`Context::schedule_timer`]; actors multiplex their timers
    /// through it.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, tag: u64);

    /// Upcast for state inspection by harnesses (e.g. "are all object
    /// versions AMR yet?"). Implementations are always `fn as_any(&self)
    /// -> &dyn Any { self }`.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for harnesses that inject work between run calls.
    /// Implementations are always
    /// `fn as_any_mut(&mut self) -> &mut dyn Any { self }`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    #[derive(Clone)]
    struct Unit;
    impl Payload for Unit {
        const KINDS: &'static [&'static str] = &["Unit"];
        fn kind_id(&self) -> usize {
            0
        }
        fn wire_size(&self) -> usize {
            1
        }
    }

    struct Probe {
        started: bool,
    }
    impl Actor<Unit> for Probe {
        fn on_start(&mut self, _ctx: &mut Context<'_, Unit>) {
            self.started = true;
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Unit>, _from: NodeId, _msg: Unit) {}
        fn on_timer(&mut self, _ctx: &mut Context<'_, Unit>, _tag: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn on_start_runs_and_as_any_downcasts() {
        let mut sim: Simulation<Unit> = Simulation::new(1);
        let id = sim.add_actor(Probe { started: false });
        sim.run_until_quiescent();
        let probe: &Probe = sim.actor(id);
        assert!(probe.started);
    }
}
