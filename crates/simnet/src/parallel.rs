//! DC-sharded conservative parallel simulation engine.
//!
//! The legacy [`Simulation`] is a single-threaded event loop: one queue,
//! one RNG, one clock. At the scale tier (100 nodes, millions of keys)
//! the loop itself becomes the binding constraint — so this module
//! partitions a simulation into one *shard* per data center and executes
//! shards concurrently, without giving up byte-level determinism.
//!
//! # Conservative execution with lookahead
//!
//! This is classic conservative parallel discrete-event simulation
//! (Chandy–Misra style), made null-message-free by Pahoehoe's topology:
//! every cross-DC link has a strict positive latency floor, so a message
//! sent by shard A at its current time `t` cannot arrive at shard B
//! before `t + floor`. The engine runs in bulk-synchronous rounds:
//!
//! 1. At a barrier (all mailboxes empty), compute the global virtual time
//!    `GVT` = the minimum next-event time over all shards.
//! 2. Every shard processes its local events strictly before the shared
//!    horizon `min(GVT + lookahead, deadline)`, with no synchronization.
//! 3. Cross-shard sends produced inside the window are exchanged and
//!    merged at the next barrier in deterministic `(time, src-shard,
//!    seq)` order.
//!
//! Step 2 is safe because any cross-shard message sent inside the window
//! was sent at some `t ≥ GVT` and therefore arrives at `t + latency ≥
//! GVT + lookahead ≥ horizon` — always in a *future* window.
//!
//! # Two-layer determinism
//!
//! * **Parallel ≡ sequential-sharded, byte-identical.** Worker threads
//!   return finished shards in scheduling-dependent order, but the only
//!   thing that order can influence is the gather order of cross-shard
//!   envelopes — and the mailbox merge sorts them by `(time, src-shard,
//!   seq)` before insertion, the same index-ordered-merge discipline
//!   `sweep::map_indexed` uses across scenarios. Everything downstream
//!   (receiver-side sequence numbers, per-shard RNG draws, metrics,
//!   traces) is a pure function of that merge order, so traces, metrics
//!   digests and final state are byte-identical at any worker count.
//! * **Sequential-sharded vs. legacy.** Sharding splits the single RNG
//!   stream into per-shard streams (splitmix-derived from the master
//!   seed), so event interleavings differ from the legacy engine — the
//!   two are compared at the *observable outcome* level by differential
//!   tests, mirroring the `set_reference_queue_mode` precedent.
//!
//! # Why conservative, not optimistic
//!
//! Optimistic engines (Time Warp) need state save/rollback on every
//! actor, anti-messages, and fossil collection — machinery that would
//! leak into every protocol state machine. Conservative execution needs
//! only a lookahead bound, which Pahoehoe's inter-DC latency floor
//! supplies for free, and it keeps actors byte-for-byte identical to the
//! single-threaded engine.

use std::any::Any;
use std::sync::mpsc;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::actor::Actor;
use crate::engine::{reference_queue_mode, Context, Envelope, Inner, Routing, RunOutcome};
use crate::metrics::Metrics;
use crate::network::{FaultPlan, NetworkConfig};
use crate::node::NodeId;
use crate::payload::Payload;
use crate::queue::{EventKind, EventQueue, TimerId, TimerSlab};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};

/// Read-only view over either simulation engine.
///
/// Harnesses that only *observe* a run (invariant checkers, AMR
/// analyses, reports) are written against this trait so they work
/// unchanged on the legacy [`Simulation`] and on
/// [`ShardedSimulation`]. The object-safe core is type-erased actor
/// access; typed downcasts are provided as inherent methods on
/// `dyn SimView<M>`.
pub trait SimView<M: Payload> {
    /// Borrows the actor at `id` as a type-erased [`Any`], if present.
    fn try_actor_any(&self, id: NodeId) -> Option<&dyn Any>;
    /// Current virtual time.
    fn now(&self) -> SimTime;
    /// Traffic metrics accumulated so far.
    fn metrics(&self) -> &Metrics;
    /// The recorded trace, if tracing is enabled.
    fn trace(&self) -> Option<&Trace>;
    /// Total events processed so far.
    fn events_processed(&self) -> u64;
}

impl<M: Payload> dyn SimView<M> + '_ {
    /// Borrows the actor at `id` if it is a `T`.
    pub fn try_actor<T: Any>(&self, id: NodeId) -> Option<&T> {
        self.try_actor_any(id)?.downcast_ref::<T>()
    }

    /// Borrows the actor at `id`, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if there is no actor at `id` or it is not a `T`.
    pub fn actor<T: Any>(&self, id: NodeId) -> &T {
        // lint:allow(panic-path): harness accessor, mirrors Simulation::actor
        self.try_actor(id).expect("actor type mismatch")
    }
}

impl<M: Payload> SimView<M> for crate::engine::Simulation<M> {
    fn try_actor_any(&self, id: NodeId) -> Option<&dyn Any> {
        crate::engine::Simulation::try_actor_any(self, id)
    }
    fn now(&self) -> SimTime {
        crate::engine::Simulation::now(self)
    }
    fn metrics(&self) -> &Metrics {
        crate::engine::Simulation::metrics(self)
    }
    fn trace(&self) -> Option<&Trace> {
        crate::engine::Simulation::trace(self)
    }
    fn events_processed(&self) -> u64 {
        crate::engine::Simulation::events_processed(self)
    }
}

/// How a simulation is partitioned into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Owning shard of every node, indexed by the order of
    /// [`ShardedSimulation::add_actor`] calls (= dense [`NodeId`] index).
    pub owner: Vec<u16>,
    /// Conservative lookahead: a strict lower bound on the one-way
    /// latency of every cross-shard link. Must be positive.
    pub lookahead: SimDuration,
    /// Worker threads executing shard windows. `0` and `1` both mean
    /// in-place sequential-sharded execution (no threads); results are
    /// byte-identical at any value.
    pub workers: usize,
}

impl ShardPlan {
    /// Number of shards (highest owner index + 1).
    pub fn shard_count(&self) -> usize {
        self.owner
            .iter()
            .map(|&s| s as usize + 1)
            .max()
            .unwrap_or(0)
    }
}

/// One round-trip through splitmix64, used to derive statistically
/// independent per-shard seeds from the master seed. (The legacy engine
/// feeds the master seed straight to its single `StdRng`.)
fn shard_seed(master: u64, shard: u64) -> u64 {
    let mut z = master.wrapping_add((shard + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One logical process: a DC's actors, queue, timing wheel, RNG stream
/// and metrics. Owns everything it needs to execute a window without
/// synchronization, so whole shards can be shipped to worker threads.
struct Shard<M: Payload> {
    index: u16,
    inner: Inner<M>,
    /// Sized to the *global* actor count; `None` for slots owned by
    /// other shards, so `NodeId` indices stay dense and global.
    actors: Vec<Option<Box<dyn Actor<M> + Send>>>,
    events_processed: u64,
}

impl<M: Payload> Shard<M> {
    /// `(time)` of this shard's next live event, if any.
    fn next_event_at(&mut self) -> Option<SimTime> {
        let inner = &mut self.inner;
        inner.queue.peek_next(&inner.timers).map(|(at, _)| at)
    }

    /// Runs every local actor's `on_start` hook in id order.
    fn start(&mut self) {
        for i in 0..self.actors.len() {
            // lint:allow(panic-path): i ranges over the actor table
            let Some(mut actor) = self.actors[i].take() else {
                continue;
            };
            let mut ctx = Context {
                self_id: NodeId::new(i as u32),
                inner: &mut self.inner,
            };
            actor.on_start(&mut ctx);
            // lint:allow(panic-path): same in-bounds index as the take
            self.actors[i] = Some(actor);
        }
    }

    /// Processes local events strictly before `horizon` (at most
    /// `budget` of them), then advances the clock to the horizon so
    /// every shard's clock is identical at the barrier regardless of
    /// local activity.
    fn run_window(&mut self, horizon: SimTime, budget: u64) {
        let mut processed = 0u64;
        while processed < budget {
            let inner = &mut self.inner;
            let Some((at, _)) = inner.queue.peek_next(&inner.timers) else {
                break;
            };
            if at >= horizon {
                break;
            }
            let ev = inner
                .queue
                .pop(&inner.timers)
                // lint:allow(panic-path): the peek above saw a live event
                .expect("peeked event exists");
            debug_assert!(ev.at >= self.inner.now, "time went backwards");
            self.inner.now = ev.at;
            processed += 1;
            if let EventKind::Timer { id, .. } = &ev.kind {
                self.inner.timers.retire(*id);
            }
            let slot = ev.to.index();
            // lint:allow(panic-path): an unknown or re-entered target is a harness bug
            let mut actor = self.actors[slot]
                .take()
                // lint:allow(panic-path): an unknown or re-entered target is a harness bug
                .expect("event addressed to unknown or re-entered actor");
            {
                let mut ctx = Context {
                    self_id: ev.to,
                    inner: &mut self.inner,
                };
                match ev.kind {
                    EventKind::Deliver { from, msg } => actor.on_message(&mut ctx, from, msg),
                    EventKind::Timer { tag, .. } => actor.on_timer(&mut ctx, tag),
                }
            }
            // lint:allow(panic-path): same in-bounds slot as the take above
            self.actors[slot] = Some(actor);
        }
        self.events_processed += processed;
        self.inner.now = self.inner.now.max(horizon);
    }
}

/// A window assignment shipped to a worker: the shard itself plus the
/// horizon and event budget of the current round.
type Job<M> = (Shard<M>, SimTime, u64);

/// Channel ends a round uses to farm windows out to persistent workers.
type Executor<'a, M> = (&'a [mpsc::Sender<Job<M>>], &'a mpsc::Receiver<Shard<M>>);

/// An observation hook invoked at every round barrier with a shared
/// borrow of the whole sharded simulation. See
/// [`ShardedSimulation::set_inspector`].
pub type ShardedInspector<M> = Box<dyn FnMut(&ShardedSimulation<M>)>;

/// A deterministic *sharded* discrete-event simulation: the drop-in
/// scale-out counterpart of [`Simulation`], partitioned per the
/// [`ShardPlan`] and executed in conservative lookahead rounds.
///
/// Observable differences from the legacy engine (all documented, all
/// deterministic):
///
/// * RNG draws come from per-shard streams, so latencies/losses differ
///   from a legacy run with the same seed (outcome-equivalence is
///   checked differentially, not byte-equality).
/// * Inspectors and run predicates fire at **round barriers**, not after
///   every event; a predicate-terminated run may overshoot by up to one
///   lookahead window of events.
/// * The event limit is enforced at round granularity: a run returns
///   [`RunOutcome::EventLimitReached`] at the first barrier at or past
///   the limit, which may overshoot the cap by up to one window per
///   shard.
///
/// [`Simulation`]: crate::engine::Simulation
pub struct ShardedSimulation<M: Payload> {
    shards: Vec<Shard<M>>,
    owner: Arc<[u16]>,
    lookahead: SimDuration,
    workers: usize,
    actor_count: usize,
    started: bool,
    event_limit: u64,
    /// Merged snapshot, refreshed at every barrier and terminal return.
    metrics: Metrics,
    /// Merged trace, appended round by round (events within a round are
    /// globally ordered by time, stably by shard on ties).
    trace: Option<Trace>,
    inspector: Option<ShardedInspector<M>>,
}

impl<M: Payload + Send> ShardedSimulation<M> {
    /// Creates a sharded simulation with the paper-default network model
    /// and no scheduled faults.
    pub fn new(seed: u64, plan: ShardPlan) -> Self {
        ShardedSimulation::with_network(
            seed,
            NetworkConfig::paper_default(),
            FaultPlan::none(),
            plan,
        )
    }

    /// Creates a sharded simulation with an explicit network model and
    /// fault plan. The fault plan is evaluated on the *sending* shard
    /// (every shard holds a full copy), so outcomes match the legacy
    /// engine's sender-side semantics exactly.
    ///
    /// # Panics
    ///
    /// Panics if the plan's lookahead is zero — conservative execution
    /// is only sound with a strict positive cross-shard latency floor —
    /// or if the plan maps no nodes.
    pub fn with_network(
        seed: u64,
        network: NetworkConfig,
        faults: FaultPlan,
        plan: ShardPlan,
    ) -> Self {
        assert!(
            plan.lookahead.as_micros() > 0,
            "sharded engine requires a positive cross-shard latency floor"
        );
        assert!(!plan.owner.is_empty(), "shard plan maps no nodes");
        let shard_count = plan.shard_count();
        let owner: Arc<[u16]> = plan.owner.into();
        let shards = (0..shard_count as u16)
            .map(|index| {
                let queue = if reference_queue_mode() {
                    EventQueue::reference()
                } else {
                    EventQueue::wheel()
                };
                Shard {
                    index,
                    inner: Inner {
                        now: SimTime::ZERO,
                        seq: 0,
                        queue,
                        timers: TimerSlab::new(),
                        rng: StdRng::seed_from_u64(shard_seed(seed, u64::from(index))),
                        network: network.clone(),
                        faults: faults.clone(),
                        metrics: Metrics::for_payload::<M>(),
                        trace: None,
                        routing: Some(Routing {
                            self_shard: index,
                            owner: Arc::clone(&owner),
                        }),
                        outbox: Vec::new(),
                    },
                    actors: Vec::new(),
                    events_processed: 0,
                }
            })
            .collect();
        ShardedSimulation {
            shards,
            owner,
            lookahead: plan.lookahead,
            workers: plan.workers.max(1),
            actor_count: 0,
            started: false,
            event_limit: u64::MAX,
            metrics: Metrics::for_payload::<M>(),
            trace: None,
            inspector: None,
        }
    }

    /// Adds an actor and returns its node id. Ids are dense indices in
    /// insertion order, global across shards; the actor lives on the
    /// shard the plan assigns to its index.
    ///
    /// # Panics
    ///
    /// Panics if called after the run started or if more actors are
    /// added than the shard plan maps.
    pub fn add_actor<A: Actor<M> + Send + 'static>(&mut self, actor: A) -> NodeId {
        assert!(!self.started, "cannot add actors after the run started");
        let idx = self.actor_count;
        assert!(
            idx < self.owner.len(),
            "more actors than the shard plan maps"
        );
        for shard in &mut self.shards {
            shard.actors.push(None);
        }
        let home = self.owner[idx] as usize;
        self.shards[home].actors[idx] = Some(Box::new(actor));
        self.actor_count += 1;
        NodeId::new(idx as u32)
    }

    /// Number of actors added so far.
    pub fn actor_count(&self) -> usize {
        self.actor_count
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads used for round execution.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The conservative lookahead the rounds advance by.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> u16 {
        self.owner[node.index()]
    }

    /// Schedules a timer on `node` from outside the simulation (e.g. to
    /// kick off a client workload). Timers never cross shards: the event
    /// is queued directly on the owning shard.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) -> TimerId {
        let home = self.owner[node.index()] as usize;
        self.shards[home].inner.schedule_timer(node, delay, tag)
    }

    /// Cancels a timer previously scheduled on `node`. Cancelling a
    /// timer that already fired (or was already cancelled) is a no-op.
    pub fn cancel_timer(&mut self, node: NodeId, id: TimerId) {
        let home = self.owner[node.index()] as usize;
        let inner = &mut self.shards[home].inner;
        if inner.timers.retire(id) {
            inner.queue.invalidate_peek();
        }
    }

    /// Installs an observation hook that runs at **every round barrier**
    /// with a shared borrow of the simulation. Coarser than the legacy
    /// per-event inspector, but the view is fully consistent: all
    /// mailboxes are empty and every shard's clock equals the horizon.
    pub fn set_inspector(&mut self, inspector: impl FnMut(&ShardedSimulation<M>) + 'static) {
        self.inspector = Some(Box::new(inspector));
    }

    /// Removes the observation hook, if any.
    pub fn clear_inspector(&mut self) {
        self.inspector = None;
    }

    /// Caps the total number of events the run will process, checked at
    /// round barriers (see the type-level docs for overshoot semantics).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Enables per-message event tracing on every shard; traces are
    /// merged into one global time-ordered trace at each barrier.
    pub fn enable_trace(&mut self) {
        for shard in &mut self.shards {
            if shard.inner.trace.is_none() {
                shard.inner.trace = Some(Trace::new());
            }
        }
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// The fault plan (immutable once running). Every shard holds an
    /// identical copy; this returns shard 0's.
    pub fn faults(&self) -> &FaultPlan {
        &self.shards[0].inner.faults
    }

    /// Current virtual time: the furthest horizon any shard reached.
    /// At every barrier all shard clocks are equal.
    pub fn now(&self) -> SimTime {
        self.shards
            .iter()
            .map(|s| s.inner.now)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Merged traffic metrics (refreshed at every barrier).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The merged trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Number of timers currently scheduled and neither fired nor
    /// cancelled, across all shards.
    pub fn pending_timers(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.timers.live_count())
            .sum()
    }

    /// Borrows the actor at `id` if it is a `T`.
    pub fn try_actor<T: Any>(&self, id: NodeId) -> Option<&T> {
        self.try_actor_any_impl(id)?.downcast_ref::<T>()
    }

    /// Borrows the actor at `id`, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if there is no actor at `id` or it is not a `T`.
    pub fn actor<T: Any>(&self, id: NodeId) -> &T {
        // lint:allow(panic-path): harness accessor, mirrors Simulation::actor
        self.try_actor(id).expect("actor type mismatch")
    }

    /// Mutably borrows the actor at `id`, downcast to its concrete type.
    /// Intended for harnesses injecting work between run calls.
    ///
    /// # Panics
    ///
    /// Panics if there is no actor at `id` or it is not a `T`.
    pub fn actor_mut<T: Any>(&mut self, id: NodeId) -> &mut T {
        let home = self.owner[id.index()] as usize;
        self.shards[home]
            .actors
            .get_mut(id.index())
            .and_then(|slot| slot.as_mut())
            .and_then(|a| a.as_any_mut().downcast_mut::<T>())
            // lint:allow(panic-path): harness accessor, mirrors Simulation::actor_mut
            .expect("actor type mismatch")
    }

    fn try_actor_any_impl(&self, id: NodeId) -> Option<&dyn Any> {
        let home = *self.owner.get(id.index())? as usize;
        self.shards[home]
            .actors
            .get(id.index())
            .and_then(|slot| slot.as_ref())
            .map(|a| a.as_any())
    }

    /// Runs until no events remain.
    pub fn run_until_quiescent(&mut self) -> RunOutcome {
        self.run_impl(SimTime::MAX, |_| false)
    }

    /// Runs until `pred` holds at a round barrier (or quiescence).
    pub fn run_until(&mut self, pred: impl FnMut(&ShardedSimulation<M>) -> bool) -> RunOutcome {
        self.run_impl(SimTime::MAX, pred)
    }

    /// Runs until virtual time reaches `deadline` (or quiescence, in
    /// which case the clock still advances to the deadline). Events
    /// scheduled exactly at the deadline do not execute.
    pub fn run_until_time(&mut self, deadline: SimTime) -> RunOutcome {
        self.run_impl(deadline, |_| false)
    }

    fn run_impl(
        &mut self,
        deadline: SimTime,
        mut pred: impl FnMut(&ShardedSimulation<M>) -> bool,
    ) -> RunOutcome {
        self.start_if_needed();
        if self.workers <= 1 || self.shards.len() <= 1 {
            return self.round_loop(deadline, &mut pred, None);
        }
        let workers = self.workers.min(self.shards.len());
        std::thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel::<Shard<M>>();
            let mut job_txs: Vec<mpsc::Sender<Job<M>>> = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (tx, rx) = mpsc::channel::<Job<M>>();
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok((mut shard, horizon, budget)) = rx.recv() {
                        shard.run_window(horizon, budget);
                        if res_tx.send(shard).is_err() {
                            break;
                        }
                    }
                });
                job_txs.push(tx);
            }
            drop(res_tx);
            self.round_loop(deadline, &mut pred, Some((&job_txs, &res_rx)))
        })
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for shard in &mut self.shards {
            shard.start();
        }
        // `on_start` sends can cross shards; merge them before round one.
        let mut inboxes = self.gather_outboxes_sequential();
        self.merge_inboxes(&mut inboxes);
        self.merge_round_traces();
    }

    fn round_loop(
        &mut self,
        deadline: SimTime,
        pred: &mut dyn FnMut(&ShardedSimulation<M>) -> bool,
        executor: Option<Executor<'_, M>>,
    ) -> RunOutcome {
        loop {
            let gvt = self
                .shards
                .iter_mut()
                .filter_map(Shard::next_event_at)
                .min();
            let Some(gvt) = gvt else {
                self.refresh_metrics();
                if deadline < SimTime::MAX {
                    self.advance_all(deadline);
                    return RunOutcome::DeadlineReached;
                }
                return RunOutcome::Quiescent;
            };
            if gvt >= deadline {
                self.advance_all(deadline);
                self.refresh_metrics();
                return RunOutcome::DeadlineReached;
            }
            let total = self.events_processed();
            if total >= self.event_limit {
                self.refresh_metrics();
                return RunOutcome::EventLimitReached;
            }
            // Per-shard budget: bounds runaway zero-delay loops within a
            // window; the next barrier converts exhaustion into
            // EventLimitReached.
            let budget = self.event_limit - total;
            let horizon = gvt.saturating_add(self.lookahead).min(deadline);
            self.run_round(horizon, budget, executor);
            self.refresh_metrics();
            if let Some(mut insp) = self.inspector.take() {
                insp(self);
                self.inspector = Some(insp);
            }
            if pred(self) {
                return RunOutcome::PredicateSatisfied;
            }
        }
    }

    /// Executes one window on every shard (inline or on workers) and
    /// merges the produced cross-shard envelopes.
    fn run_round(&mut self, horizon: SimTime, budget: u64, executor: Option<Executor<'_, M>>) {
        let n = self.shards.len();
        let mut inboxes: Vec<Vec<(u16, Envelope<M>)>> = Vec::with_capacity(n);
        inboxes.resize_with(n, Vec::new);
        match executor {
            None => {
                for i in 0..n {
                    // lint:allow(panic-path): i ranges over the shard table
                    self.shards[i].run_window(horizon, budget);
                    // lint:allow(panic-path): same in-bounds shard index
                    let src = self.shards[i].index;
                    // lint:allow(panic-path): same in-bounds shard index
                    for env in self.shards[i].inner.outbox.drain(..) {
                        // Owner values are shard indices by construction
                        // and `inboxes` is sized to shard count.
                        // lint:allow(panic-path): owner-derived index is in bounds
                        let dst = self.owner[env.to.index()] as usize;
                        // lint:allow(panic-path): owner-derived index is in bounds
                        inboxes[dst].push((src, env));
                    }
                }
            }
            Some((job_txs, res_rx)) => {
                let taken = std::mem::take(&mut self.shards);
                let mut slots: Vec<Option<Shard<M>>> = Vec::with_capacity(n);
                slots.resize_with(n, || None);
                for shard in taken {
                    let w = shard.index as usize % job_txs.len();
                    // lint:allow(panic-path): w is reduced mod the worker count
                    job_txs[w]
                        .send((shard, horizon, budget))
                        // lint:allow(panic-path): a dead worker is unrecoverable
                        .expect("worker thread alive");
                }
                // Results arrive in scheduling-dependent completion
                // order. Park them first, then gather outboxes in
                // *reverse* shard-index order — deliberately not the
                // sequential path's index order — so the merge sort's
                // `(time, src-shard, seq)` tie-break is load-bearing on
                // every run, even on single-core hosts where completion
                // order degenerates to index order. The sort key is a
                // total order over cross-shard envelopes, so the merge
                // result is gather-order-independent either way.
                for _ in 0..n {
                    // lint:allow(panic-path): a dead worker is unrecoverable
                    let shard = res_rx.recv().expect("worker thread alive");
                    let src = shard.index as usize;
                    // lint:allow(panic-path): shard indices are < n and `slots` holds n
                    slots[src] = Some(shard);
                }
                for slot in slots.iter_mut().rev() {
                    // lint:allow(panic-path): each worker returns every shard it was sent
                    let shard = slot.as_mut().expect("every shard returned");
                    let src = shard.index;
                    for env in shard.inner.outbox.drain(..) {
                        // lint:allow(panic-path): owner-derived index is in bounds
                        let dst = self.owner[env.to.index()] as usize;
                        // lint:allow(panic-path): owner-derived index is in bounds
                        inboxes[dst].push((src, env));
                    }
                }
                self.shards = slots
                    .into_iter()
                    // lint:allow(panic-path): each worker returns every shard it was sent
                    .map(|slot| slot.expect("every shard returned"))
                    .collect();
            }
        }
        self.merge_inboxes(&mut inboxes);
        self.merge_round_traces();
    }

    /// Gathers every shard's outbox in shard-index order (the sequential
    /// path used at startup).
    fn gather_outboxes_sequential(&mut self) -> Vec<Vec<(u16, Envelope<M>)>> {
        let n = self.shards.len();
        let mut inboxes: Vec<Vec<(u16, Envelope<M>)>> = Vec::with_capacity(n);
        inboxes.resize_with(n, Vec::new);
        for i in 0..n {
            // lint:allow(panic-path): i ranges over the shard table
            let src = self.shards[i].index;
            // lint:allow(panic-path): same in-bounds shard index
            for env in self.shards[i].inner.outbox.drain(..) {
                // lint:allow(panic-path): owner-derived index is in bounds
                let dst = self.owner[env.to.index()] as usize;
                // lint:allow(panic-path): owner-derived index is in bounds
                inboxes[dst].push((src, env));
            }
        }
        inboxes
    }

    fn merge_inboxes(&mut self, inboxes: &mut [Vec<(u16, Envelope<M>)>]) {
        for (dst, inbox) in inboxes.iter_mut().enumerate() {
            // lint:allow(panic-path): one inbox exists per live shard index
            Self::merge_inbox(&mut self.shards[dst], inbox);
        }
    }

    /// Merges one destination shard's gathered cross-shard envelopes
    /// into its queue in the deterministic `(time, src-shard, seq)`
    /// mailbox order. The gather order is scheduling-dependent under
    /// parallel execution; this sort is the index-ordered-merge
    /// discipline that erases it. Each push assigns a fresh
    /// receiver-local sequence number, so all downstream tie-breaking is
    /// a pure function of this merge order.
    fn merge_inbox(shard: &mut Shard<M>, inbox: &mut Vec<(u16, Envelope<M>)>) {
        inbox.sort_by_key(|(src, env)| (env.at, *src, env.seq));
        for (_, env) in inbox.drain(..) {
            debug_assert!(
                env.at >= shard.inner.now,
                "cross-shard arrival inside an already-executed window"
            );
            shard.inner.push(env.at, env.to, env.kind);
        }
    }

    /// Appends this round's per-shard trace events to the merged trace,
    /// globally ordered by time (stable by shard index on ties). Sound
    /// because every event of later rounds is at or past the horizon.
    fn merge_round_traces(&mut self) {
        let Some(merged) = self.trace.as_mut() else {
            return;
        };
        let mut round: Vec<TraceEvent> = Vec::new();
        for shard in &mut self.shards {
            if let Some(t) = shard.inner.trace.as_mut() {
                round.append(&mut t.take_events());
            }
        }
        round.sort_by_key(|e| e.at);
        for e in round {
            merged.record(e);
        }
    }

    fn refresh_metrics(&mut self) {
        let mut merged = Metrics::for_payload::<M>();
        for shard in &self.shards {
            merged.merge(&shard.inner.metrics);
        }
        self.metrics = merged;
    }

    fn advance_all(&mut self, deadline: SimTime) {
        for shard in &mut self.shards {
            shard.inner.now = shard.inner.now.max(deadline);
        }
    }
}

impl<M: Payload + Send> SimView<M> for ShardedSimulation<M> {
    fn try_actor_any(&self, id: NodeId) -> Option<&dyn Any> {
        self.try_actor_any_impl(id)
    }
    fn now(&self) -> SimTime {
        ShardedSimulation::now(self)
    }
    fn metrics(&self) -> &Metrics {
        ShardedSimulation::metrics(self)
    }
    fn trace(&self) -> Option<&Trace> {
        ShardedSimulation::trace(self)
    }
    fn events_processed(&self) -> u64 {
        ShardedSimulation::events_processed(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;

    #[derive(Clone, Debug)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }
    impl Payload for Msg {
        const KINDS: &'static [&'static str] = &["Ping", "Pong"];
        fn kind_id(&self) -> usize {
            match self {
                Msg::Ping(_) => 0,
                Msg::Pong(_) => 1,
            }
        }
        fn wire_size(&self) -> usize {
            64
        }
    }

    /// Sends `rounds` pings to `peer` (one per reply) after a kickoff
    /// timer, and periodically chatters with `gossip` if set.
    struct Pinger {
        peer: NodeId,
        gossip: Option<NodeId>,
        rounds: u32,
        sent: u32,
        got: Vec<u32>,
    }
    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.schedule_timer(SimDuration::from_millis(1), 0);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Pong(n) = msg {
                if n >= 1000 {
                    return; // reply to a gossip ping, not part of the exchange
                }
                self.got.push(n);
                if self.sent < self.rounds {
                    self.sent += 1;
                    ctx.send(self.peer, Msg::Ping(self.sent));
                    if let Some(g) = self.gossip {
                        ctx.send(g, Msg::Ping(1000 + self.sent));
                    }
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _tag: u64) {
            self.sent += 1;
            ctx.send(self.peer, Msg::Ping(self.sent));
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Replies Pong to every Ping.
    struct Ponger {
        seen: u32,
    }
    impl Actor<Msg> for Ponger {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(n) = msg {
                self.seen += 1;
                ctx.send(from, Msg::Pong(n));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _tag: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn cross_shard_sim(seed: u64, workers: usize, rounds: u32) -> ShardedSimulation<Msg> {
        // Two pinger/ponger pairs split across two shards, with each
        // pinger's partner on the *other* shard so every message crosses.
        let plan = ShardPlan {
            owner: vec![0, 1, 1, 0],
            lookahead: SimDuration::from_millis(10),
            workers,
        };
        let mut sim = ShardedSimulation::new(seed, plan);
        let p0 = sim.add_actor(Pinger {
            peer: NodeId::new(1),
            gossip: Some(NodeId::new(2)),
            rounds,
            sent: 0,
            got: Vec::new(),
        });
        let q0 = sim.add_actor(Ponger { seen: 0 });
        let q1 = sim.add_actor(Ponger { seen: 0 });
        let p1 = sim.add_actor(Pinger {
            peer: NodeId::new(2),
            gossip: None,
            rounds,
            sent: 0,
            got: Vec::new(),
        });
        assert_eq!(
            (p0.index(), q0.index(), q1.index(), p1.index()),
            (0, 1, 2, 3)
        );
        sim.enable_trace();
        sim
    }

    fn digest(sim: &ShardedSimulation<Msg>) -> String {
        format!(
            "now={} events={} metrics={:?} trace:\n{}",
            sim.now(),
            sim.events_processed(),
            sim.metrics(),
            sim.trace().map(|t| t.render()).unwrap_or_default()
        )
    }

    #[test]
    fn cross_shard_ping_pong_completes() {
        let mut sim = cross_shard_sim(7, 1, 5);
        assert_eq!(sim.run_until_quiescent(), RunOutcome::Quiescent);
        let p0: &Pinger = sim.actor(NodeId::new(0));
        assert_eq!(p0.got.len(), 5, "every exchange completed: {:?}", p0.got);
        let q0: &Ponger = sim.actor(NodeId::new(1));
        assert!(q0.seen >= 5);
        assert_eq!(sim.pending_timers(), 0);
    }

    #[test]
    fn worker_count_is_byte_invisible() {
        let mut base = cross_shard_sim(42, 1, 8);
        base.run_until_quiescent();
        let want = digest(&base);
        for workers in [2, 3, 4] {
            let mut sim = cross_shard_sim(42, workers, 8);
            assert_eq!(sim.run_until_quiescent(), RunOutcome::Quiescent);
            assert_eq!(digest(&sim), want, "workers={workers} diverged");
        }
    }

    #[test]
    fn seed_changes_the_run() {
        let mut a = cross_shard_sim(1, 1, 8);
        a.run_until_quiescent();
        let mut b = cross_shard_sim(2, 1, 8);
        b.run_until_quiescent();
        assert_ne!(digest(&a), digest(&b), "seeds must matter");
    }

    #[test]
    fn message_counts_match_legacy_engine() {
        // Different RNG streams mean different latencies, but a loss-free
        // ping-pong sends a fixed number of messages either way.
        let mut sharded = cross_shard_sim(11, 2, 6);
        sharded.run_until_quiescent();
        let mut legacy: Simulation<Msg> = Simulation::new(11);
        legacy.add_actor(Pinger {
            peer: NodeId::new(1),
            gossip: Some(NodeId::new(2)),
            rounds: 6,
            sent: 0,
            got: Vec::new(),
        });
        legacy.add_actor(Ponger { seen: 0 });
        legacy.add_actor(Ponger { seen: 0 });
        legacy.add_actor(Pinger {
            peer: NodeId::new(2),
            gossip: None,
            rounds: 6,
            sent: 0,
            got: Vec::new(),
        });
        legacy.run_until_quiescent();
        assert_eq!(
            sharded.metrics().total_count(),
            legacy.metrics().total_count()
        );
        assert_eq!(sharded.events_processed(), legacy.events_processed());
    }

    #[test]
    fn deadline_advances_every_shard_clock() {
        let mut sim = cross_shard_sim(3, 2, 1000);
        let deadline = SimTime::from_micros(50_000);
        assert_eq!(sim.run_until_time(deadline), RunOutcome::DeadlineReached);
        assert_eq!(sim.now(), deadline);
        // Quiescent-before-deadline also lands exactly on the deadline.
        let mut idle = cross_shard_sim(3, 1, 0);
        let far = SimTime::from_micros(10_000_000);
        assert_eq!(idle.run_until_time(far), RunOutcome::DeadlineReached);
        assert_eq!(idle.now(), far);
    }

    #[test]
    fn event_limit_is_deterministic_across_workers() {
        let mut a = cross_shard_sim(9, 1, 50);
        a.set_event_limit(40);
        assert_eq!(a.run_until_quiescent(), RunOutcome::EventLimitReached);
        let mut b = cross_shard_sim(9, 4, 50);
        b.set_event_limit(40);
        assert_eq!(b.run_until_quiescent(), RunOutcome::EventLimitReached);
        assert_eq!(a.events_processed(), b.events_processed());
        assert_eq!(digest(&a), digest(&b));
    }

    #[test]
    fn predicate_stops_at_a_barrier() {
        let mut sim = cross_shard_sim(5, 2, 100);
        let outcome = sim.run_until(|s| {
            s.try_actor::<Pinger>(NodeId::new(0))
                .is_some_and(|p| p.got.len() >= 3)
        });
        assert_eq!(outcome, RunOutcome::PredicateSatisfied);
        let p0: &Pinger = sim.actor(NodeId::new(0));
        assert!(p0.got.len() >= 3);
    }

    #[test]
    fn inspector_runs_at_barriers_with_consistent_state() {
        let mut sim = cross_shard_sim(6, 2, 5);
        let calls = std::rc::Rc::new(std::cell::Cell::new(0usize));
        let seen = calls.clone();
        sim.set_inspector(move |s| {
            seen.set(seen.get() + 1);
            // Trace and metrics agree at every barrier.
            if let Some(t) = s.trace() {
                assert_eq!(t.len() as u64, s.metrics().total_count());
            }
        });
        sim.run_until_quiescent();
        assert!(calls.get() > 0);
    }

    #[test]
    fn sim_view_is_engine_agnostic() {
        let mut sim = cross_shard_sim(8, 1, 2);
        sim.run_until_quiescent();
        let view: &dyn SimView<Msg> = &sim;
        let p: &Pinger = view.actor(NodeId::new(0));
        assert_eq!(p.got.len(), 2);
        assert!(view.try_actor::<Ponger>(NodeId::new(0)).is_none());
        assert_eq!(view.events_processed(), sim.events_processed());

        let mut legacy: Simulation<Msg> = Simulation::new(1);
        legacy.add_actor(Ponger { seen: 0 });
        let view: &dyn SimView<Msg> = &legacy;
        assert!(view.try_actor::<Ponger>(NodeId::new(0)).is_some());
    }

    #[test]
    #[should_panic(expected = "positive cross-shard latency floor")]
    fn zero_lookahead_is_rejected() {
        let plan = ShardPlan {
            owner: vec![0, 1],
            lookahead: SimDuration::ZERO,
            workers: 1,
        };
        let _sim: ShardedSimulation<Msg> = ShardedSimulation::new(0, plan);
    }

    #[test]
    fn shard_seeds_are_distinct() {
        let a = shard_seed(42, 0);
        let b = shard_seed(42, 1);
        let c = shard_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
