//! Benchmark crate for the Pahoehoe reproduction.
//!
//! All content lives in Criterion benches under `benches/`:
//!
//! * `erasure_codec` — encode/decode/recover throughput of the
//!   from-scratch Reed-Solomon codec;
//! * `fig5_failure_free`, `fig6_7_fs_failures`, `fig8_kls_failures`,
//!   `fig9_lossy` — end-to-end convergence runs matching each paper
//!   figure's scenario (the message/byte tables themselves come from the
//!   `experiments` binaries);
//! * `ablations` — sensitivity of convergence cost to the tunables
//!   DESIGN.md calls out (backoff base, round interval, sibling-recovery
//!   accumulation window, latency model).
//!
//! Run with `cargo bench --workspace` or a single target, e.g.
//! `cargo bench -p bench --bench erasure_codec`.
//!
//! The `BENCH_*.json` writer binaries (`baseline`, `scale`, `delta`)
//! share [`host_json`], so every recorded file carries the host context
//! needed to read its numbers honestly (a 4-worker parallel cell on a
//! single-core runner cannot speed up, and the record says so).

/// Logical CPUs available to this process (1 when undetectable).
pub fn nproc() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The host-context object embedded in every recorded `BENCH_*.json`:
/// logical CPU count, the worker-thread count the run was launched with,
/// and the simulation engine mode driving it.
pub fn host_json(workers: usize, engine: &str) -> String {
    format!(
        "\"host\": {{ \"nproc\": {}, \"workers\": {workers}, \"engine\": \"{engine}\" }}",
        nproc()
    )
}
