//! Benchmark crate for the Pahoehoe reproduction.
//!
//! All content lives in Criterion benches under `benches/`:
//!
//! * `erasure_codec` — encode/decode/recover throughput of the
//!   from-scratch Reed-Solomon codec;
//! * `fig5_failure_free`, `fig6_7_fs_failures`, `fig8_kls_failures`,
//!   `fig9_lossy` — end-to-end convergence runs matching each paper
//!   figure's scenario (the message/byte tables themselves come from the
//!   `experiments` binaries);
//! * `ablations` — sensitivity of convergence cost to the tunables
//!   DESIGN.md calls out (backoff base, round interval, sibling-recovery
//!   accumulation window, latency model).
//!
//! Run with `cargo bench --workspace` or a single target, e.g.
//! `cargo bench -p bench --bench erasure_codec`.
