//! Delta-codec sweep: `cargo run -p bench --release --bin delta`.
//!
//! Runs hot-key overwrite streams in **delta-on / delta-off pairs** and
//! records the put-path payload bytes each mode ships, the delta-engine
//! counters, and the convergence ledger into `BENCH_delta.json` at the
//! repo root. The headline claim (DESIGN.md §8.8): at 4 KiB values with
//! ~1% of bytes changed per overwrite, XOR-delta stripes cut put-path
//! fragment payload by **at least 3x** while converging to the same AMR
//! ledger as the full-stripe run.
//!
//! Every cell runs in its own child process (this binary re-execs itself
//! with `--cell`): delta coding is a process-wide construction-time
//! switch, so per-process isolation keeps the pair runs from seeing each
//! other's mode. The parent distributes cells through
//! `simnet::sweep::map_indexed`, the same deterministic harness the
//! explorer sweep uses.
//!
//! ```text
//! cargo run -p bench --release --bin delta            # full pair grid
//! cargo run -p bench --release --bin delta -- --smoke # CI subset
//! ```

use std::cell::Cell as StdCell;
use std::path::{Path, PathBuf};
use std::process::Command;

use pahoehoe::client::Client;
use pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe::fs::Fs;
use pahoehoe::policy::Policy;
use pahoehoe::protocol::{set_delta_coding, ProtocolMode};
use pahoehoe::workload::{KeyDistribution, StreamingWorkload};
use simnet::{NodeId, RunOutcome, SimDuration, SimTime};

// Wall-clock use is the entire point of a benchmark runner; virtual time
// cannot measure real throughput.
// lint:allow(wall-clock)
use std::time::Instant;

/// One cell: an overwrite stream shape plus the delta switch. Cells come
/// in `(delta: true, delta: false)` pairs that are identical otherwise.
#[derive(Clone, Debug)]
struct Cell {
    name: &'static str,
    /// The pair both cells of a measurement belong to.
    pair: &'static str,
    key_space: u64,
    puts: u64,
    value_len: usize,
    dist: KeyDistribution,
    /// 1/1000 of bytes rewritten at a fixed per-key offset per overwrite.
    overwrite_delta_permille: u16,
    delta: bool,
    seed: u64,
}

impl Cell {
    fn dist_label(&self) -> String {
        match self.dist {
            KeyDistribution::Sequential => "seq".to_string(),
            KeyDistribution::Uniform => "uniform".to_string(),
            KeyDistribution::Zipf { exponent } => format!("zipf:{exponent}"),
            KeyDistribution::HotKey {
                hot_keys,
                hot_permille,
            } => format!("hot:{hot_keys}:{hot_permille}"),
        }
    }

    /// Child-process argument encoding (inverse of [`parse_cell`]).
    fn to_args(&self) -> Vec<String> {
        vec![
            "--cell".into(),
            self.name.into(),
            "--pair".into(),
            self.pair.into(),
            "--keys".into(),
            self.key_space.to_string(),
            "--puts".into(),
            self.puts.to_string(),
            "--value-len".into(),
            self.value_len.to_string(),
            "--dist".into(),
            self.dist_label(),
            "--overwrite-permille".into(),
            self.overwrite_delta_permille.to_string(),
            "--delta".into(),
            if self.delta { "on" } else { "off" }.into(),
            "--seed".into(),
            self.seed.to_string(),
        ]
    }
}

/// Deterministic measurements of one cell run, reported by the child as a
/// single JSON line.
struct CellResult {
    outcome: RunOutcome,
    events: u64,
    sim_secs: f64,
    wall_secs: f64,
    puts_attempted: u64,
    puts_succeeded: u64,
    amr_versions: usize,
    non_durable: usize,
    /// `(label, count)` for every delta-engine event counter.
    counters: Vec<(&'static str, u64)>,
}

/// The delta-engine counters each cell records, in output order.
const COUNTERS: &[&str] = &[
    "deltas_encoded",
    "delta_fallbacks",
    "delta_bytes_saved",
    "stripe_cache_hits",
    "stripe_cache_misses",
    "delta_frag_bytes",
    "full_frag_bytes",
    "deltas_resolved",
    "delta_unresolvable",
];

/// Runs one cell in this process and measures it.
fn run_cell(cell: &Cell) -> CellResult {
    // Construction-time switch: the whole point of the child process.
    set_delta_coding(cell.delta);
    let mut cfg = ClusterConfig::paper_default();
    cfg.policy = Policy::paper_default();
    cfg.protocol = ProtocolMode {
        delta: cell.delta,
        ..ProtocolMode::delta()
    };
    cfg.workload_value_len = cell.value_len;
    cfg.streaming_workload = Some(StreamingWorkload {
        puts: cell.puts,
        key_space: cell.key_space,
        value_len: cell.value_len,
        policy: cfg.policy,
        seed: cell.seed,
        dist: cell.dist,
        overwrite_delta_permille: cell.overwrite_delta_permille,
    });
    cfg.max_sim_time = SimDuration::from_secs(14 * 24 * 3600);
    let max_sim_time = cfg.max_sim_time;
    let mut cluster = Cluster::build(cfg, cell.seed);

    let client = cluster.client_ids()[0];
    let fss: Vec<NodeId> = cluster.topology().all_fss().collect();
    let deadline = SimTime::ZERO + max_sim_time;
    let next_check = StdCell::new(0u64);
    let check_interval = SimDuration::from_millis(500).as_micros();
    // lint:allow(wall-clock)
    let t0 = Instant::now();
    let outcome = {
        let sim = cluster.sim_mut();
        sim.run_until(|sim| {
            if sim.now() >= deadline {
                return true;
            }
            if sim.now().as_micros() < next_check.get() {
                return false;
            }
            next_check.set(sim.now().as_micros() + check_interval);
            sim.actor::<Client>(client).is_done()
                && fss
                    .iter()
                    .all(|&fs| sim.actor::<Fs>(fs).pending_versions().next().is_none())
        })
    };
    let wall_secs = t0.elapsed().as_secs_f64();

    let metrics = cluster.sim().metrics().clone();
    let counters = COUNTERS
        .iter()
        .map(|&label| (label, metrics.event(label)))
        .collect();
    let c: &Client = cluster.sim().actor(client);
    let (puts_attempted, puts_succeeded) = (c.puts_attempted(), c.puts_succeeded());
    let events = cluster.sim().events_processed();
    let sim_secs = cluster.sim().now().as_secs_f64();
    let report = cluster.report(outcome);
    CellResult {
        outcome,
        events,
        sim_secs,
        wall_secs,
        puts_attempted,
        puts_succeeded,
        amr_versions: report.amr_versions,
        non_durable: report.non_durable,
        counters,
    }
}

fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// The child's single-line report, also the cell object embedded in
/// `BENCH_delta.json`.
fn cell_json(cell: &Cell, r: &CellResult) -> String {
    let counters = r
        .counters
        .iter()
        .map(|(label, n)| format!("\"{label}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{ \"name\": \"{}\", \"pair\": \"{}\", \"delta\": {}, \"key_space\": {}, \
         \"puts\": {}, \"value_len\": {}, \"dist\": \"{}\", \
         \"overwrite_permille\": {}, \"seed\": {}, \"outcome\": \"{:?}\", \
         \"events\": {}, \"sim_secs\": {}, \"wall_secs\": {}, \
         \"puts_attempted\": {}, \"puts_succeeded\": {}, \"amr_versions\": {}, \
         \"non_durable\": {}, \"counters\": {{ {} }} }}",
        cell.name,
        cell.pair,
        cell.delta,
        cell.key_space,
        cell.puts,
        cell.value_len,
        cell.dist_label(),
        cell.overwrite_delta_permille,
        cell.seed,
        r.outcome,
        r.events,
        jf(r.sim_secs),
        jf(r.wall_secs),
        r.puts_attempted,
        r.puts_succeeded,
        r.amr_versions,
        r.non_durable,
        counters,
    )
}

/// The pair grid. `hot-seq` is the headline cell behind the >= 3x claim:
/// a 16-key sequential overwrite stream keeps every stripe inside the
/// proxy's 32-entry cache, so only the chain-depth re-anchors ship full
/// stripes. `zipf` adds a skewed 1000-key stream where the cache only
/// covers the head — its ratio is recorded but not gated.
fn grid(smoke: bool) -> Vec<Cell> {
    let cell = |name, pair, key_space, puts, dist, delta| Cell {
        name,
        pair,
        key_space,
        puts,
        value_len: 4096,
        dist,
        // ~1% of bytes rewritten per overwrite, the paper-shaped hot-key
        // update pattern the delta codec targets.
        overwrite_delta_permille: 10,
        delta,
        seed: 42,
    };
    let mut cells = vec![
        cell(
            "hot-seq-on",
            "hot-seq",
            16,
            if smoke { 512 } else { 4_096 },
            KeyDistribution::Sequential,
            true,
        ),
        cell(
            "hot-seq-off",
            "hot-seq",
            16,
            if smoke { 512 } else { 4_096 },
            KeyDistribution::Sequential,
            false,
        ),
    ];
    if !smoke {
        cells.push(cell(
            "zipf-on",
            "zipf",
            1_000,
            8_000,
            KeyDistribution::Zipf { exponent: 1.1 },
            true,
        ));
        cells.push(cell(
            "zipf-off",
            "zipf",
            1_000,
            8_000,
            KeyDistribution::Zipf { exponent: 1.1 },
            false,
        ));
    }
    cells
}

/// Extracts `"field": value` from a cell's JSON line (the hand-rolled
/// format above is regular enough for this).
fn json_u64(line: &str, field: &str) -> Option<u64> {
    let at = line.find(&format!("\"{field}\": "))?;
    let rest = &line[at + field.len() + 4..];
    let digits: String = rest
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The workspace root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn parse_cell(args: &[String]) -> Cell {
    let get = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let num = |flag: &str, default: u64| -> u64 {
        get(flag).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let dist = match get("--dist").unwrap_or("seq") {
        "seq" => KeyDistribution::Sequential,
        "uniform" => KeyDistribution::Uniform,
        d if d.starts_with("hot:") => {
            let mut it = d.split(':').skip(1);
            KeyDistribution::HotKey {
                hot_keys: it.next().and_then(|v| v.parse().ok()).unwrap_or(100),
                hot_permille: it.next().and_then(|v| v.parse().ok()).unwrap_or(900),
            }
        }
        d => KeyDistribution::Zipf {
            exponent: d
                .strip_prefix("zipf:")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1.1),
        },
    };
    // Names only label output; leaking them is fine.
    let leak = |s: &str| -> &'static str { Box::leak(s.to_string().into_boxed_str()) };
    Cell {
        name: leak(get("--cell").unwrap_or("cell")),
        pair: leak(get("--pair").unwrap_or("pair")),
        key_space: num("--keys", 16),
        puts: num("--puts", 512),
        value_len: num("--value-len", 4096) as usize,
        dist,
        overwrite_delta_permille: num("--overwrite-permille", 10) as u16,
        delta: get("--delta") != Some("off"),
        seed: num("--seed", 42),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Child mode: run one cell, print its JSON line, exit.
    if args.iter().any(|a| a == "--cell") {
        let cell = parse_cell(&args);
        let r = run_cell(&cell);
        println!("{}", cell_json(&cell, &r));
        assert!(
            r.outcome == RunOutcome::PredicateSatisfied,
            "cell {} did not drain: {:?}",
            cell.name,
            r.outcome
        );
        return;
    }

    let smoke = args.iter().any(|a| a == "--smoke");
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let cells = grid(smoke);
    let exe = std::env::current_exe().expect("own path");
    eprintln!(
        "delta sweep: {} cells ({} pairs), {} worker(s), child process per cell",
        cells.len(),
        cells.len() / 2,
        workers
    );

    let lines = simnet::sweep::map_indexed(cells.clone(), workers, move |_, cell| {
        // lint:allow(wall-clock)
        let t0 = Instant::now();
        let out = Command::new(&exe)
            .args(cell.to_args())
            .output()
            .expect("spawn cell child");
        let line = String::from_utf8_lossy(&out.stdout).trim().to_string();
        assert!(
            out.status.success() && line.starts_with('{'),
            "cell {} failed:\n{}\n{}",
            cell.name,
            line,
            String::from_utf8_lossy(&out.stderr)
        );
        eprintln!(
            "  {:<12} delta={:<5} {:>6} puts -> {:>8} delta B + {:>9} full B shipped, \
             {:>4} deltas, {:>3} fallbacks ({:.1}s)",
            cell.name,
            cell.delta,
            cell.puts,
            json_u64(&line, "delta_frag_bytes").unwrap_or(0),
            json_u64(&line, "full_frag_bytes").unwrap_or(0),
            json_u64(&line, "deltas_encoded").unwrap_or(0),
            json_u64(&line, "delta_fallbacks").unwrap_or(0),
            t0.elapsed().as_secs_f64(),
        );
        line
    });

    // Per-pair: the payload-reduction ratio, plus equivalence of the put
    // and AMR ledgers (delta coding must change the wire cost, never the
    // archive the pair converges to).
    let find = |name: &str| -> &str {
        cells
            .iter()
            .zip(&lines)
            .find(|(c, _)| c.name == name)
            .map(|(_, l)| l.as_str())
            .expect("cell line")
    };
    let payload = |line: &str| -> u64 {
        json_u64(line, "delta_frag_bytes").unwrap_or(0)
            + json_u64(line, "full_frag_bytes").unwrap_or(0)
    };
    let pairs: Vec<&'static str> = {
        let mut seen = Vec::new();
        for c in &cells {
            if !seen.contains(&c.pair) {
                seen.push(c.pair);
            }
        }
        seen
    };
    let mut pair_json = Vec::new();
    for pair in &pairs {
        let on = find(&format!("{pair}-on"));
        let off = find(&format!("{pair}-off"));
        for field in ["puts_succeeded", "amr_versions", "non_durable"] {
            assert_eq!(
                json_u64(on, field),
                json_u64(off, field),
                "pair {pair}: `{field}` diverged between delta on and off"
            );
        }
        assert_eq!(
            json_u64(on, "delta_unresolvable"),
            Some(0),
            "pair {pair}: unresolvable deltas on a clean network"
        );
        let ratio = payload(off) as f64 / payload(on) as f64;
        eprintln!(
            "pair {pair}: {} B full-stripe vs {} B delta -> {ratio:.2}x fewer put-path bytes",
            payload(off),
            payload(on)
        );
        // The headline gate: the hot pair must clear 3x.
        if *pair == "hot-seq" {
            assert!(
                ratio >= 3.0,
                "hot-seq pair: expected >= 3x payload reduction, got {ratio:.2}x"
            );
        }
        pair_json.push(format!(
            "{{ \"pair\": \"{pair}\", \"full_payload_bytes\": {}, \
             \"delta_payload_bytes\": {}, \"payload_reduction\": {} }}",
            payload(off),
            payload(on),
            jf(ratio)
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"delta\",\n  \"schema_version\": 1,\n  \"mode\": \"{}\",\n  {},\n  \
         \"cells\": [\n    {}\n  ],\n  \"pairs\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        bench::host_json(workers, "legacy"),
        lines.join(",\n    "),
        pair_json.join(",\n    "),
    );
    let path = repo_root().join("BENCH_delta.json");
    std::fs::write(&path, json).expect("write BENCH_delta.json");
    eprintln!("wrote {}", path.display());
}
