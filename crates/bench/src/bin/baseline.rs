//! Recorded perf baseline for the erasure and simulation-core hot paths.
//!
//! Runs the codec microbenchmarks at the paper's `[16, 19]` shape, engine
//! microbenchmarks (event-queue storm, timer churn, metrics recording,
//! parallel sweep), and two end-to-end convergence scenarios
//! (failure-free and failure-injected). Every benchmark is measured once
//! per implementation *generation* — the seed reference code
//! (`before-logexp`), the flat-table erasure rewrite (`after-flat-table`),
//! and the packed-kernel + timing-wheel + 4-lane-checksum simulation core
//! (`after-sim-core`) — and the numbers land in `BENCH_codec.json`,
//! `BENCH_engine.json`, and `BENCH_convergence.json` at the repo root, so
//! this and every future PR records comparable before/after throughput.
//! A fourth section pins the codec/engine at the latest generation and
//! sweeps the *protocol* hot-path modes (clone-per-send reference,
//! refcounted metadata over the dense version store, coalesced round
//! accounting), landing in `BENCH_protocol.json`.
//!
//! ```text
//! cargo run -p bench --release --bin baseline            # full iterations
//! cargo run -p bench --release --bin baseline -- --smoke # CI smoke mode
//! ```
//!
//! Unlike the Criterion benches (which exist for detailed interactive
//! exploration), this binary is a plain, fast, deterministic-workload
//! runner whose only nondeterministic input is the wall clock it measures
//! with.

use std::any::Any;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use erasure::{Checksum, Codec, CodecImpl};
use pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe::messages::Message;
use pahoehoe::protocol::ProtocolMode;
use simnet::{
    Actor, Context, FaultPlan, Metrics, NodeId, Payload, SimDuration, SimTime, Simulation, TimerId,
};

// Wall-clock use is the entire point of a benchmark runner; virtual time
// cannot measure real throughput.
// lint:allow(wall-clock)
use std::time::Instant;

/// Times a closure, returning its result and elapsed wall seconds.
fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    // lint:allow(wall-clock)
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Runs a closure `reps` times and returns the best (minimum) wall time.
///
/// The container this runs in shares a single core with other tenants, so
/// a lone timing pass can be off by 30%+; the minimum over a few passes is
/// the standard robust estimator for "how fast does this code actually
/// run", and it is applied identically to every generation.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| timed(&mut f).1)
        .fold(f64::INFINITY, f64::min)
}

/// One implementation generation: which codec path, checksum, and event
/// queue the whole stack runs on. Each PR's optimizations land as a new
/// generation so the recorded speedups attribute honestly.
struct Generation {
    label: &'static str,
    codec: CodecImpl,
    reference_checksum: bool,
    reference_queue: bool,
}

const GENERATIONS: [Generation; 3] = [
    Generation {
        label: "before-logexp",
        codec: CodecImpl::Reference,
        reference_checksum: true,
        reference_queue: true,
    },
    Generation {
        label: "after-flat-table",
        codec: CodecImpl::FlatTable,
        reference_checksum: true,
        reference_queue: true,
    },
    Generation {
        label: "after-sim-core",
        codec: CodecImpl::Packed,
        reference_checksum: false,
        reference_queue: false,
    },
];

impl Generation {
    fn apply(&self) {
        Codec::set_impl_mode(self.codec);
        Checksum::set_reference_mode(self.reference_checksum);
        simnet::set_reference_queue_mode(self.reference_queue);
    }
}

/// Restores the production configuration (the last generation).
fn reset_modes() {
    GENERATIONS[GENERATIONS.len() - 1].apply();
}

/// The paper's wide stripe shape for throughput reporting.
const SHAPE_K: usize = 16;
const SHAPE_N: usize = 19;

struct CodecNumbers {
    label: &'static str,
    encode_mb_s: f64,
    decode_mb_s: f64,
}

/// Encode/decode throughput (MB/s, MB = 10^6 bytes) at `[16, 19]`.
fn codec_bench(
    label: &'static str,
    mode: CodecImpl,
    value_len: usize,
    iters: usize,
    reps: usize,
) -> CodecNumbers {
    Codec::set_impl_mode(mode);
    let codec = Codec::new(SHAPE_K, SHAPE_N).unwrap();
    let value: Vec<u8> = (0..value_len).map(|i| (i * 31 % 251) as u8).collect();

    let mut frags = Vec::new();
    codec.encode_into(&value, &mut frags); // warm-up + decode input
    let encode_secs = best_of(reps, || {
        for _ in 0..iters {
            codec.encode_into(&value, &mut frags);
        }
    });

    // Decode from the last k fragments: 13 data + 3 parity, so the matrix
    // path (inversion + row application) is exercised, not just the
    // all-data memcpy fast path.
    let subset: Vec<erasure::Fragment> = frags[SHAPE_N - SHAPE_K..].to_vec();
    let mut out = Vec::new();
    codec.decode_into(&subset, value_len, &mut out).unwrap();
    assert_eq!(out, value, "decode sanity");
    let decode_secs = best_of(reps, || {
        for _ in 0..iters {
            codec.decode_into(&subset, value_len, &mut out).unwrap();
        }
    });

    reset_modes();
    let bytes = (iters * value_len) as f64;
    CodecNumbers {
        label,
        encode_mb_s: bytes / encode_secs / 1e6,
        decode_mb_s: bytes / decode_secs / 1e6,
    }
}

struct ConvergenceNumbers {
    label: &'static str,
    events: u64,
    wall_secs: f64,
    events_per_wall_sec: f64,
    sim_time_secs: f64,
    converged: bool,
    puts_succeeded: u64,
}

/// One end-to-end convergence run: the paper's cluster and workload shape
/// (scaled down in smoke mode), optionally under faults.
fn convergence_bench(
    generation: &Generation,
    puts: usize,
    value_len: usize,
    faulty: bool,
    reps: usize,
) -> ConvergenceNumbers {
    generation.apply();
    let build = || {
        let mut config = ClusterConfig::paper_workload();
        config.workload_puts = puts;
        config.workload_value_len = value_len;
        if faulty {
            // One FS down for two minutes starting mid-workload, plus a
            // lossy, duplicating channel — convergence rounds and sibling
            // recovery do real decode/recover work.
            config.network.drop_rate = 0.02;
            config.network.duplicate_rate = 0.01;
            let layout = config.layout;
            let mut faults = FaultPlan::none();
            faults.add_node_outage(
                layout.fs(0, 0),
                SimTime::ZERO + SimDuration::from_secs(5),
                SimDuration::from_secs(120),
            );
            Cluster::build_with_faults(config, 42, faults)
        } else {
            Cluster::build(config, 42)
        }
    };

    // The simulation is deterministic, so every rep replays the identical
    // event sequence; only the wall clock varies. Keep the fastest rep.
    let mut wall_secs = f64::INFINITY;
    let mut measured = None;
    for _ in 0..reps {
        let mut cluster = build();
        let (report, secs) = timed(|| cluster.run_to_convergence());
        wall_secs = wall_secs.min(secs);
        measured = Some((cluster.sim().events_processed(), report));
    }
    reset_modes();
    let (events, report) = measured.expect("reps >= 1");
    ConvergenceNumbers {
        label: generation.label,
        events,
        wall_secs,
        events_per_wall_sec: events as f64 / wall_secs,
        sim_time_secs: report.sim_time.as_secs_f64(),
        converged: report.outcome == simnet::RunOutcome::PredicateSatisfied,
        puts_succeeded: report.puts_succeeded,
    }
}

// ---------------------------------------------------------------------------
// Protocol hot path (BENCH_protocol.json).
// ---------------------------------------------------------------------------

/// The convergence-round message kinds batching coalesces.
const CONV_KINDS: [&str; 3] = ["KLSConvergeReq", "FSConvergeReq", "AMRIndication"];

struct ProtocolNumbers {
    label: &'static str,
    events: u64,
    wall_secs: f64,
    events_per_wall_sec: f64,
    converged: bool,
    /// Logical convergence entries sent (mode-independent).
    conv_entries: u64,
    /// Physical convergence messages sent (drops under batching).
    conv_msgs: u64,
    /// Convergence bytes on the wire (drops under batching: one shared
    /// header per coalesced batch).
    conv_bytes: u64,
    total_bytes: u64,
}

/// One end-to-end run at the latest codec/engine generation with the
/// protocol layer pinned to `mode`: the "before" entry deep-copies
/// metadata on every share and walks the reference version maps, the
/// "after" entries share by refcount over the dense store, with and
/// without coalesced round accounting.
fn protocol_bench(
    label: &'static str,
    mode: ProtocolMode,
    puts: usize,
    value_len: usize,
    faulty: bool,
    reps: usize,
) -> ProtocolNumbers {
    reset_modes();
    let build = || {
        let mut config = ClusterConfig::paper_workload();
        config.protocol = mode;
        config.workload_puts = puts;
        config.workload_value_len = value_len;
        if faulty {
            // Same fault plan as the convergence bench: a two-minute FS
            // outage plus a lossy, duplicating channel, so real rounds run.
            config.network.drop_rate = 0.02;
            config.network.duplicate_rate = 0.01;
            let layout = config.layout;
            let mut faults = FaultPlan::none();
            faults.add_node_outage(
                layout.fs(0, 0),
                SimTime::ZERO + SimDuration::from_secs(5),
                SimDuration::from_secs(120),
            );
            Cluster::build_with_faults(config, 42, faults)
        } else {
            Cluster::build(config, 42)
        }
    };

    let mut wall_secs = f64::INFINITY;
    let mut measured = None;
    for _ in 0..reps {
        let mut cluster = build();
        let (report, secs) = timed(|| cluster.run_to_convergence());
        wall_secs = wall_secs.min(secs);
        let m = cluster.sim().metrics();
        let (conv_entries, conv_msgs, conv_bytes) =
            CONV_KINDS
                .iter()
                .fold((0u64, 0u64, 0u64), |(e, c, b), kind| {
                    let s = m.kind(kind);
                    (e + m.entries_for(kind), c + s.count, b + s.bytes)
                });
        measured = Some((
            cluster.sim().events_processed(),
            report,
            conv_entries,
            conv_msgs,
            conv_bytes,
            m.total_bytes(),
        ));
    }
    let (events, report, conv_entries, conv_msgs, conv_bytes, total_bytes) =
        measured.expect("reps >= 1");
    ProtocolNumbers {
        label,
        events,
        wall_secs,
        events_per_wall_sec: events as f64 / wall_secs,
        converged: report.outcome == simnet::RunOutcome::PredicateSatisfied,
        conv_entries,
        conv_msgs,
        conv_bytes,
        total_bytes,
    }
}

// ---------------------------------------------------------------------------
// Engine microbenchmarks (BENCH_engine.json).
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Tok(u32);

impl Payload for Tok {
    const KINDS: &'static [&'static str] = &["Tok"];
    fn kind_id(&self) -> usize {
        0
    }
    fn wire_size(&self) -> usize {
        64
    }
}

/// Forwards a token around a ring until its hop budget runs out.
struct Fwd {
    next: NodeId,
}

impl Actor<Tok> for Fwd {
    fn on_message(&mut self, ctx: &mut Context<'_, Tok>, _from: NodeId, msg: Tok) {
        if msg.0 > 0 {
            ctx.send(self.next, Tok(msg.0 - 1));
        }
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Tok>, tag: u64) {
        ctx.send(self.next, Tok(tag as u32));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// On every firing: schedule four timers, cancel three — the
/// generation-stamp retirement path — and let the fourth keep the chain
/// alive until the budget is spent.
struct Churner {
    budget: Rc<Cell<u64>>,
}

impl Actor<Tok> for Churner {
    fn on_message(&mut self, _ctx: &mut Context<'_, Tok>, _from: NodeId, _msg: Tok) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, Tok>, _tag: u64) {
        let b = self.budget.get();
        if b == 0 {
            return;
        }
        self.budget.set(b - 1);
        let ids: Vec<TimerId> = (0..4)
            .map(|i| ctx.schedule_timer(SimDuration::from_millis(5 + 7 * i), 0))
            .collect();
        for id in &ids[1..] {
            ctx.cancel_timer(*id);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct QueueNumbers {
    label: &'static str,
    units: u64,
    units_per_sec: f64,
}

/// Raw event-dispatch throughput: `chains` concurrent token chains
/// around an 8-node ring, every event a wheel (or heap) push + pop. The
/// chain count is the steady-state queue depth: at 64 the heap's whole
/// array sits in L1, at a few thousand it pays log-depth sifts over
/// cache-cold levels while the wheel's costs stay flat.
fn queue_storm_bench(reference_queue: bool, chains: u64, hops: u32, reps: usize) -> QueueNumbers {
    let run = || {
        let mut sim: Simulation<Tok> = Simulation::new(1);
        sim.use_reference_queue(reference_queue);
        for i in 0..8u32 {
            sim.add_actor(Fwd {
                next: NodeId::new((i + 1) % 8),
            });
        }
        for c in 0..chains {
            sim.schedule_timer(
                NodeId::new((c % 8) as u32),
                SimDuration::from_micros(500 + 13 * c),
                u64::from(hops),
            );
        }
        sim.run_until_quiescent();
        sim.events_processed()
    };
    let events = run();
    let secs = best_of(reps, || {
        black_box(run());
    });
    QueueNumbers {
        label: if reference_queue {
            "reference-heap"
        } else {
            "timing-wheel"
        },
        units: events,
        units_per_sec: events as f64 / secs,
    }
}

/// Timer schedule/cancel/fire churn: every firing performs four schedules
/// and three cancels, so cancelled-timer retirement dominates.
fn timer_churn_bench(reference_queue: bool, firings: u64, reps: usize) -> QueueNumbers {
    let run = || {
        let mut sim: Simulation<Tok> = Simulation::new(2);
        sim.use_reference_queue(reference_queue);
        let budget = Rc::new(Cell::new(firings));
        sim.add_actor(Churner {
            budget: budget.clone(),
        });
        sim.schedule_timer(NodeId::new(0), SimDuration::from_millis(1), 0);
        sim.run_until_quiescent();
        sim.events_processed()
    };
    let events = run();
    // Eight timer operations per firing: 4 schedules, 3 cancels, 1 fire.
    let ops = firings * 8;
    let secs = best_of(reps, || {
        black_box(run());
    });
    QueueNumbers {
        label: if reference_queue {
            "reference-heap"
        } else {
            "timing-wheel"
        },
        units: ops.max(events),
        units_per_sec: ops as f64 / secs,
    }
}

/// Per-send metrics recording: the dense kind-registry array against the
/// seed's BTreeMap-by-label scheme (reconstructed inline as the baseline).
fn metrics_bench(dense: bool, ops: u64, reps: usize) -> QueueNumbers {
    let registry = <Message as Payload>::KINDS;
    let secs = if dense {
        let mut m = Metrics::with_registry(registry);
        best_of(reps, || {
            for i in 0..ops {
                m.record_send((i % registry.len() as u64) as usize, 120);
            }
            black_box(m.total_count());
        })
    } else {
        let mut map: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        best_of(reps, || {
            for i in 0..ops {
                let e = map
                    .entry(registry[(i % registry.len() as u64) as usize])
                    .or_insert((0, 0));
                e.0 += 1;
                e.1 += 120;
            }
            black_box(map.len());
        })
    };
    QueueNumbers {
        label: if dense { "dense-array" } else { "btreemap" },
        units: ops,
        units_per_sec: ops as f64 / secs,
    }
}

struct SweepNumbers {
    scenarios: usize,
    workers: usize,
    sequential_secs: f64,
    parallel_secs: f64,
    identical: bool,
}

/// The deterministic parallel sweep harness over a batch of small
/// convergence runs: sequential vs. two workers, asserting identical
/// results (the whole point of the harness).
fn sweep_bench(scenarios: usize, reps: usize) -> SweepNumbers {
    let run = |workers: usize| {
        simnet::sweep::map_indexed((0..scenarios as u64).collect(), workers, |_, seed| {
            let mut cfg = ClusterConfig::paper_default();
            cfg.workload_puts = 2;
            cfg.workload_value_len = 4096;
            let mut cluster = Cluster::build(cfg, seed);
            let report = cluster.run_to_convergence();
            (
                cluster.sim().events_processed(),
                report.sim_time.as_micros(),
                report.puts_succeeded,
            )
        })
    };
    let seq = run(1);
    let par = run(2);
    let identical = seq == par;
    let sequential_secs = best_of(reps, || {
        black_box(run(1));
    });
    let parallel_secs = best_of(reps, || {
        black_box(run(2));
    });
    SweepNumbers {
        scenarios,
        workers: 2,
        sequential_secs,
        parallel_secs,
        identical,
    }
}

// ---------------------------------------------------------------------------
// Hand-rolled JSON (the workspace deliberately has no serde).
// ---------------------------------------------------------------------------

fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn codec_json(mode: &str, value_len: usize, iters: usize, entries: &[CodecNumbers]) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "    {{ \"impl\": \"{}\", \"encode_mb_s\": {}, \"decode_mb_s\": {} }}",
                e.label,
                jf(e.encode_mb_s),
                jf(e.decode_mb_s)
            )
        })
        .collect();
    let last = entries.last().expect("at least one entry");
    let speedup = |f: fn(&CodecNumbers) -> f64| jf(f(last) / f(&entries[0]));
    format!(
        "{{\n  \"bench\": \"codec\",\n  \"schema_version\": 1,\n  \"mode\": \"{mode}\",\n  {},\n  \"shape\": {{ \"k\": {SHAPE_K}, \"n\": {SHAPE_N} }},\n  \"value_len\": {value_len},\n  \"iters\": {iters},\n  \"entries\": [\n{}\n  ],\n  \"encode_speedup\": {},\n  \"decode_speedup\": {}\n}}\n",
        bench::host_json(1, "none"),
        rows.join(",\n"),
        speedup(|e| e.encode_mb_s),
        speedup(|e| e.decode_mb_s),
    )
}

fn convergence_scenario_json(name: &str, entries: &[ConvergenceNumbers]) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "        {{ \"impl\": \"{}\", \"events\": {}, \"wall_secs\": {}, \
                 \"events_per_wall_sec\": {}, \"sim_time_secs\": {}, \"converged\": {}, \
                 \"puts_succeeded\": {} }}",
                e.label,
                e.events,
                jf(e.wall_secs),
                jf(e.events_per_wall_sec),
                jf(e.sim_time_secs),
                e.converged,
                e.puts_succeeded
            )
        })
        .collect();
    let last = entries.last().expect("at least one entry");
    format!(
        "    {{\n      \"name\": \"{name}\",\n      \"entries\": [\n{}\n      ],\n      \"speedup_vs_before\": {},\n      \"speedup_vs_flat_table\": {}\n    }}",
        rows.join(",\n"),
        jf(last.events_per_wall_sec / entries[0].events_per_wall_sec),
        jf(last.events_per_wall_sec / entries[1].events_per_wall_sec),
    )
}

fn convergence_json(mode: &str, puts: usize, value_len: usize, scenarios: &[String]) -> String {
    format!(
        "{{\n  \"bench\": \"convergence\",\n  \"schema_version\": 1,\n  \"mode\": \"{mode}\",\n  {},\n  \"seed\": 42,\n  \"workload\": {{ \"puts\": {puts}, \"value_len\": {value_len} }},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        bench::host_json(1, "legacy"),
        scenarios.join(",\n")
    )
}

fn protocol_scenario_json(name: &str, entries: &[ProtocolNumbers], pr3_baseline: f64) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "        {{ \"impl\": \"{}\", \"events\": {}, \"wall_secs\": {}, \
                 \"events_per_wall_sec\": {}, \"converged\": {}, \
                 \"convergence_entries\": {}, \"convergence_msgs\": {}, \
                 \"convergence_bytes\": {}, \"total_bytes\": {} }}",
                e.label,
                e.events,
                jf(e.wall_secs),
                jf(e.events_per_wall_sec),
                e.converged,
                e.conv_entries,
                e.conv_msgs,
                e.conv_bytes,
                e.total_bytes,
            )
        })
        .collect();
    let before = &entries[0];
    let last = entries.last().expect("at least one entry");
    format!(
        "    {{\n      \"name\": \"{name}\",\n      \"entries\": [\n{}\n      ],\n      \"speedup_vs_before\": {},\n      \"speedup_vs_pr3_baseline\": {},\n      \"convergence_bytes_saved\": {}\n    }}",
        rows.join(",\n"),
        jf(last.events_per_wall_sec / before.events_per_wall_sec),
        jf(last.events_per_wall_sec / pr3_baseline),
        before.conv_bytes.saturating_sub(last.conv_bytes),
    )
}

fn protocol_json(
    mode: &str,
    puts: usize,
    value_len: usize,
    pr3_events_per_sec: f64,
    scenarios: &[String],
) -> String {
    format!(
        "{{\n  \"bench\": \"protocol\",\n  \"schema_version\": 1,\n  \"mode\": \"{mode}\",\n  {},\n  \"seed\": 42,\n  \"workload\": {{ \"puts\": {puts}, \"value_len\": {value_len} }},\n  \"pr3_baseline_events_per_sec\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        bench::host_json(1, "legacy"),
        jf(pr3_events_per_sec),
        scenarios.join(",\n")
    )
}

fn pair_json(name: &str, unit: &str, entries: &[QueueNumbers]) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "      {{ \"impl\": \"{}\", \"{unit}\": {} }}",
                e.label,
                jf(e.units_per_sec)
            )
        })
        .collect();
    format!(
        "  \"{name}\": {{\n    \"units\": {},\n    \"entries\": [\n{}\n    ],\n    \"speedup\": {}\n  }}",
        entries[0].units,
        rows.join(",\n"),
        jf(entries[entries.len() - 1].units_per_sec / entries[0].units_per_sec),
    )
}

fn engine_json(mode: &str, sections: &[String], sweep: &SweepNumbers) -> String {
    format!(
        "{{\n  \"bench\": \"engine\",\n  \"schema_version\": 1,\n  \"mode\": \"{mode}\",\n  {},\n{},\n  \"sweep\": {{ \"scenarios\": {}, \"workers\": {}, \"sequential_secs\": {}, \"parallel_secs\": {}, \"identical_results\": {} }}\n}}\n",
        bench::host_json(sweep.workers, "legacy"),
        sections.join(",\n"),
        sweep.scenarios,
        sweep.workers,
        jf(sweep.sequential_secs),
        jf(sweep.parallel_secs),
        sweep.identical,
    )
}

/// The workspace root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (mode, value_len, iters, puts, reps) = if smoke {
        ("smoke", 256 * 1024, 4, 10, 2)
    } else {
        ("full", 1024 * 1024, 40, 100, 5)
    };
    let workload_value_len = 100 * 1024;

    eprintln!(
        "codec microbench at [{SHAPE_K}, {SHAPE_N}], {value_len}-byte values, \
         {iters} iters, best of {reps}"
    );
    let codec_entries = [
        codec_bench(
            "before-logexp",
            CodecImpl::Reference,
            value_len,
            iters,
            reps,
        ),
        codec_bench(
            "after-flat-table",
            CodecImpl::FlatTable,
            value_len,
            iters,
            reps,
        ),
        codec_bench("after-packed", CodecImpl::Packed, value_len, iters, reps),
    ];
    for e in &codec_entries {
        eprintln!(
            "  {:>16}: encode {:>9.1} MB/s, decode {:>9.1} MB/s",
            e.label, e.encode_mb_s, e.decode_mb_s
        );
    }
    eprintln!(
        "  encode speedup: {:.2}x, decode speedup: {:.2}x",
        codec_entries[2].encode_mb_s / codec_entries[0].encode_mb_s,
        codec_entries[2].decode_mb_s / codec_entries[0].decode_mb_s
    );

    let (storm_hops, dense_chains, churn_firings, metric_ops, sweep_scenarios) = if smoke {
        (400u32, 2_048u64, 4_000u64, 1_000_000u64, 4usize)
    } else {
        (4_000, 4_096, 40_000, 10_000_000, 8)
    };
    eprintln!("engine microbench (queue storm, timer churn, metrics, sweep)");
    let storm = [
        queue_storm_bench(true, 64, storm_hops, reps),
        queue_storm_bench(false, 64, storm_hops, reps),
    ];
    let storm_dense = [
        queue_storm_bench(true, dense_chains, storm_hops / 8, reps),
        queue_storm_bench(false, dense_chains, storm_hops / 8, reps),
    ];
    let churn = [
        timer_churn_bench(true, churn_firings, reps),
        timer_churn_bench(false, churn_firings, reps),
    ];
    let metrics = [
        metrics_bench(false, metric_ops, reps),
        metrics_bench(true, metric_ops, reps),
    ];
    for (name, pair) in [
        ("storm x64", &storm),
        ("storm dense", &storm_dense),
        ("timer churn", &churn),
        ("metrics", &metrics),
    ] {
        for e in pair {
            eprintln!(
                "  {name:>12} {:>16}: {:>12.0} units/s",
                e.label, e.units_per_sec
            );
        }
        eprintln!(
            "  {name:>12} speedup: {:.2}x",
            pair[1].units_per_sec / pair[0].units_per_sec
        );
    }
    let sweep = sweep_bench(sweep_scenarios, reps);
    assert!(
        sweep.identical,
        "parallel sweep must match sequential results exactly"
    );
    eprintln!(
        "  {:>12} {} scenarios: sequential {:.2}s, {} workers {:.2}s (identical: {})",
        "sweep",
        sweep.scenarios,
        sweep.sequential_secs,
        sweep.workers,
        sweep.parallel_secs,
        sweep.identical
    );

    eprintln!("convergence scenarios ({puts} puts x {workload_value_len} bytes, seed 42)");
    let mut scenario_blocks = Vec::new();
    for (name, faulty) in [("failure-free", false), ("failure-injected", true)] {
        let entries: Vec<ConvergenceNumbers> = GENERATIONS
            .iter()
            .map(|g| convergence_bench(g, puts, workload_value_len, faulty, reps))
            .collect();
        for e in &entries {
            eprintln!(
                "  {name:>16} {:>16}: {:>8} events in {:>7.2}s = {:>9.0} events/s \
                 (sim {:.1}s, converged: {})",
                e.label, e.events, e.wall_secs, e.events_per_wall_sec, e.sim_time_secs, e.converged
            );
            assert!(
                e.converged,
                "baseline scenario {name} must converge (label {})",
                e.label
            );
        }
        scenario_blocks.push(convergence_scenario_json(name, &entries));
    }

    // PR 3's recorded failure-free throughput (BENCH_convergence.json's
    // `after-sim-core` entry) — the floor the protocol rewrite must beat.
    let pr3_events_per_sec = 329_340.0;
    // Same workload as the convergence bench so the numbers compare
    // directly against PR 3's recording. The modes differ by tens of
    // nanoseconds per event, so on a shared core the best-of minimum
    // needs many timing passes to shake off scheduler noise.
    let (protocol_puts, protocol_reps) = if smoke {
        (puts, reps)
    } else {
        (puts, 6 * reps)
    };
    eprintln!("protocol hot path ({protocol_puts} puts x {workload_value_len} bytes, seed 42)");
    let protocol_modes: [(&'static str, ProtocolMode); 3] = [
        ("before-clone-meta", ProtocolMode::reference()),
        ("after-arc-meta", ProtocolMode::optimized()),
        ("after-batched-rounds", ProtocolMode::batched()),
    ];
    let mut protocol_blocks = Vec::new();
    for (name, faulty) in [("failure-free", false), ("failure-injected", true)] {
        let entries: Vec<ProtocolNumbers> = protocol_modes
            .iter()
            .map(|&(label, mode)| {
                protocol_bench(
                    label,
                    mode,
                    protocol_puts,
                    workload_value_len,
                    faulty,
                    protocol_reps,
                )
            })
            .collect();
        for e in &entries {
            eprintln!(
                "  {name:>16} {:>20}: {:>8} events in {:>6.2}s = {:>9.0} events/s \
                 (conv: {} entries / {} msgs / {} B, converged: {})",
                e.label,
                e.events,
                e.wall_secs,
                e.events_per_wall_sec,
                e.conv_entries,
                e.conv_msgs,
                e.conv_bytes,
                e.converged
            );
            assert!(
                e.converged,
                "protocol scenario {name} must converge (label {})",
                e.label
            );
        }
        // Logical entries are mode-independent; batching only strips
        // headers off the physical messages.
        assert!(
            entries
                .iter()
                .all(|e| e.conv_entries == entries[0].conv_entries),
            "protocol modes must send identical logical convergence entries"
        );
        assert!(
            entries.last().expect("entries").conv_bytes <= entries[0].conv_bytes,
            "batched rounds must not increase convergence bytes"
        );
        eprintln!(
            "  {name:>16} speedup vs before: {:.2}x, conv bytes saved: {}",
            entries.last().expect("entries").events_per_wall_sec / entries[0].events_per_wall_sec,
            entries[0].conv_bytes - entries.last().expect("entries").conv_bytes,
        );
        protocol_blocks.push(protocol_scenario_json(name, &entries, pr3_events_per_sec));
    }

    let root = repo_root();
    let codec_path = root.join("BENCH_codec.json");
    let engine_path = root.join("BENCH_engine.json");
    let conv_path = root.join("BENCH_convergence.json");
    std::fs::write(
        &codec_path,
        codec_json(mode, value_len, iters, &codec_entries),
    )
    .expect("write BENCH_codec.json");
    let sections = vec![
        pair_json("queue_storm_sparse", "events_per_wall_sec", &storm),
        pair_json("queue_storm_dense", "events_per_wall_sec", &storm_dense),
        pair_json("timer_churn", "timer_ops_per_wall_sec", &churn),
        pair_json("metrics", "records_per_wall_sec", &metrics),
    ];
    std::fs::write(&engine_path, engine_json(mode, &sections, &sweep))
        .expect("write BENCH_engine.json");
    std::fs::write(
        &conv_path,
        convergence_json(mode, puts, workload_value_len, &scenario_blocks),
    )
    .expect("write BENCH_convergence.json");
    let protocol_path = root.join("BENCH_protocol.json");
    std::fs::write(
        &protocol_path,
        protocol_json(
            mode,
            protocol_puts,
            workload_value_len,
            pr3_events_per_sec,
            &protocol_blocks,
        ),
    )
    .expect("write BENCH_protocol.json");
    eprintln!("wrote {}", codec_path.display());
    eprintln!("wrote {}", engine_path.display());
    eprintln!("wrote {}", conv_path.display());
    eprintln!("wrote {}", protocol_path.display());
}
