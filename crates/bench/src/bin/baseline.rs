//! Recorded perf baseline for the erasure hot path.
//!
//! Runs the codec microbenchmarks at the paper's `[16, 19]` shape plus two
//! end-to-end convergence scenarios (failure-free and failure-injected),
//! each once with the codec's reference implementation
//! ([`Codec::set_reference_mode`]) — the "before" — and once with the
//! flat-table fast path — the "after" — and writes the numbers to
//! `BENCH_codec.json` and `BENCH_convergence.json` at the repo root, so
//! this and every future PR records comparable before/after throughput.
//!
//! ```text
//! cargo run -p bench --release --bin baseline            # full iterations
//! cargo run -p bench --release --bin baseline -- --smoke # CI smoke mode
//! ```
//!
//! Unlike the Criterion benches (which exist for detailed interactive
//! exploration), this binary is a plain, fast, deterministic-workload
//! runner whose only nondeterministic input is the wall clock it measures
//! with.

use std::path::{Path, PathBuf};

use erasure::Codec;
use pahoehoe::cluster::{Cluster, ClusterConfig};
use simnet::FaultPlan;
use simnet::{SimDuration, SimTime};

// Wall-clock use is the entire point of a benchmark runner; virtual time
// cannot measure real throughput.
// lint:allow(wall-clock)
use std::time::Instant;

/// Times a closure, returning its result and elapsed wall seconds.
fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    // lint:allow(wall-clock)
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// Runs a closure `reps` times and returns the best (minimum) wall time.
///
/// The container this runs in shares a single core with other tenants, so
/// a lone timing pass can be off by 30%+; the minimum over a few passes is
/// the standard robust estimator for "how fast does this code actually
/// run", and it is applied identically to the before and after variants.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| timed(&mut f).1)
        .fold(f64::INFINITY, f64::min)
}

/// The paper's wide stripe shape for throughput reporting.
const SHAPE_K: usize = 16;
const SHAPE_N: usize = 19;

struct CodecNumbers {
    label: &'static str,
    encode_mb_s: f64,
    decode_mb_s: f64,
}

/// Encode/decode throughput (MB/s, MB = 10^6 bytes) at `[16, 19]`.
fn codec_bench(reference: bool, value_len: usize, iters: usize, reps: usize) -> CodecNumbers {
    Codec::set_reference_mode(reference);
    let codec = Codec::new(SHAPE_K, SHAPE_N).unwrap();
    let value: Vec<u8> = (0..value_len).map(|i| (i * 31 % 251) as u8).collect();

    let mut frags = Vec::new();
    codec.encode_into(&value, &mut frags); // warm-up + decode input
    let encode_secs = best_of(reps, || {
        for _ in 0..iters {
            codec.encode_into(&value, &mut frags);
        }
    });

    // Decode from the last k fragments: 13 data + 3 parity, so the matrix
    // path (inversion + row application) is exercised, not just the
    // all-data memcpy fast path.
    let subset: Vec<erasure::Fragment> = frags[SHAPE_N - SHAPE_K..].to_vec();
    let mut out = Vec::new();
    codec.decode_into(&subset, value_len, &mut out).unwrap();
    assert_eq!(out, value, "decode sanity");
    let decode_secs = best_of(reps, || {
        for _ in 0..iters {
            codec.decode_into(&subset, value_len, &mut out).unwrap();
        }
    });

    Codec::set_reference_mode(false);
    let bytes = (iters * value_len) as f64;
    CodecNumbers {
        label: if reference {
            "before-logexp"
        } else {
            "after-flat-table"
        },
        encode_mb_s: bytes / encode_secs / 1e6,
        decode_mb_s: bytes / decode_secs / 1e6,
    }
}

struct ConvergenceNumbers {
    label: &'static str,
    events: u64,
    wall_secs: f64,
    events_per_wall_sec: f64,
    sim_time_secs: f64,
    converged: bool,
    puts_succeeded: u64,
}

/// One end-to-end convergence run: the paper's cluster and workload shape
/// (scaled down in smoke mode), optionally under faults.
fn convergence_bench(
    reference: bool,
    puts: usize,
    value_len: usize,
    faulty: bool,
    reps: usize,
) -> ConvergenceNumbers {
    Codec::set_reference_mode(reference);
    let build = || {
        let mut config = ClusterConfig::paper_workload();
        config.workload_puts = puts;
        config.workload_value_len = value_len;
        if faulty {
            // One FS down for two minutes starting mid-workload, plus a
            // lossy, duplicating channel — convergence rounds and sibling
            // recovery do real decode/recover work.
            config.network.drop_rate = 0.02;
            config.network.duplicate_rate = 0.01;
            let layout = config.layout;
            let mut faults = FaultPlan::none();
            faults.add_node_outage(
                layout.fs(0, 0),
                SimTime::ZERO + SimDuration::from_secs(5),
                SimDuration::from_secs(120),
            );
            Cluster::build_with_faults(config, 42, faults)
        } else {
            Cluster::build(config, 42)
        }
    };

    // The simulation is deterministic, so every rep replays the identical
    // event sequence; only the wall clock varies. Keep the fastest rep.
    let mut wall_secs = f64::INFINITY;
    let mut measured = None;
    for _ in 0..reps {
        let mut cluster = build();
        let (report, secs) = timed(|| cluster.run_to_convergence());
        wall_secs = wall_secs.min(secs);
        measured = Some((cluster.sim().events_processed(), report));
    }
    Codec::set_reference_mode(false);
    let (events, report) = measured.expect("reps >= 1");
    ConvergenceNumbers {
        label: if reference {
            "before-logexp"
        } else {
            "after-flat-table"
        },
        events,
        wall_secs,
        events_per_wall_sec: events as f64 / wall_secs,
        sim_time_secs: report.sim_time.as_secs_f64(),
        converged: report.outcome == simnet::RunOutcome::PredicateSatisfied,
        puts_succeeded: report.puts_succeeded,
    }
}

// ---------------------------------------------------------------------------
// Hand-rolled JSON (the workspace deliberately has no serde).
// ---------------------------------------------------------------------------

fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn codec_json(mode: &str, value_len: usize, iters: usize, entries: &[CodecNumbers]) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "    {{ \"impl\": \"{}\", \"encode_mb_s\": {}, \"decode_mb_s\": {} }}",
                e.label,
                jf(e.encode_mb_s),
                jf(e.decode_mb_s)
            )
        })
        .collect();
    let speedup = |f: fn(&CodecNumbers) -> f64| jf(f(&entries[1]) / f(&entries[0]));
    format!(
        "{{\n  \"bench\": \"codec\",\n  \"mode\": \"{mode}\",\n  \"shape\": {{ \"k\": {SHAPE_K}, \"n\": {SHAPE_N} }},\n  \"value_len\": {value_len},\n  \"iters\": {iters},\n  \"entries\": [\n{}\n  ],\n  \"encode_speedup\": {},\n  \"decode_speedup\": {}\n}}\n",
        rows.join(",\n"),
        speedup(|e| e.encode_mb_s),
        speedup(|e| e.decode_mb_s),
    )
}

fn convergence_scenario_json(name: &str, entries: &[ConvergenceNumbers]) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            format!(
                "        {{ \"impl\": \"{}\", \"events\": {}, \"wall_secs\": {}, \
                 \"events_per_wall_sec\": {}, \"sim_time_secs\": {}, \"converged\": {}, \
                 \"puts_succeeded\": {} }}",
                e.label,
                e.events,
                jf(e.wall_secs),
                jf(e.events_per_wall_sec),
                jf(e.sim_time_secs),
                e.converged,
                e.puts_succeeded
            )
        })
        .collect();
    format!(
        "    {{\n      \"name\": \"{name}\",\n      \"entries\": [\n{}\n      ]\n    }}",
        rows.join(",\n")
    )
}

fn convergence_json(mode: &str, puts: usize, value_len: usize, scenarios: &[String]) -> String {
    format!(
        "{{\n  \"bench\": \"convergence\",\n  \"mode\": \"{mode}\",\n  \"seed\": 42,\n  \"workload\": {{ \"puts\": {puts}, \"value_len\": {value_len} }},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        scenarios.join(",\n")
    )
}

/// The workspace root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (mode, value_len, iters, puts, reps) = if smoke {
        ("smoke", 256 * 1024, 4, 10, 2)
    } else {
        ("full", 1024 * 1024, 40, 100, 5)
    };
    let workload_value_len = 100 * 1024;

    eprintln!(
        "codec microbench at [{SHAPE_K}, {SHAPE_N}], {value_len}-byte values, \
         {iters} iters, best of {reps}"
    );
    let codec_entries = [
        codec_bench(true, value_len, iters, reps),
        codec_bench(false, value_len, iters, reps),
    ];
    for e in &codec_entries {
        eprintln!(
            "  {:>16}: encode {:>9.1} MB/s, decode {:>9.1} MB/s",
            e.label, e.encode_mb_s, e.decode_mb_s
        );
    }
    eprintln!(
        "  encode speedup: {:.2}x, decode speedup: {:.2}x",
        codec_entries[1].encode_mb_s / codec_entries[0].encode_mb_s,
        codec_entries[1].decode_mb_s / codec_entries[0].decode_mb_s
    );

    eprintln!("convergence scenarios ({puts} puts x {workload_value_len} bytes, seed 42)");
    let mut scenario_blocks = Vec::new();
    for (name, faulty) in [("failure-free", false), ("failure-injected", true)] {
        let entries = [
            convergence_bench(true, puts, workload_value_len, faulty, reps),
            convergence_bench(false, puts, workload_value_len, faulty, reps),
        ];
        for e in &entries {
            eprintln!(
                "  {name:>16} {:>16}: {:>8} events in {:>7.2}s = {:>9.0} events/s \
                 (sim {:.1}s, converged: {})",
                e.label, e.events, e.wall_secs, e.events_per_wall_sec, e.sim_time_secs, e.converged
            );
            assert!(
                e.converged,
                "baseline scenario {name} must converge (label {})",
                e.label
            );
        }
        scenario_blocks.push(convergence_scenario_json(name, &entries));
    }

    let root = repo_root();
    let codec_path = root.join("BENCH_codec.json");
    let conv_path = root.join("BENCH_convergence.json");
    std::fs::write(
        &codec_path,
        codec_json(mode, value_len, iters, &codec_entries),
    )
    .expect("write BENCH_codec.json");
    std::fs::write(
        &conv_path,
        convergence_json(mode, puts, workload_value_len, &scenario_blocks),
    )
    .expect("write BENCH_convergence.json");
    eprintln!("wrote {}", codec_path.display());
    eprintln!("wrote {}", conv_path.display());
}
