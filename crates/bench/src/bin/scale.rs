//! Scale-tier sweep: `cargo run -p bench --release --bin scale`.
//!
//! Runs a `nodes x keys x skew` grid of streaming-workload scenarios and
//! records events/s, put-latency quantiles (P² streaming estimators — no
//! per-put sample vector) and memory per cell into `BENCH_scale.json` at
//! the repo root. The grid spans the paper-shaped cluster up to a
//! 100-node / million-key cell, and pairs update-heavy cells with
//! converged-version compaction on and off so the recorded steady-state
//! RSS demonstrates the sublinear memory claim (DESIGN.md §8.7).
//!
//! Every cell runs in its **own child process** (this binary re-execs
//! itself with `--cell`): Linux's `VmHWM` is monotone for the life of a
//! process, so a fresh child's high-water mark *is* the cell's peak RSS.
//! The parent distributes cells through `simnet::sweep::map_indexed`, the
//! same deterministic harness the explorer sweep uses.
//!
//! ```text
//! cargo run -p bench --release --bin scale            # full grid
//! cargo run -p bench --release --bin scale -- --smoke # CI subset
//! ```
//!
//! Cells terminate on a cheap predicate — every client drained its stream
//! AND every FS's pending (not-yet-settled-AMR) set is empty — instead of
//! `run_to_convergence`'s durable-set walk, which is O(versions) per
//! check and would dominate a million-key run.

use std::cell::{Cell as StdCell, RefCell};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::rc::Rc;

use pahoehoe::client::Client;
use pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout, EngineMode};
use pahoehoe::fs::Fs;
use pahoehoe::policy::Policy;
use pahoehoe::protocol::ProtocolMode;
use pahoehoe::workload::{KeyDistribution, StreamingWorkload};
use simnet::{NodeId, RunOutcome, SimDuration, SimTime};
use stats::{current_rss_bytes, peak_rss_bytes, StreamingQuantile};

// Wall-clock use is the entire point of a benchmark runner; virtual time
// cannot measure real throughput.
// lint:allow(wall-clock)
use std::time::Instant;

/// One grid cell: cluster shape, workload shape, the compaction switch
/// and the simulation engine driving it.
#[derive(Clone, Debug, PartialEq)]
struct Cell {
    name: &'static str,
    dcs: u8,
    kls_per_dc: usize,
    fs_per_dc: usize,
    key_space: u64,
    puts: u64,
    value_len: usize,
    dist: KeyDistribution,
    compact: bool,
    seed: u64,
    /// Per-put overwrite correlation (1/1000 of bytes rewritten at a
    /// fixed per-key offset); 0 = the standard key-derived blobs.
    overwrite_delta_permille: u16,
    /// Simulation engine: legacy single-queue, or DC-sharded at a worker
    /// count (the scale grid's workers axis).
    engine: EngineMode,
}

impl Cell {
    fn nodes(&self) -> usize {
        usize::from(self.dcs) * (self.kls_per_dc + self.fs_per_dc)
    }

    /// The cell's durability policy: the paper's `(4, 12)` on the paper's
    /// two-DC shape, otherwise `(4, 4*dcs)` spreading `k` fragments into
    /// every data center (one per FS).
    fn policy(&self) -> Policy {
        if self.dcs == 2 {
            Policy::paper_default()
        } else {
            Policy::new(4, 4 * self.dcs, self.dcs, 1)
        }
    }

    fn dist_label(&self) -> String {
        match self.dist {
            KeyDistribution::Sequential => "seq".to_string(),
            KeyDistribution::Uniform => "uniform".to_string(),
            KeyDistribution::Zipf { exponent } => format!("zipf:{exponent}"),
            KeyDistribution::HotKey {
                hot_keys,
                hot_permille,
            } => format!("hot:{hot_keys}:{hot_permille}"),
        }
    }

    /// Child-process argument encoding (inverse of [`parse_cell`]).
    fn to_args(&self) -> Vec<String> {
        vec![
            "--cell".into(),
            self.name.into(),
            "--dcs".into(),
            self.dcs.to_string(),
            "--kls".into(),
            self.kls_per_dc.to_string(),
            "--fs".into(),
            self.fs_per_dc.to_string(),
            "--keys".into(),
            self.key_space.to_string(),
            "--puts".into(),
            self.puts.to_string(),
            "--value-len".into(),
            self.value_len.to_string(),
            "--dist".into(),
            self.dist_label(),
            "--compact".into(),
            if self.compact { "on" } else { "off" }.into(),
            "--seed".into(),
            self.seed.to_string(),
            "--overwrite-permille".into(),
            self.overwrite_delta_permille.to_string(),
            "--engine".into(),
            self.engine.label().into(),
            "--engine-workers".into(),
            self.engine.workers().to_string(),
        ]
    }
}

/// Deterministic measurements of one cell run, reported by the child as a
/// single JSON line.
struct CellResult {
    outcome: RunOutcome,
    events: u64,
    sim_secs: f64,
    wall_secs: f64,
    puts_attempted: u64,
    puts_succeeded: u64,
    latency_ms: [f64; 3],
    /// FS-store entries collapsed to residual records (a superseded
    /// version compacts once per FS that held it).
    compacted_entries: u64,
    peak_rss_bytes: u64,
    steady_rss_bytes: u64,
}

/// Runs one cell in this process and measures it.
fn run_cell(cell: &Cell) -> CellResult {
    let mut cfg = ClusterConfig::paper_default();
    cfg.layout = ClusterLayout {
        dcs: usize::from(cell.dcs),
        kls_per_dc: cell.kls_per_dc,
        fs_per_dc: cell.fs_per_dc,
    };
    cfg.policy = cell.policy();
    cfg.protocol = if cell.compact {
        ProtocolMode::scale()
    } else {
        ProtocolMode::optimized()
    };
    cfg.workload_value_len = cell.value_len;
    cfg.streaming_workload = Some(StreamingWorkload {
        puts: cell.puts,
        key_space: cell.key_space,
        value_len: cell.value_len,
        policy: cfg.policy,
        seed: cell.seed,
        dist: cell.dist,
        overwrite_delta_permille: cell.overwrite_delta_permille,
    });
    // A million-put stream takes tens of virtual hours; the default
    // one-day ceiling is too close for comfort.
    cfg.max_sim_time = SimDuration::from_secs(14 * 24 * 3600);
    cfg.engine = cell.engine;
    let max_sim_time = cfg.max_sim_time;
    let mut cluster = Cluster::build(cfg, cell.seed);

    // Stream answered puts' latencies into three P² estimators: constant
    // memory regardless of put count. Under the sharded engine the
    // inspector fires at round barriers, not per event, so the estimators
    // sample the last-answered put of each window — the quantiles are
    // barrier-granular there.
    let client = cluster.client_ids()[0];
    let quantiles = Rc::new(RefCell::new((
        0u64,
        [
            StreamingQuantile::new(0.50),
            StreamingQuantile::new(0.95),
            StreamingQuantile::new(0.99),
        ],
    )));
    let hook = Rc::clone(&quantiles);
    cluster.set_view_inspector(move |sim| {
        let c: &Client = sim.actor(client);
        let mut q = hook.borrow_mut();
        if c.puts_answered() > q.0 {
            q.0 = c.puts_answered();
            let ms = c.last_put_latency().as_secs_f64() * 1e3;
            for est in &mut q.1 {
                est.observe(ms);
            }
        }
    });

    let fss: Vec<NodeId> = cluster.topology().all_fss().collect();
    let deadline = SimTime::ZERO + max_sim_time;
    let next_check = StdCell::new(0u64);
    let check_interval = SimDuration::from_millis(500).as_micros();
    // lint:allow(wall-clock)
    let t0 = Instant::now();
    let fss_pred = fss.clone();
    let outcome = cluster.run_until_view(move |sim| {
        if sim.now() >= deadline {
            return true;
        }
        if sim.now().as_micros() < next_check.get() {
            return false;
        }
        next_check.set(sim.now().as_micros() + check_interval);
        sim.actor::<Client>(client).is_done()
            && fss_pred
                .iter()
                .all(|&fs| sim.actor::<Fs>(fs).pending_versions().next().is_none())
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    let sim = cluster.view();
    let compacted_entries = fss
        .iter()
        .map(|&fs| sim.actor::<Fs>(fs).compacted_count() as u64)
        .sum();
    let c: &Client = sim.actor(client);
    let q = quantiles.borrow();
    let latency_ms = [0, 1, 2].map(|i| q.1[i].estimate().unwrap_or(f64::NAN));
    CellResult {
        outcome,
        events: sim.events_processed(),
        sim_secs: sim.now().as_secs_f64(),
        wall_secs,
        puts_attempted: c.puts_attempted(),
        puts_succeeded: c.puts_succeeded(),
        latency_ms,
        compacted_entries,
        peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
        steady_rss_bytes: current_rss_bytes().unwrap_or(0),
    }
}

fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// The child's single-line report, also the cell object embedded in
/// `BENCH_scale.json`.
fn cell_json(cell: &Cell, r: &CellResult) -> String {
    format!(
        "{{ \"name\": \"{}\", \"nodes\": {}, \"dcs\": {}, \"kls_per_dc\": {}, \
         \"fs_per_dc\": {}, \"key_space\": {}, \"puts\": {}, \"value_len\": {}, \
         \"dist\": \"{}\", \"compact\": {}, \"seed\": {}, \"engine\": \"{}\", \
         \"engine_workers\": {}, \"outcome\": \"{:?}\", \
         \"events\": {}, \"sim_secs\": {}, \"wall_secs\": {}, \
         \"events_per_wall_sec\": {}, \"puts_attempted\": {}, \"puts_succeeded\": {}, \
         \"put_latency_ms\": {{ \"p50\": {}, \"p95\": {}, \"p99\": {} }}, \
         \"compacted_entries\": {}, \"peak_rss_bytes\": {}, \"steady_rss_bytes\": {} }}",
        cell.name,
        cell.nodes(),
        cell.dcs,
        cell.kls_per_dc,
        cell.fs_per_dc,
        cell.key_space,
        cell.puts,
        cell.value_len,
        cell.dist_label(),
        cell.compact,
        cell.seed,
        cell.engine.label(),
        cell.engine.workers(),
        r.outcome,
        r.events,
        jf(r.sim_secs),
        jf(r.wall_secs),
        jf(r.events as f64 / r.wall_secs),
        r.puts_attempted,
        r.puts_succeeded,
        jf(r.latency_ms[0]),
        jf(r.latency_ms[1]),
        jf(r.latency_ms[2]),
        r.compacted_entries,
        r.peak_rss_bytes,
        r.steady_rss_bytes,
    )
}

/// The grid. Update-heavy cells (a small hot key space, so most versions
/// are superseded) come in compaction-on/off pairs at two put counts —
/// the four measurements behind the sublinear-RSS claim. The remaining
/// cells scale the node count, key space and skew axis up to the
/// 100-node / million-key corner; the big-zipf corner additionally runs
/// the workers axis (sharded at 1, 2 and 4 worker threads) so the
/// parallel engine's throughput is recorded alongside legacy.
fn grid(smoke: bool) -> Vec<Cell> {
    let update = |name, puts, compact| Cell {
        name,
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
        key_space: 1_000,
        puts,
        value_len: 4096,
        dist: KeyDistribution::Zipf { exponent: 1.1 },
        compact,
        seed: 42,
        overwrite_delta_permille: 0,
        engine: EngineMode::Legacy,
    };
    if smoke {
        return vec![
            update("update-small-on", 2_000, true),
            update("update-small-off", 2_000, false),
            update("update-large-on", 8_000, true),
            update("update-large-off", 8_000, false),
            Cell {
                name: "mid-uniform",
                dcs: 4,
                kls_per_dc: 2,
                fs_per_dc: 4,
                key_space: 50_000,
                puts: 20_000,
                value_len: 256,
                dist: KeyDistribution::Uniform,
                compact: true,
                seed: 42,
                overwrite_delta_permille: 0,
                engine: EngineMode::Legacy,
            },
            Cell {
                engine: EngineMode::Sharded { workers: 2 },
                ..update("update-small-par2", 2_000, true)
            },
        ];
    }
    let big_zipf = |name, engine| Cell {
        name,
        dcs: 5,
        kls_per_dc: 2,
        fs_per_dc: 18,
        key_space: 1_000_000,
        puts: 1_000_000,
        value_len: 64,
        dist: KeyDistribution::Zipf { exponent: 1.1 },
        compact: true,
        seed: 42,
        overwrite_delta_permille: 0,
        engine,
    };
    vec![
        update("update-small-on", 20_000, true),
        update("update-small-off", 20_000, false),
        update("update-large-on", 80_000, true),
        update("update-large-off", 80_000, false),
        Cell {
            name: "mid-uniform",
            dcs: 4,
            kls_per_dc: 2,
            fs_per_dc: 4,
            key_space: 100_000,
            puts: 100_000,
            value_len: 256,
            dist: KeyDistribution::Uniform,
            compact: true,
            seed: 42,
            overwrite_delta_permille: 0,
            engine: EngineMode::Legacy,
        },
        Cell {
            name: "mid-hot",
            dcs: 4,
            kls_per_dc: 2,
            fs_per_dc: 4,
            key_space: 100_000,
            puts: 100_000,
            value_len: 256,
            dist: KeyDistribution::HotKey {
                hot_keys: 100,
                hot_permille: 900,
            },
            compact: true,
            seed: 42,
            overwrite_delta_permille: 0,
            engine: EngineMode::Legacy,
        },
        big_zipf("big-zipf", EngineMode::Legacy),
        big_zipf("big-zipf-shard1", EngineMode::Sharded { workers: 1 }),
        big_zipf("big-zipf-par2", EngineMode::Sharded { workers: 2 }),
        big_zipf("big-zipf-par4", EngineMode::Sharded { workers: 4 }),
    ]
}

/// Extracts `"field": value` from a cell's JSON line (the hand-rolled
/// format above is regular enough for this).
fn json_u64(line: &str, field: &str) -> Option<u64> {
    let at = line.find(&format!("\"{field}\": "))?;
    let rest = &line[at + field.len() + 4..];
    let digits: String = rest
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The workspace root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn parse_cell(args: &[String]) -> Cell {
    let get = |flag: &str| -> Option<&str> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(String::as_str)
    };
    let num = |flag: &str, default: u64| -> u64 {
        get(flag).and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let dist = match get("--dist").unwrap_or("zipf:1.1") {
        "seq" => KeyDistribution::Sequential,
        "uniform" => KeyDistribution::Uniform,
        d if d.starts_with("hot:") => {
            let mut it = d.split(':').skip(1);
            KeyDistribution::HotKey {
                hot_keys: it.next().and_then(|v| v.parse().ok()).unwrap_or(100),
                hot_permille: it.next().and_then(|v| v.parse().ok()).unwrap_or(900),
            }
        }
        d => KeyDistribution::Zipf {
            exponent: d
                .strip_prefix("zipf:")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1.1),
        },
    };
    // The name only labels output; leaking it is fine.
    let name: &'static str =
        Box::leak(get("--cell").unwrap_or("cell").to_string().into_boxed_str());
    let engine = EngineMode::parse(
        get("--engine").unwrap_or("legacy"),
        num("--engine-workers", 1) as usize,
    )
    .unwrap_or(EngineMode::Legacy);
    Cell {
        name,
        dcs: num("--dcs", 2) as u8,
        kls_per_dc: num("--kls", 2) as usize,
        fs_per_dc: num("--fs", 3) as usize,
        key_space: num("--keys", 1_000),
        puts: num("--puts", 1_000),
        value_len: num("--value-len", 4096) as usize,
        dist,
        compact: get("--compact") != Some("off"),
        seed: num("--seed", 42),
        overwrite_delta_permille: num("--overwrite-permille", 0) as u16,
        engine,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Child mode: run one cell, print its JSON line, exit.
    if args.iter().any(|a| a == "--cell") {
        let cell = parse_cell(&args);
        let r = run_cell(&cell);
        println!("{}", cell_json(&cell, &r));
        assert!(
            r.outcome == RunOutcome::PredicateSatisfied,
            "cell {} did not drain: {:?}",
            cell.name,
            r.outcome
        );
        return;
    }

    let smoke = args.iter().any(|a| a == "--smoke");
    let workers = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let cells = grid(smoke);
    let exe = std::env::current_exe().expect("own path");
    eprintln!(
        "scale sweep: {} cells, {} worker(s), child process per cell",
        cells.len(),
        workers
    );

    let lines = simnet::sweep::map_indexed(cells.clone(), workers, move |_, cell| {
        // lint:allow(wall-clock)
        let t0 = Instant::now();
        let out = Command::new(&exe)
            .args(cell.to_args())
            .output()
            .expect("spawn cell child");
        let line = String::from_utf8_lossy(&out.stdout).trim().to_string();
        assert!(
            out.status.success() && line.starts_with('{'),
            "cell {} failed:\n{}\n{}",
            cell.name,
            line,
            String::from_utf8_lossy(&out.stderr)
        );
        eprintln!(
            "  {:<18} {:>3} nodes {:>9} keys {:>9} puts compact={:<5} -> \
             {:>9} events/s, peak {:>5} MB, steady {:>5} MB ({:.1}s)",
            cell.name,
            cell.nodes(),
            cell.key_space,
            cell.puts,
            cell.compact,
            json_u64(&line, "events").unwrap_or(0) as f64 / t0.elapsed().as_secs_f64(),
            json_u64(&line, "peak_rss_bytes").unwrap_or(0) / (1 << 20),
            json_u64(&line, "steady_rss_bytes").unwrap_or(0) / (1 << 20),
            t0.elapsed().as_secs_f64(),
        );
        line
    });

    // The update-heavy quadrant: steady-state RSS growth from the small
    // to the large put count, with and without compaction. Sublinearity
    // claim: with compaction on, 4x the puts costs well under 4x the
    // memory, while the uncompacted store grows linearly.
    let steady = |name: &str| -> Option<f64> {
        let line = cells
            .iter()
            .zip(&lines)
            .find(|(c, _)| c.name == name)
            .map(|(_, l)| l)?;
        json_u64(line, "steady_rss_bytes").map(|b| b as f64)
    };
    let growth = |on: bool| -> Option<f64> {
        let suffix = if on { "on" } else { "off" };
        Some(
            steady(&format!("update-large-{suffix}"))? / steady(&format!("update-small-{suffix}"))?,
        )
    };
    let saved = (|| Some(steady("update-large-off")? - steady("update-large-on")?))();
    if let (Some(on), Some(off)) = (growth(true), growth(false)) {
        eprintln!(
            "update-heavy steady RSS growth (4x puts): {on:.2}x compacted vs {off:.2}x full \
             (saved {} MB at the large count)",
            saved.unwrap_or(0.0) as u64 / (1 << 20)
        );
    }

    // Per-cell engine/worker knobs live in each cell object; the host
    // object records the physical CPU budget they all shared.
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"schema_version\": 1,\n  \"mode\": \"{}\",\n  {},\n  \
         \"cells\": [\n    {}\n  ],\n  \"update_heavy\": {{ \
         \"steady_rss_growth_compact_on\": {}, \"steady_rss_growth_compact_off\": {}, \
         \"steady_rss_saved_bytes\": {} }}\n}}\n",
        if smoke { "smoke" } else { "full" },
        bench::host_json(workers, "per-cell"),
        lines.join(",\n    "),
        jf(growth(true).unwrap_or(f64::NAN)),
        jf(growth(false).unwrap_or(f64::NAN)),
        jf(saved.unwrap_or(f64::NAN)),
    );
    let path = repo_root().join("BENCH_scale.json");
    std::fs::write(&path, json).expect("write BENCH_scale.json");
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every knob a cell carries — shape, workload, distribution,
    /// compaction, seed, overwrite correlation, and the engine axis —
    /// must survive the `to_args` → `parse_cell` round trip, or a
    /// re-exec'd child would silently benchmark a different cell than
    /// the parent scheduled.
    #[test]
    fn cell_args_round_trip_every_engine() {
        let base = Cell {
            name: "rt",
            dcs: 5,
            kls_per_dc: 2,
            fs_per_dc: 18,
            key_space: 1_000_000,
            puts: 250_000,
            value_len: 64,
            dist: KeyDistribution::Zipf { exponent: 1.1 },
            compact: true,
            seed: 42,
            overwrite_delta_permille: 250,
            engine: EngineMode::Legacy,
        };
        let engines = [
            EngineMode::Legacy,
            EngineMode::Sharded { workers: 1 },
            EngineMode::Sharded { workers: 2 },
            EngineMode::Sharded { workers: 4 },
        ];
        for engine in engines {
            let cell = Cell {
                engine,
                ..base.clone()
            };
            assert_eq!(parse_cell(&cell.to_args()), cell, "engine {engine:?}");
        }
    }

    /// The non-engine axes round-trip too, including every distribution
    /// variant and the compaction-off switch.
    #[test]
    fn cell_args_round_trip_distributions() {
        let dists = [
            KeyDistribution::Sequential,
            KeyDistribution::Uniform,
            KeyDistribution::Zipf { exponent: 0.9 },
            KeyDistribution::HotKey {
                hot_keys: 100,
                hot_permille: 900,
            },
        ];
        for dist in dists {
            let cell = Cell {
                name: "rt-dist",
                dcs: 2,
                kls_per_dc: 2,
                fs_per_dc: 3,
                key_space: 10_000,
                puts: 2_000,
                value_len: 4096,
                dist,
                compact: false,
                seed: 7,
                overwrite_delta_permille: 0,
                engine: EngineMode::Sharded { workers: 2 },
            };
            assert_eq!(parse_cell(&cell.to_args()), cell, "dist {dist:?}");
        }
    }

    /// The full and smoke grids only contain cells that re-exec
    /// faithfully — the property the child/parent protocol depends on.
    #[test]
    fn grid_cells_round_trip() {
        for smoke in [true, false] {
            for cell in grid(smoke) {
                assert_eq!(parse_cell(&cell.to_args()), cell, "cell {}", cell.name);
            }
        }
    }
}
