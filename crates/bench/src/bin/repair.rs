//! Repair-engine sweep: `cargo run -p bench --release --bin repair`.
//!
//! Measures the background repair engine's re-protection behavior after
//! a whole-server loss (both disks of one fragment server) and records
//! `BENCH_repair.json` at the repo root:
//!
//! * **time-to-re-protect** — sim seconds from the disk loss until every
//!   acked object is back at full redundancy;
//! * **repair bytes** — payload the repair jobs moved (donor fetches plus
//!   re-placed fragments);
//! * **degraded-read rate** — fraction of a flash-crowd read burst issued
//!   during the rebuild that had to decode from a below-full stripe.
//!
//! The grid crosses the two knobs the DESIGN.md repair section calls
//! out: **throttled vs unthrottled** draining (an 8 KiB/tick token
//! bucket vs no budget) and **rack-aware vs legacy** placement. All four
//! cells lose the same two disks and repair the same fragment volume;
//! throttling trades time-to-re-protect (and degraded reads) for a
//! bounded background byte rate, while the placement mode changes where
//! the rebuilt fragments land, not how much moves.
//!
//! ```text
//! cargo run -p bench --release --bin repair            # full grid
//! cargo run -p bench --release --bin repair -- --smoke # CI subset
//! ```

use std::path::{Path, PathBuf};

use pahoehoe::client::{Client, ClientOp};
use pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe::fs::Fs;
use pahoehoe::repair::RepairOptions;
use pahoehoe::types::{Key, ObjectVersion};
use simnet::{NodeId, RunOutcome, SimDuration};

// Wall-clock use is the entire point of a benchmark runner; virtual time
// cannot measure real throughput.
// lint:allow(wall-clock)
use std::time::Instant;

/// One cell: a placement mode crossed with a drain budget.
#[derive(Clone, Debug)]
struct Cell {
    name: &'static str,
    /// `Some(racks)` places rack-aware; `None` keeps the legacy layout.
    racks_per_dc: Option<usize>,
    /// Repair token-bucket refill per drain tick; 0 = unthrottled.
    bandwidth_per_tick: u64,
    puts: usize,
    value_len: usize,
    seed: u64,
}

/// Deterministic measurements of one cell run.
struct CellResult {
    reprotected: bool,
    time_to_reprotect_secs: f64,
    gets_issued: usize,
    degraded_read_rate: f64,
    wall_secs: f64,
    /// `(label, count)` for every repair-engine event counter.
    counters: Vec<(&'static str, u64)>,
}

/// The repair counters each cell records, in output order.
const COUNTERS: &[&str] = &[
    "repair_triggered",
    "repair_completed",
    "repair_abandoned",
    "repair_bytes",
    "repair_queue_depth",
    "repair_throttle_stalls",
    "degraded_reads",
];

/// Total live fragments for `ov` across every FS in the cluster.
fn cluster_live(cluster: &Cluster, fss: &[NodeId], ov: ObjectVersion) -> usize {
    fss.iter()
        .map(|&fs| cluster.fs(fs).entry(ov).map_or(0, |e| e.fragments.len()))
        .sum()
}

/// Runs one cell in this process and measures it.
fn run_cell(cell: &Cell) -> CellResult {
    let mut cfg = ClusterConfig::paper_default();
    cfg.racks_per_dc = cell.racks_per_dc;
    cfg.convergence.repair = Some(if cell.bandwidth_per_tick > 0 {
        RepairOptions::throttled(cell.bandwidth_per_tick)
    } else {
        RepairOptions::paper_default()
    });
    cfg.workload_puts = cell.puts;
    cfg.workload_value_len = cell.value_len;
    let full = usize::from(cfg.policy.n);
    let mut cluster = Cluster::build(cfg, cell.seed);

    // lint:allow(wall-clock)
    let t0 = Instant::now();
    let report = cluster.run_to_convergence();
    assert_eq!(
        report.outcome,
        RunOutcome::PredicateSatisfied,
        "cell {}: baseline workload did not converge",
        cell.name
    );
    let ovs: Vec<ObjectVersion> = cluster
        .client()
        .success_versions()
        .iter()
        .copied()
        .collect();
    assert_eq!(ovs.len(), cell.puts, "cell {}: puts lost", cell.name);
    let fss: Vec<NodeId> = cluster.topology().all_fss().collect();

    // The loss: both disks of one DC-0 server. Every object drops below
    // the 80% per-DC repair threshold, and no read path touches the
    // stripes, so the repair engine is the only way back.
    let victim = cluster.layout().fs(0, 0);
    let destroy_at = cluster.view().now();
    {
        let fs = cluster.actor_mut::<Fs>(victim);
        fs.destroy_disk(0, destroy_at);
        fs.destroy_disk(1, destroy_at);
    }

    // Flash-crowd burst: read every key while the rebuild is running.
    // Reads that decode before their stripe is whole count as degraded.
    let client_id = cluster.layout().client();
    for i in 0..cell.puts as u64 {
        cluster
            .actor_mut::<Client>(client_id)
            .enqueue(ClientOp::Get {
                key: Key::from_u64(i + 1),
            });
    }
    cluster.schedule_timer(client_id, SimDuration::ZERO, 1);

    // Poll at a fixed sim cadence until every stripe is whole again.
    let deadline = destroy_at + SimDuration::from_secs(3600);
    let mut reprotect_at = None;
    while cluster.view().now() < deadline {
        let step = cluster.view().now() + SimDuration::from_millis(500);
        cluster.run_until_time(step);
        if ovs
            .iter()
            .all(|&ov| cluster_live(&cluster, &fss, ov) == full)
        {
            reprotect_at = Some(cluster.view().now());
            break;
        }
    }
    // Let the read burst finish so the degraded-read rate is complete.
    let burst = cell.puts;
    cluster.run_until_view(move |sim| sim.actor::<Client>(client_id).gets_done().len() >= burst);
    let wall_secs = t0.elapsed().as_secs_f64();

    let metrics = cluster.view().metrics();
    let counters: Vec<(&'static str, u64)> = COUNTERS
        .iter()
        .map(|&label| (label, metrics.event(label)))
        .collect();
    let degraded = metrics.event("degraded_reads");
    for outcome in cluster.client().gets_done() {
        assert!(
            outcome.result.is_some(),
            "cell {}: a read failed during the rebuild",
            cell.name
        );
    }
    CellResult {
        reprotected: reprotect_at.is_some(),
        time_to_reprotect_secs: reprotect_at
            .map_or(f64::NAN, |t| t.as_secs_f64() - destroy_at.as_secs_f64()),
        gets_issued: burst,
        degraded_read_rate: degraded as f64 / burst as f64,
        wall_secs,
        counters,
    }
}

fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

/// The cell object embedded in `BENCH_repair.json`.
fn cell_json(cell: &Cell, r: &CellResult) -> String {
    let counters = r
        .counters
        .iter()
        .map(|(label, n)| format!("\"{label}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{ \"name\": \"{}\", \"rack_aware\": {}, \"bandwidth_per_tick\": {}, \
         \"puts\": {}, \"value_len\": {}, \"seed\": {}, \"reprotected\": {}, \
         \"time_to_reprotect_secs\": {}, \"gets_issued\": {}, \
         \"degraded_read_rate\": {}, \"wall_secs\": {}, \"counters\": {{ {} }} }}",
        cell.name,
        cell.racks_per_dc.is_some(),
        cell.bandwidth_per_tick,
        cell.puts,
        cell.value_len,
        cell.seed,
        r.reprotected,
        jf(r.time_to_reprotect_secs),
        r.gets_issued,
        jf(r.degraded_read_rate),
        jf(r.wall_secs),
        counters,
    )
}

/// The grid: {rack-aware, legacy} x {unthrottled, throttled}.
fn grid(smoke: bool) -> Vec<Cell> {
    let puts = if smoke { 8 } else { 48 };
    let cell = |name, racks_per_dc, bandwidth_per_tick| Cell {
        name,
        racks_per_dc,
        bandwidth_per_tick,
        puts,
        value_len: 8 * 1024,
        seed: 42,
    };
    // An 8 KiB/tick budget is below one job's ~12 KiB cost (k = 4 donor
    // fetches + 2 re-placed 2 KiB fragments), so the throttled cells must
    // stall and accumulate tokens across drain ticks.
    vec![
        cell("rack-unthrottled", Some(3), 0),
        cell("rack-throttled", Some(3), 8 * 1024),
        cell("legacy-unthrottled", None, 0),
        cell("legacy-throttled", None, 8 * 1024),
    ]
}

/// The workspace root: two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn counter(r: &CellResult, label: &str) -> u64 {
    r.counters
        .iter()
        .find(|(l, _)| *l == label)
        .map_or(0, |(_, n)| *n)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let cells = grid(smoke);
    eprintln!("repair sweep: {} cells, in-process", cells.len());

    let mut results = Vec::new();
    for cell in &cells {
        let r = run_cell(cell);
        eprintln!(
            "  {:<18} reprotect {:>8}s  {:>8} repair B  {:>3} stalls  degraded {:.2}  ({:.1}s)",
            cell.name,
            jf(r.time_to_reprotect_secs),
            counter(&r, "repair_bytes"),
            counter(&r, "repair_throttle_stalls"),
            r.degraded_read_rate,
            r.wall_secs,
        );
        assert!(r.reprotected, "cell {}: never re-protected", cell.name);
        assert_eq!(
            counter(&r, "repair_abandoned"),
            0,
            "cell {}: repair jobs abandoned on a clean network",
            cell.name
        );
        assert_eq!(
            counter(&r, "repair_triggered"),
            counter(&r, "repair_completed"),
            "cell {}: triggered jobs left incomplete",
            cell.name
        );
        if cell.bandwidth_per_tick > 0 {
            assert!(
                counter(&r, "repair_throttle_stalls") > 0,
                "cell {}: the token bucket never gated an admission",
                cell.name
            );
        }
        results.push(r);
    }

    // Per-placement throttled/unthrottled comparison: the budget must
    // cost time-to-re-protect, never repair volume.
    let find = |name: &str| -> &CellResult {
        cells
            .iter()
            .zip(&results)
            .find(|(c, _)| c.name == name)
            .map(|(_, r)| r)
            .expect("cell result")
    };
    let mut pair_json = Vec::new();
    for placement in ["rack", "legacy"] {
        let fast = find(&format!("{placement}-unthrottled"));
        let slow = find(&format!("{placement}-throttled"));
        assert!(
            slow.time_to_reprotect_secs >= fast.time_to_reprotect_secs,
            "{placement}: throttled repair finished before unthrottled"
        );
        assert_eq!(
            counter(fast, "repair_bytes"),
            counter(slow, "repair_bytes"),
            "{placement}: the throttle changed how many bytes moved"
        );
        pair_json.push(format!(
            "{{ \"placement\": \"{placement}\", \"unthrottled_secs\": {}, \
             \"throttled_secs\": {}, \"repair_bytes\": {} }}",
            jf(fast.time_to_reprotect_secs),
            jf(slow.time_to_reprotect_secs),
            counter(fast, "repair_bytes"),
        ));
    }

    let cell_lines: Vec<String> = cells
        .iter()
        .zip(&results)
        .map(|(c, r)| cell_json(c, r))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"repair\",\n  \"schema_version\": 1,\n  \"mode\": \"{}\",\n  {},\n  \
         \"cells\": [\n    {}\n  ],\n  \"pairs\": [\n    {}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        bench::host_json(1, "legacy"),
        cell_lines.join(",\n    "),
        pair_json.join(",\n    "),
    );
    let path = repo_root().join("BENCH_repair.json");
    std::fs::write(&path, json).expect("write BENCH_repair.json");
    eprintln!("wrote {}", path.display());
}
