//! Criterion benchmarks for the from-scratch Reed-Solomon codec.
//!
//! The paper leans on Plank et al. (FAST'09) for the claim that "modern
//! erasure code implementations are sufficiently efficient that encoding
//! and decoding can be performed fast enough"; these benchmarks quantify
//! our implementation: encode/decode/recover throughput for the default
//! `(4, 12)` policy across the paper's object-size range, plus alternate
//! code parameters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use erasure::{Codec, Fragment};

fn value(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i * 131 % 251) as u8).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode_k4_n12");
    for size in [100 * 1024usize, 1024 * 1024, 10 * 1024 * 1024] {
        let codec = Codec::new(4, 12).unwrap();
        let v = value(size);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{}KiB", size / 1024)),
            &v,
            |b, v| b.iter(|| codec.encode(v)),
        );
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_k4_n12");
    let size = 100 * 1024;
    let codec = Codec::new(4, 12).unwrap();
    let v = value(size);
    let frags = codec.encode(&v);
    g.throughput(Throughput::Bytes(size as u64));

    // Systematic fast path: all data fragments present.
    let data: Vec<Fragment> = frags[..4].to_vec();
    g.bench_function("data_fragments", |b| {
        b.iter(|| codec.decode(&data, size).unwrap())
    });
    // Worst case: parity-only decode (full matrix inversion + multiply).
    let parity: Vec<Fragment> = frags[8..].to_vec();
    g.bench_function("parity_fragments", |b| {
        b.iter(|| codec.decode(&parity, size).unwrap())
    });
    g.finish();
}

fn bench_recover(c: &mut Criterion) {
    // The sibling-fragment-recovery primitive: regenerate all eight
    // missing fragments from four survivors.
    let mut g = c.benchmark_group("recover_k4_n12");
    let size = 100 * 1024;
    let codec = Codec::new(4, 12).unwrap();
    let v = value(size);
    let frags = codec.encode(&v);
    let survivors = vec![
        frags[1].clone(),
        frags[4].clone(),
        frags[7].clone(),
        frags[10].clone(),
    ];
    let missing: Vec<u8> = vec![0, 2, 3, 5, 6, 8, 9, 11];
    g.throughput(Throughput::Bytes((missing.len() * size / 4) as u64));
    g.bench_function("all_eight_missing", |b| {
        b.iter(|| codec.recover(&survivors, &missing, size).unwrap())
    });
    g.bench_function("single_missing", |b| {
        b.iter(|| codec.recover(&survivors, &[6], size).unwrap())
    });
    g.finish();
}

fn bench_gf_mul_acc(c: &mut Criterion) {
    // The codec's inner loop: dst[i] ^= scalar * src[i] over GF(2^8).
    let mut g = c.benchmark_group("gf_mul_acc");
    let src = value(64 * 1024);
    let mut dst = vec![0u8; 64 * 1024];
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("scalar_generic", |b| {
        b.iter(|| erasure::gf::mul_acc(&mut dst, &src, 0x53))
    });
    g.bench_function("scalar_one_xor_path", |b| {
        b.iter(|| erasure::gf::mul_acc(&mut dst, &src, 1))
    });
    g.finish();
}

fn bench_code_parameters(c: &mut Criterion) {
    // How codec construction (generator build + inversion) scales with n.
    let mut g = c.benchmark_group("codec_construction");
    for (k, n) in [(4usize, 12usize), (8, 24), (16, 48), (32, 96)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_n{n}")),
            &(k, n),
            |b, &(k, n)| b.iter(|| Codec::new(k, n).unwrap()),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_encode, bench_decode, bench_recover, bench_gf_mul_acc,
        bench_code_parameters
}
criterion_main!(benches);
