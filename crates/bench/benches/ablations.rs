//! Ablation benches for the design choices DESIGN.md calls out: how the
//! convergence tunables (round interval, exponential backoff, sibling
//! recovery accumulation window) and the simulator's latency model affect
//! the work done to converge through an FS outage.
//!
//! Wall time here is a proxy for events processed; the per-message
//! breakdowns live in the `experiments` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::figures::{fs_outage, paper_layout};
use pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe::convergence::ConvergenceOptions;
use simnet::{NetworkConfig, SimDuration};

fn run(cfg: ClusterConfig, seed: u64) -> u64 {
    let mut cluster = Cluster::build_with_faults(cfg, seed, fs_outage(paper_layout(), 2));
    let report = cluster.run_to_convergence();
    assert_eq!(report.durable_not_amr, 0);
    report.metrics.total_count()
}

fn outage_config(conv: ConvergenceOptions) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 10;
    cfg.workload_value_len = 16 * 1024;
    cfg.convergence = conv;
    cfg
}

fn bench_backoff(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_backoff_base");
    for base_secs in [15u64, 60, 240] {
        let mut conv = ConvergenceOptions::all();
        conv.backoff_base = SimDuration::from_secs(base_secs);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{base_secs}s")),
            &conv,
            |b, conv| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    run(outage_config(conv.clone()), seed)
                })
            },
        );
    }
    g.finish();
}

fn bench_round_interval(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_round_interval");
    for (label, lo, hi) in [
        ("paper_30_90", 30u64, 90u64),
        ("fast_5_15", 5, 15),
        ("slow_120_360", 120, 360),
    ] {
        let mut conv = ConvergenceOptions::all();
        conv.round_min = SimDuration::from_secs(lo);
        conv.round_max = SimDuration::from_secs(hi);
        g.bench_with_input(BenchmarkId::from_parameter(label), &conv, |b, conv| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                run(outage_config(conv.clone()), seed)
            })
        });
    }
    g.finish();
}

fn bench_recovery_wait(c: &mut Criterion) {
    // The "waits some time to accumulate replies" window of §4.2: too
    // short and the recoverer misses sibling need-reports (siblings then
    // recover themselves); long enough and one retrieval serves everyone.
    let mut g = c.benchmark_group("ablation_recovery_wait");
    for ms in [50u64, 500, 2000] {
        let mut conv = ConvergenceOptions::all();
        conv.recovery_wait = SimDuration::from_millis(ms);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{ms}ms")),
            &conv,
            |b, conv| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    run(outage_config(conv.clone()), seed)
                })
            },
        );
    }
    g.finish();
}

fn bench_latency_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_network_latency");
    for (label, lo_ms, hi_ms) in [
        ("paper_10_30ms", 10u64, 30u64),
        ("lan_1_3ms", 1, 3),
        ("wan_50_150ms", 50, 150),
    ] {
        let network = NetworkConfig {
            latency_min: SimDuration::from_millis(lo_ms),
            latency_max: SimDuration::from_millis(hi_ms),
            ..NetworkConfig::paper_default()
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &network,
            |b, network| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    let mut cfg = outage_config(ConvergenceOptions::all());
                    cfg.network = network.clone();
                    run(cfg, seed)
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_backoff, bench_round_interval, bench_recovery_wait, bench_latency_model
}
criterion_main!(benches);
