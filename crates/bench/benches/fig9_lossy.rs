//! Criterion bench for **Figure 9**: a workload run to convergence under
//! a lossy network at increasing drop rates. Wall time grows with the
//! drop rate because convergence must redo dropped work — the same effect
//! the paper measures in messages. The figure's table comes from
//! `cargo run -p experiments --bin fig9`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pahoehoe::cluster::{Cluster, ClusterConfig};
use simnet::NetworkConfig;

fn run(drop_rate: f64, seed: u64) -> u64 {
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 10;
    cfg.workload_value_len = 16 * 1024;
    cfg.network = NetworkConfig::with_drop_rate(drop_rate);
    let mut cluster = Cluster::build(cfg, seed);
    let report = cluster.run_to_convergence();
    assert_eq!(report.puts_succeeded, 10);
    report.puts_attempted
}

fn bench_lossy(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_lossy");
    for rate in [0.0, 0.05, 0.10] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("drop{:.0}pct", rate * 100.0)),
            &rate,
            |b, &rate| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run(rate, seed)
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lossy
}
criterion_main!(benches);
