//! Criterion bench for **Figures 6/7**: convergence through a 10-minute
//! FS outage, comparing the sibling-fragment-recovery optimization
//! against naive per-FS recovery. The figures' message tables come from
//! `cargo run -p experiments --bin fig6_7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::figures::{fs_outage, paper_layout};
use pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe::convergence::ConvergenceOptions;

fn run(down: usize, conv: ConvergenceOptions, seed: u64) -> u64 {
    let mut cfg = ClusterConfig::paper_default();
    cfg.layout = paper_layout();
    cfg.workload_puts = 10;
    cfg.workload_value_len = 32 * 1024;
    cfg.convergence = conv;
    let mut cluster = Cluster::build_with_faults(cfg, seed, fs_outage(paper_layout(), down));
    let report = cluster.run_to_convergence();
    assert_eq!(report.durable_not_amr, 0);
    report.metrics.total_count()
}

fn bench_fs_failures(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_7_fs_failures");
    for down in [1usize, 4] {
        for (name, conv) in [
            ("sibling", ConvergenceOptions::all()),
            ("no_sibling", {
                let mut o = ConvergenceOptions::all();
                o.sibling_recovery = false;
                o
            }),
        ] {
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("{down}down_{name}")),
                &(down, conv),
                |b, (down, conv)| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        run(*down, conv.clone(), seed)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fs_failures
}
criterion_main!(benches);
