//! Criterion bench for **Figure 5**: a full failure-free workload run to
//! convergence under each optimization level.
//!
//! Wall time tracks the amount of protocol work (events processed), so
//! the ordering mirrors the paper's message counts: Naive does the most
//! convergence work, PutAMR (all optimizations) the least. The figure's
//! actual message tables come from `cargo run -p experiments --bin fig5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe::convergence::ConvergenceOptions;

fn workload(conv: ConvergenceOptions, seed: u64) -> Cluster {
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 20;
    cfg.workload_value_len = 32 * 1024;
    cfg.convergence = conv;
    Cluster::build(cfg, seed)
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_failure_free");
    let configs = [
        ("naive", ConvergenceOptions::naive()),
        ("fsamr_sync", ConvergenceOptions::fs_amr_synchronized()),
        ("fsamr_unsync", ConvergenceOptions::fs_amr_unsynchronized()),
        ("put_amr_all", ConvergenceOptions::all()),
    ];
    for (name, conv) in configs {
        g.bench_with_input(BenchmarkId::from_parameter(name), &conv, |b, conv| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut cluster = workload(conv.clone(), seed);
                let report = cluster.run_to_convergence();
                assert_eq!(report.amr_versions, 20);
                report.metrics.total_count()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5
}
criterion_main!(benches);
