//! Criterion bench for **Figure 8**: convergence through KLS outages,
//! contrasting the connected (`2C`) and partitioned (`2P`) two-failure
//! cases. The figure's byte tables come from
//! `cargo run -p experiments --bin fig8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use experiments::figures::{kls_outage, paper_layout};
use pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe::convergence::ConvergenceOptions;

fn run(pattern: &str, seed: u64) -> u64 {
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 10;
    cfg.workload_value_len = 32 * 1024;
    cfg.convergence = ConvergenceOptions::all();
    let mut cluster = Cluster::build_with_faults(cfg, seed, kls_outage(paper_layout(), pattern));
    let report = cluster.run_to_convergence();
    assert_eq!(report.durable_not_amr, 0);
    report.metrics.total_bytes()
}

fn bench_kls_failures(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_kls_failures");
    for pattern in ["0", "1", "2C", "2P", "3"] {
        g.bench_with_input(
            BenchmarkId::from_parameter(pattern),
            &pattern,
            |b, pattern| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run(pattern, seed)
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kls_failures
}
criterion_main!(benches);
