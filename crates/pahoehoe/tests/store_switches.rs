//! The process-wide store switches: `set_flat_store` and
//! `set_compaction` must apply to *subsequently constructed* clusters
//! (capture at construction, like `simnet::set_reference_queue_mode`)
//! and must be observationally safe to flip back afterwards.
//!
//! Both switches are exercised from one `#[test]` so the process-wide
//! toggles never race another test thread in this binary.

use pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe::fs::Fs;
use pahoehoe::protocol::{set_delta_coding, ProtocolMode};
use pahoehoe::{set_compaction, set_flat_store};

/// Builds a small cluster under whatever switches are currently set,
/// drives an update-heavy workload (every put overwrites the same key,
/// so superseded versions accumulate), and returns it converged.
fn run_update_heavy() -> Cluster {
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 0;
    let mut cluster = Cluster::build(cfg, 7);
    for i in 0..4u8 {
        cluster.put(b"hot-key", vec![i; 2048]);
        cluster.run_to_convergence();
    }
    cluster
}

fn total_compacted(cluster: &Cluster) -> usize {
    let topo = cluster.topology().clone();
    topo.all_fss()
        .map(|id| cluster.sim().actor::<Fs>(id).compacted_count())
        .sum()
}

#[test]
fn switches_capture_at_construction() {
    // Defaults: sharded store on, compaction off.
    let mode = ProtocolMode::current();
    assert!(mode.shard_store, "sharded store is the default");
    assert!(!mode.compact_converged, "compaction is opt-in");

    // `set_flat_store(true)` routes `current()` to the flat (fanout-1)
    // index for subsequently built clusters.
    set_flat_store(true);
    assert!(!ProtocolMode::current().shard_store);
    let flat = run_update_heavy();
    set_flat_store(false);
    assert!(ProtocolMode::current().shard_store);

    // The flat-store run behaves identically to the sharded default —
    // the shard fanout is pure representation.
    let sharded = run_update_heavy();
    assert_eq!(
        flat.sim().events_processed(),
        sharded.sim().events_processed()
    );
    assert_eq!(
        format!("{:?}", flat.sim().metrics()),
        format!("{:?}", sharded.sim().metrics())
    );

    // `set_compaction(true)` is captured at construction: the cluster
    // built under the switch compacts superseded AMR versions even
    // after the switch is flipped back, and the default cluster never
    // compacts.
    assert_eq!(total_compacted(&sharded), 0, "compaction off by default");
    set_compaction(true);
    assert!(ProtocolMode::current().compact_converged);
    let compacting = run_update_heavy();
    set_compaction(false);
    assert!(!ProtocolMode::current().compact_converged);
    assert!(
        total_compacted(&compacting) > 0,
        "superseded AMR versions collapse to residuals under the switch"
    );
    // Compaction is local bookkeeping only: the event sequence matches
    // the non-compacting run exactly.
    assert_eq!(
        compacting.sim().events_processed(),
        sharded.sim().events_processed()
    );
    assert_eq!(
        format!("{:?}", compacting.sim().metrics()),
        format!("{:?}", sharded.sim().metrics())
    );

    // `set_delta_coding(true)` routes overwrites of a cached key through
    // the XOR-delta stripe path. Successive values differ in one byte, so
    // the dirty window is tiny and the delta encoder must engage rather
    // than fall back.
    assert!(!mode.delta, "delta coding is opt-in");
    set_delta_coding(true);
    assert!(ProtocolMode::current().delta);
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 0;
    let mut delta_run = Cluster::build(cfg, 7);
    for i in 0..4u8 {
        let mut value = vec![0xab; 2048];
        value[17] = i;
        delta_run.put(b"hot-key", value);
        delta_run.run_to_convergence();
    }
    set_delta_coding(false);
    assert!(!ProtocolMode::current().delta);
    let metrics = delta_run.sim().metrics().clone();
    assert_eq!(
        metrics.event("deltas_encoded"),
        3,
        "puts 2-4 overwrite the cached stripe: {metrics:?}"
    );
    assert!(metrics.event("delta_bytes_saved") > 0);
    assert!(
        metrics.event("deltas_resolved") > 0,
        "fragment servers resolve windowed deltas against the stored base"
    );
    assert_eq!(metrics.event("delta_unresolvable"), 0);
    // The delta run converges to the same AMR ledger as a full-stripe run
    // of the same script.
    let report = delta_run.report(simnet::RunOutcome::PredicateSatisfied);
    assert_eq!(report.puts_succeeded, 4);
    assert_eq!(report.non_durable, 0);
}
