//! Property-based tests for Pahoehoe's core data structures.

use pahoehoe::metadata::{Location, Metadata};
use pahoehoe::policy::Policy;
use pahoehoe::topology::DataCenterId;
use pahoehoe::types::{Key, ObjectVersion, Timestamp};
use proptest::prelude::*;
use simnet::{NodeId, SimTime};

/// Strategy: a valid per-DC location list for the default policy (6
/// locations over 3 FSs x 2 disks, FS ids derived from a base).
fn dc_locations(base: u32) -> Vec<Location> {
    (0..6u8)
        .map(|i| Location {
            fs: NodeId::new(base + u32::from(i % 3)),
            disk: i / 3,
        })
        .collect()
}

/// Strategy: partial metadata — a subset of the two DCs decided.
fn partial_meta(mask: u8) -> Metadata {
    let mut m = Metadata::new(Policy::paper_default(), DataCenterId::new(0), 1234);
    if mask & 1 != 0 {
        m.add_dc_locations(DataCenterId::new(0), dc_locations(10));
    }
    if mask & 2 != 0 {
        m.add_dc_locations(DataCenterId::new(1), dc_locations(20));
    }
    m
}

proptest! {
    /// Metadata merging is a join: commutative, associative, idempotent.
    /// (First-writer-wins per DC is conflict-free here because every
    /// server derives identical per-DC decisions.)
    #[test]
    fn metadata_merge_is_a_semilattice(a in 0u8..4, b in 0u8..4, c in 0u8..4) {
        let (ma, mb, mc) = (partial_meta(a), partial_meta(b), partial_meta(c));

        // Commutative.
        let mut ab = ma.clone();
        ab.merge(&mb);
        let mut ba = mb.clone();
        ba.merge(&ma);
        prop_assert_eq!(&ab, &ba);

        // Associative.
        let mut ab_c = ab.clone();
        ab_c.merge(&mc);
        let mut bc = mb.clone();
        bc.merge(&mc);
        let mut a_bc = ma.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Idempotent.
        let mut aa = ma.clone();
        prop_assert!(!aa.merge(&ma) || a == 0, "self-merge learns nothing");
        prop_assert_eq!(&aa, &ma);
    }

    /// Fragment assignments partition the code word: each decided DC
    /// covers its slot's contiguous index range exactly once.
    #[test]
    fn assignments_partition_the_code_word(mask in 1u8..4) {
        let m = partial_meta(mask);
        let mut indices: Vec<u8> =
            m.assignments().map(|(idx, _)| idx).collect();
        indices.sort_unstable();
        indices.dedup();
        prop_assert_eq!(indices.len(), m.location_count(), "no duplicates");
        for (idx, loc) in m.assignments() {
            // Index maps back to the DC hosting it.
            let dc = m.dc_of_fragment(idx);
            prop_assert!(
                m.dc_locations(dc).expect("decided").contains(&loc)
            );
        }
    }

    /// Timestamp ordering is total and consistent with (clock, proxy).
    #[test]
    fn timestamp_order_is_lexicographic(
        c1 in 0u64..1000, p1 in 0u32..8,
        c2 in 0u64..1000, p2 in 0u32..8,
    ) {
        let t1 = Timestamp::new(SimTime::from_micros(c1), p1);
        let t2 = Timestamp::new(SimTime::from_micros(c2), p2);
        let expected = (c1, p1).cmp(&(c2, p2));
        prop_assert_eq!(t1.cmp(&t2), expected);
        prop_assert_eq!(t1 == t2, c1 == c2 && p1 == p2);
    }

    /// Key fingerprints never collide across distinct small names (a
    /// sanity bound, not a cryptographic claim).
    #[test]
    fn key_fingerprints_distinguish_names(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        prop_assume!(a != b);
        prop_assert_ne!(
            Key::from_name(a.as_bytes()),
            Key::from_name(b.as_bytes())
        );
    }

    /// `fragments_of` and `sibling_fss` agree with `assignments`.
    #[test]
    fn per_fs_views_are_consistent(mask in 0u8..4) {
        let m = partial_meta(mask);
        let siblings = m.sibling_fss();
        let mut total = 0;
        for fs in &siblings {
            let frags = m.fragments_of(*fs);
            prop_assert!(!frags.is_empty(), "siblings host fragments");
            total += frags.len();
        }
        prop_assert_eq!(total, m.location_count());
        // Non-siblings host nothing.
        prop_assert!(m.fragments_of(NodeId::new(999)).is_empty());
    }

    /// Object versions inherit ordering from (key, timestamp).
    #[test]
    fn object_version_ordering(k1 in 0u64..4, c1 in 0u64..4, k2 in 0u64..4, c2 in 0u64..4) {
        let a = ObjectVersion::new(
            Key::from_u64(k1),
            Timestamp::new(SimTime::from_micros(c1), 0),
        );
        let b = ObjectVersion::new(
            Key::from_u64(k2),
            Timestamp::new(SimTime::from_micros(c2), 0),
        );
        if k1 == k2 {
            prop_assert_eq!(a.ts < b.ts, c1 < c2);
            prop_assert_eq!(a < b, c1 < c2);
        }
    }
}
