//! Property-based and differential tests for rack-aware fragment
//! placement: stripes spread across failure domains whenever the rack
//! count allows it, degrade to max-spread otherwise, and the placement
//! choice never changes what a get decodes.

use std::collections::{BTreeMap, BTreeSet};

use pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe::kls::Kls;
use pahoehoe::policy::Policy;
use pahoehoe::topology::{DataCenterId, Topology};
use pahoehoe::types::{Key, ObjectVersion, Timestamp};
use std::sync::Arc;

use proptest::prelude::*;
use simnet::{NodeId, SimTime};

/// Single-DC topology: one KLS (id 0) and `fs_count` FSs (ids 1..) split
/// into `racks` racks by position.
fn topo(fs_count: usize, racks: usize) -> Arc<Topology> {
    let fss: Vec<NodeId> = (1..=fs_count as u32).map(NodeId::new).collect();
    Topology::with_racks(vec![(vec![NodeId::new(0)], fss)], racks)
}

fn ov_for(seed: u64) -> ObjectVersion {
    ObjectVersion {
        key: Key::from_u64(seed),
        ts: Timestamp::new(SimTime::from_micros(1_000_000 + seed), 0),
    }
}

proptest! {
    /// With racks >= stripe width, no two fragments share a rack; with
    /// fewer racks, the deal stays maximally spread (per-rack counts
    /// differ by at most one and every rack is used).
    #[test]
    fn rack_aware_placement_spreads_across_failure_domains(
        fs_count in 1usize..=8,
        racks in 1usize..=8,
        frags in 2u8..=12,
        seed in 0u64..500,
    ) {
        let k = (frags / 2).max(1);
        let policy = Policy::new(k, frags, 1, 12);
        let topo = topo(fs_count, racks);
        let dc = DataCenterId::new(0);
        let locs = Kls::which_locs(&topo, dc, ov_for(seed), &policy);
        prop_assert_eq!(locs.len(), usize::from(policy.frags_per_dc));

        // No (fs, disk) slot is used twice.
        let slots: BTreeSet<(NodeId, u8)> =
            locs.iter().map(|l| (l.fs, l.disk)).collect();
        prop_assert_eq!(slots.len(), locs.len());

        let effective = racks.min(fs_count);
        let mut per_rack: BTreeMap<usize, usize> = BTreeMap::new();
        for loc in &locs {
            let rack = topo.rack_of(dc, loc.fs).expect("placement targets FSs");
            prop_assert!(rack < effective);
            *per_rack.entry(rack).or_insert(0) += 1;
        }
        if effective >= locs.len() {
            // Enough failure domains: all fragments in distinct racks.
            prop_assert!(per_rack.values().all(|&c| c == 1));
        } else {
            // Degraded mode: every rack is used, loads differ by <= 1.
            prop_assert_eq!(per_rack.len(), effective);
            let max = per_rack.values().max().copied().unwrap_or(0);
            let min = per_rack.values().min().copied().unwrap_or(0);
            prop_assert!(max - min <= 1, "max-spread: {:?}", per_rack);
        }
    }

    /// Placement is a pure function of (topology, ov, policy).
    #[test]
    fn rack_aware_placement_is_deterministic(
        fs_count in 1usize..=6,
        racks in 1usize..=4,
        seed in 0u64..200,
    ) {
        let policy = Policy::new(4, 6, 1, 12);
        let topo = topo(fs_count, racks);
        let dc = DataCenterId::new(0);
        let a = Kls::which_locs(&topo, dc, ov_for(seed), &policy);
        let b = Kls::which_locs(&topo, dc, ov_for(seed), &policy);
        prop_assert_eq!(a, b);
    }
}

/// Rack-aware and legacy placement store different layouts but decode
/// identical values: the placement mode is invisible to readers.
#[test]
fn rack_aware_and_legacy_placement_decode_identical_values() {
    let run = |racks: Option<usize>| {
        let mut cfg = ClusterConfig::paper_default();
        cfg.racks_per_dc = racks;
        let mut cluster = Cluster::build(cfg, 99);
        for i in 0..8u8 {
            cluster.put(
                format!("blob-{i}").as_bytes(),
                vec![i ^ 0x5A; 4096 + i as usize],
            );
        }
        cluster.run_to_convergence();
        (0..8u8)
            .map(|i| cluster.get(format!("blob-{i}").as_bytes()))
            .collect::<Vec<_>>()
    };
    let legacy = run(None);
    let rack_aware = run(Some(3));
    assert_eq!(legacy, rack_aware);
    for (i, v) in legacy.iter().enumerate() {
        let i = i as u8;
        assert_eq!(v.as_deref(), Some(&vec![i ^ 0x5A; 4096 + i as usize][..]));
    }
}
