//! End-to-end tests for the background repair engine: threshold-driven
//! re-protection after disk loss, bandwidth throttling, and the paced
//! scrub scheduler.

use pahoehoe::client::{Client, ClientOp};
use pahoehoe::cluster::{Cluster, ClusterConfig};
use pahoehoe::fs::Fs;
use pahoehoe::repair::RepairOptions;
use pahoehoe::types::{Key, ObjectVersion};
use simnet::{NodeId, RunOutcome, SimDuration};

fn repair_cfg(puts: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default();
    cfg.convergence.repair = Some(RepairOptions::paper_default());
    cfg.racks_per_dc = Some(3);
    cfg.workload_puts = puts;
    cfg.workload_value_len = 8 * 1024;
    cfg
}

/// Total live fragments for `ov` across every FS in the cluster.
fn cluster_live(cluster: &Cluster, ov: ObjectVersion) -> usize {
    let fss: Vec<NodeId> = cluster.topology().all_fss().collect();
    fss.iter()
        .map(|&fs| cluster.fs(fs).entry(ov).map_or(0, |e| e.fragments.len()))
        .sum()
}

#[test]
fn repair_engine_reprotects_after_losing_both_disks_of_a_server() {
    let mut cluster = Cluster::build(repair_cfg(10), 7);
    let report = cluster.run_to_convergence();
    assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);
    assert_eq!(report.amr_versions, 10);
    let ovs: Vec<ObjectVersion> = cluster
        .client()
        .success_versions()
        .iter()
        .copied()
        .collect();
    assert_eq!(ovs.len(), 10);
    for &ov in &ovs {
        assert_eq!(cluster_live(&cluster, ov), 12);
    }

    // Kill both disks of one DC-0 server: each object drops from 6 to 4
    // live fragments in that DC, below the 80% repair threshold. No round
    // wake is scheduled, so the repair engine is the only re-protection
    // path.
    let victim = cluster.layout().fs(0, 0);
    let now = cluster.view().now();
    let lost = {
        let fs = cluster.actor_mut::<Fs>(victim);
        fs.destroy_disk(0, now) + fs.destroy_disk(1, now)
    };
    assert_eq!(lost, 2 * 10, "two fragments per object on the victim");
    for &ov in &ovs {
        assert_eq!(cluster_live(&cluster, ov), 10);
    }

    cluster.run_until_time(now + SimDuration::from_secs(600));

    let repair = cluster.repair_actor(0);
    assert_eq!(repair.jobs_triggered(), 10, "every object dipped below");
    assert_eq!(repair.jobs_completed(), 10);
    assert_eq!(repair.jobs_abandoned(), 0);
    assert_eq!(repair.backlog(), 0);
    for &ov in &ovs {
        assert_eq!(cluster_live(&cluster, ov), 12, "back at full redundancy");
        assert_eq!(repair.live_fragments(ov), 6);
    }
    let m = cluster.view().metrics();
    assert_eq!(m.event("repair_triggered"), 10);
    assert_eq!(m.event("repair_completed"), 10);
    assert!(m.event("repair_bytes") > 0);

    // The archive still serves every value (workload keys are
    // `Key::from_u64(i + 1)`).
    let client_id = cluster.layout().client();
    for i in 0..10u64 {
        let done = cluster.view().actor::<Client>(client_id).gets_done().len();
        cluster
            .actor_mut::<Client>(client_id)
            .enqueue(ClientOp::Get {
                key: Key::from_u64(i + 1),
            });
        cluster.schedule_timer(client_id, SimDuration::ZERO, 1);
        cluster.run_until_view(move |sim| sim.actor::<Client>(client_id).gets_done().len() > done);
        let outcome = &cluster.view().actor::<Client>(client_id).gets_done()[done];
        assert!(outcome.result.is_some(), "get after repair must succeed");
    }
}

#[test]
fn throttled_repair_stalls_but_still_reprotects() {
    let mut cfg = repair_cfg(10);
    // A budget well under one job's cost forces the drain loop to stall
    // and accumulate tokens across ticks.
    cfg.convergence.repair = Some(RepairOptions::throttled(4 * 1024));
    let mut cluster = Cluster::build(cfg, 7);
    let report = cluster.run_to_convergence();
    assert_eq!(report.amr_versions, 10);
    let ovs: Vec<ObjectVersion> = cluster
        .client()
        .success_versions()
        .iter()
        .copied()
        .collect();

    let victim = cluster.layout().fs(0, 0);
    let now = cluster.view().now();
    {
        let fs = cluster.actor_mut::<Fs>(victim);
        fs.destroy_disk(0, now);
        fs.destroy_disk(1, now);
    }
    cluster.run_until_time(now + SimDuration::from_secs(1200));

    let repair = cluster.repair_actor(0);
    assert_eq!(repair.jobs_completed(), 10);
    let m = cluster.view().metrics();
    assert!(
        m.event("repair_throttle_stalls") > 0,
        "the token bucket must have gated admissions"
    );
    for &ov in &ovs {
        assert_eq!(cluster_live(&cluster, ov), 12);
    }
}

#[test]
fn repair_is_not_triggered_above_threshold() {
    let mut cluster = Cluster::build(repair_cfg(5), 11);
    cluster.run_to_convergence();

    // One disk = one fragment per object on the victim: 6 -> 5 live in
    // the DC, which is still >= 80% of 6.
    let victim = cluster.layout().fs(0, 1);
    let now = cluster.view().now();
    let lost = cluster.actor_mut::<Fs>(victim).destroy_disk(0, now);
    assert_eq!(lost, 5);
    cluster.run_until_time(now + SimDuration::from_secs(300));

    let repair = cluster.repair_actor(0);
    assert_eq!(repair.jobs_triggered(), 0);
    assert_eq!(cluster.view().metrics().event("repair_triggered"), 0);
}

#[test]
fn paced_scrub_detects_corruption_without_starving_the_protocol() {
    let mut cfg = ClusterConfig::paper_default();
    cfg.workload_puts = 10;
    cfg.workload_value_len = 8 * 1024;
    // 8 KiB values fragment to 2 KiB, so a 4 KiB budget re-hashes two
    // fragments per tick and a full pass takes multiple ticks.
    cfg.convergence.scrub_interval = Some(SimDuration::from_secs(5));
    cfg.convergence.scrub_chunk_bytes = 4 * 1024;
    let mut cluster = Cluster::build(cfg, 3);
    let report = cluster.run_to_convergence();
    assert_eq!(report.amr_versions, 10);

    // Flip one stored fragment on a DC-1 server.
    let victim = cluster.layout().fs(1, 2);
    let (ov, idx) = {
        let fs: &Fs = cluster.fs(victim);
        let ov = fs.known_versions().next().expect("stores fragments");
        let idx = *fs
            .entry(ov)
            .expect("entry exists")
            .fragments
            .keys()
            .next()
            .expect("holds a fragment");
        (ov, idx)
    };
    assert!(cluster.actor_mut::<Fs>(victim).corrupt_fragment(ov, idx));

    // While the cursor-paced scrub crawls the store, fresh protocol work
    // must still make progress: a put issued mid-scrub completes and is
    // readable.
    let now = cluster.view().now();
    cluster.run_until_time(now + SimDuration::from_secs(7));
    cluster.put(b"mid-scrub", vec![0xAB; 4096]);
    assert_eq!(cluster.get(b"mid-scrub"), Some(vec![0xAB; 4096]));

    // And the scrubber finds the corruption within a few passes.
    let now = cluster.view().now();
    cluster.run_until_time(now + SimDuration::from_secs(120));
    assert!(
        cluster.fs(victim).corruption_detected() >= 1,
        "paced scrub still re-hashes the whole store"
    );
}
