//! Differential tests: the protocol hot-path optimizations against the
//! reference mode.
//!
//! [`ProtocolMode`] switches three hot-path changes — refcounted metadata
//! sharing, the dense per-version store, and coalesced round accounting —
//! that must be *invisible* to the protocol: for any workload and fault
//! plan, every mode reaches the same final KLS and FS states through the
//! same event sequence, and batching changes only how convergence traffic
//! is accounted (fewer physical messages, fewer header bytes), never how
//! many logical protocol entries travel.

use pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout};
use pahoehoe::convergence::ConvergenceOptions;
use pahoehoe::fs::Fs;
use pahoehoe::kls::Kls;
use pahoehoe::protocol::ProtocolMode;
use pahoehoe::workload::{KeyDistribution, StreamingWorkload};
use proptest::prelude::*;
use simnet::{FaultPlan, NetworkConfig, RunOutcome, SimDuration, SimTime};

/// A small randomized scenario: everything that feeds the deterministic
/// simulation, minus the protocol mode under test.
#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    puts: usize,
    value_len: usize,
    drop_pct: u8,
    dup_pct: u8,
    naive: bool,
    /// `(node index, start secs, duration secs)` outages.
    outages: Vec<(u32, u64, u64)>,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let outage = (0u32..10, 0u64..60, 30u64..300);
    (
        any::<u64>(),
        1usize..4,
        (0usize..3).prop_map(|i| [512usize, 4096, 16 * 1024][i]),
        0u8..8,
        0u8..5,
        any::<bool>(),
        proptest::collection::vec(outage, 0..3),
    )
        .prop_map(
            |(seed, puts, value_len, drop_pct, dup_pct, naive, outages)| Scenario {
                seed,
                puts,
                value_len,
                drop_pct,
                dup_pct,
                naive,
                outages,
            },
        )
}

/// Everything observable after a run that must not depend on the protocol
/// mode: the outcome, the event count, the final virtual clock, the full
/// final state of every server, and the per-kind logical entry counts.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: RunOutcome,
    events: u64,
    now: SimTime,
    state: String,
    entries: Vec<(&'static str, u64)>,
}

/// Renders every KLS's metadata table and every FS's fragment store,
/// convergence classification and fragment checksums into one canonical
/// string.
fn state_digest(cluster: &Cluster) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let topo = cluster.topology().clone();
    for id in topo.all_klss() {
        let kls: &Kls = cluster.sim().actor(id);
        write!(out, "KLS {id:?}:").unwrap();
        let mut ovs: Vec<_> = kls.known_versions().collect();
        ovs.sort();
        for ov in ovs {
            let meta = kls.meta(ov).expect("known");
            write!(out, " {ov:?}={meta:?}").unwrap();
        }
        out.push('\n');
    }
    for id in topo.all_fss() {
        let fs: &Fs = cluster.sim().actor(id);
        write!(out, "FS {id:?}:").unwrap();
        let mut ovs: Vec<_> = fs.known_versions().collect();
        ovs.sort();
        let amr: Vec<_> = fs.amr_versions().collect();
        let pending: Vec<_> = fs.pending_versions().collect();
        let gave_up: Vec<_> = fs.gave_up_versions().collect();
        for ov in ovs {
            let entry = fs.entry(ov).expect("known");
            let class = if amr.contains(&ov) {
                "amr"
            } else if pending.contains(&ov) {
                "pending"
            } else if gave_up.contains(&ov) {
                "gave-up"
            } else {
                "idle"
            };
            write!(
                out,
                " {ov:?}[{class} v={} meta={:?} frags={:?} sums={:?}]",
                fs.verified(ov),
                entry.meta,
                entry.fragments.keys().collect::<Vec<_>>(),
                entry.checksums,
            )
            .unwrap();
        }
        out.push('\n');
    }
    out
}

fn run(sc: &Scenario, mode: ProtocolMode) -> Observed {
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let mut cfg = ClusterConfig::paper_default();
    cfg.layout = layout;
    cfg.protocol = mode;
    cfg.workload_puts = sc.puts;
    cfg.workload_value_len = sc.value_len;
    cfg.convergence = if sc.naive {
        ConvergenceOptions::naive()
    } else {
        ConvergenceOptions::all()
    };
    cfg.network = NetworkConfig {
        drop_rate: f64::from(sc.drop_pct) / 100.0,
        duplicate_rate: f64::from(sc.dup_pct) / 100.0,
        ..NetworkConfig::paper_default()
    };
    let mut faults = FaultPlan::none();
    for &(node, start, dur) in &sc.outages {
        faults.add_node_outage(
            simnet::NodeId::new(node),
            SimTime::ZERO + SimDuration::from_secs(start),
            SimDuration::from_secs(dur),
        );
    }
    let mut cluster = Cluster::build_with_faults(cfg, sc.seed, faults);
    let report = cluster.run_to_convergence();
    let entries = cluster
        .sim()
        .metrics()
        .registry()
        .iter()
        .map(|&k| (k, cluster.sim().metrics().entries_for(k)))
        .collect();
    Observed {
        outcome: report.outcome,
        events: cluster.sim().events_processed(),
        now: cluster.sim().now(),
        state: state_digest(&cluster),
        entries,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any workload and fault plan, all three protocol modes agree on
    /// the final converged state, the event sequence length, and the
    /// per-kind logical entry counts; batching strictly reduces physical
    /// message count and bytes whenever convergence traffic exists.
    #[test]
    fn protocol_modes_are_observationally_equivalent(sc in scenario_strategy()) {
        let reference = run(&sc, ProtocolMode::reference());
        let optimized = run(&sc, ProtocolMode::optimized());
        let batched = run(&sc, ProtocolMode::batched());

        // Arc-sharing and the dense store are pure representation changes:
        // *everything* observable matches the reference, including the
        // physical message counts.
        prop_assert_eq!(&reference, &optimized);

        // Batching must not change outcomes, event order, final state, or
        // logical entry counts — only the physical-message accounting.
        prop_assert_eq!(&reference.outcome, &batched.outcome);
        prop_assert_eq!(reference.events, batched.events);
        prop_assert_eq!(reference.now, batched.now);
        prop_assert_eq!(&reference.state, &batched.state);
        prop_assert_eq!(&reference.entries, &batched.entries);
    }
}

/// A fault-heavy scripted scenario: batching coalesces real convergence
/// traffic (physical messages strictly below logical entries) and saves
/// exactly the per-entry headers' worth of bytes.
#[test]
fn batching_reduces_physical_messages_and_bytes() {
    let sc = Scenario {
        seed: 11,
        puts: 4,
        value_len: 4096,
        drop_pct: 10,
        dup_pct: 0,
        naive: true,
        outages: vec![(2, 0, 240)],
    };
    let unbatched = run(&sc, ProtocolMode::optimized());
    let batched = run(&sc, ProtocolMode::batched());
    assert_eq!(unbatched.state, batched.state, "same final states");
    assert_eq!(unbatched.entries, batched.entries, "same logical entries");

    let total = |o: &Observed| o.entries.iter().map(|&(_, n)| n).sum::<u64>();
    assert!(total(&unbatched) > 0, "scenario generated traffic");

    // Re-run to inspect physical counts/bytes (Observed only keeps the
    // mode-independent view).
    let physical = |mode: ProtocolMode| {
        let layout = ClusterLayout {
            dcs: 2,
            kls_per_dc: 2,
            fs_per_dc: 3,
        };
        let mut cfg = ClusterConfig::paper_default();
        cfg.layout = layout;
        cfg.protocol = mode;
        cfg.workload_puts = sc.puts;
        cfg.workload_value_len = sc.value_len;
        cfg.convergence = ConvergenceOptions::naive();
        cfg.network = NetworkConfig {
            drop_rate: 0.10,
            ..NetworkConfig::paper_default()
        };
        let mut faults = FaultPlan::none();
        faults.add_node_outage(
            simnet::NodeId::new(2),
            SimTime::ZERO,
            SimDuration::from_secs(240),
        );
        let mut cluster = Cluster::build_with_faults(cfg, sc.seed, faults);
        cluster.run_to_convergence();
        let m = cluster.sim().metrics();
        (m.total_count(), m.total_bytes(), m.total_entries())
    };
    let (u_count, u_bytes, u_entries) = physical(ProtocolMode::optimized());
    let (b_count, b_bytes, b_entries) = physical(ProtocolMode::batched());
    assert_eq!(u_entries, b_entries, "logical entries are mode-independent");
    assert!(
        b_count < u_count,
        "batching coalesced physical messages ({b_count} vs {u_count})"
    );
    // Every coalesced entry saves exactly one header.
    let headers_saved = u_count - b_count;
    assert_eq!(
        u_bytes - b_bytes,
        headers_saved * pahoehoe::messages::HEADER_BYTES as u64,
        "byte savings are exactly the amortized headers"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The key-sharded per-FS version index against the flat single-shard
    /// map: sharding only changes *where* an index entry lives, so every
    /// observable — outcome, event sequence, final state, physical
    /// message accounting — must match exactly.
    #[test]
    fn sharded_store_is_invisible(sc in scenario_strategy()) {
        let sharded = run(&sc, ProtocolMode::optimized());
        let flat = run(
            &sc,
            ProtocolMode {
                shard_store: false,
                ..ProtocolMode::optimized()
            },
        );
        prop_assert_eq!(&sharded, &flat);
    }
}

/// Runs an update-heavy streamed workload — a small key space cycled
/// sequentially, so most puts supersede an earlier version of the same
/// key — and returns the cluster for in-place inspection. Compacting
/// runs cannot be rendered by [`state_digest`], which expects a full
/// [`FragEntry`](pahoehoe::fs::FragEntry) for every known version.
fn run_update_heavy(
    sc: &Scenario,
    key_space: u64,
    puts: u64,
    mode: ProtocolMode,
    overwrite_delta_permille: u16,
) -> (Cluster, RunOutcome) {
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let mut cfg = ClusterConfig::paper_default();
    cfg.layout = layout;
    cfg.protocol = mode;
    cfg.workload_value_len = sc.value_len;
    cfg.streaming_workload = Some(StreamingWorkload {
        puts,
        key_space,
        value_len: sc.value_len,
        policy: cfg.policy,
        seed: sc.seed,
        dist: KeyDistribution::Sequential,
        overwrite_delta_permille,
    });
    cfg.convergence = if sc.naive {
        ConvergenceOptions::naive()
    } else {
        ConvergenceOptions::all()
    };
    cfg.network = NetworkConfig {
        drop_rate: f64::from(sc.drop_pct) / 100.0,
        duplicate_rate: f64::from(sc.dup_pct) / 100.0,
        ..NetworkConfig::paper_default()
    };
    let mut faults = FaultPlan::none();
    for &(node, start, dur) in &sc.outages {
        faults.add_node_outage(
            simnet::NodeId::new(node),
            SimTime::ZERO + SimDuration::from_secs(start),
            SimDuration::from_secs(dur),
        );
    }
    let mut cluster = Cluster::build_with_faults(cfg, sc.seed, faults);
    let outcome = cluster.run_to_convergence().outcome;
    (cluster, outcome)
}

/// Asserts the compacting run is observationally equivalent to the full
/// run: identical KLS tables, identical per-FS classification sets and
/// settle times, byte-identical entries for every uncompacted version,
/// and for each compacted version a residual mask recording exactly the
/// fragments the full store still holds. Returns the number of
/// compacted store entries seen (a superseded version compacts once per
/// FS that held it).
fn assert_compaction_invisible(full: &Cluster, compact: &Cluster) -> usize {
    let topo = full.topology().clone();
    for id in topo.all_klss() {
        let f: &Kls = full.sim().actor(id);
        let c: &Kls = compact.sim().actor(id);
        let mut f_ovs: Vec<_> = f.known_versions().collect();
        let mut c_ovs: Vec<_> = c.known_versions().collect();
        f_ovs.sort();
        c_ovs.sort();
        assert_eq!(f_ovs, c_ovs, "KLS {id:?} knows the same versions");
        for ov in f_ovs {
            assert_eq!(
                format!("{:?}", f.meta(ov)),
                format!("{:?}", c.meta(ov)),
                "KLS {id:?} metadata for {ov:?} is untouched by compaction"
            );
        }
    }

    let sorted = |it: Box<dyn Iterator<Item = pahoehoe::types::ObjectVersion> + '_>| {
        let mut v: Vec<_> = it.collect();
        v.sort();
        v
    };
    let mut compacted_entries = 0usize;
    for id in topo.all_fss() {
        let f: &Fs = full.sim().actor(id);
        let c: &Fs = compact.sim().actor(id);
        let known = sorted(Box::new(f.known_versions()));
        assert_eq!(
            known,
            sorted(Box::new(c.known_versions())),
            "FS {id:?} knows the same versions"
        );
        assert_eq!(
            sorted(Box::new(f.amr_versions())),
            sorted(Box::new(c.amr_versions())),
            "FS {id:?} AMR sets match"
        );
        assert_eq!(
            sorted(Box::new(f.pending_versions())),
            sorted(Box::new(c.pending_versions())),
            "FS {id:?} pending sets match"
        );
        assert_eq!(
            sorted(Box::new(f.gave_up_versions())),
            sorted(Box::new(c.gave_up_versions())),
            "FS {id:?} gave-up sets match"
        );
        for ov in known {
            assert_eq!(
                f.amr_settled_at(ov),
                c.amr_settled_at(ov),
                "FS {id:?} settle time for {ov:?} matches"
            );
            assert_eq!(
                f.verified(ov),
                c.verified(ov),
                "FS {id:?} verification for {ov:?} matches"
            );
            match c.compacted_residual(ov) {
                Some(mask) => {
                    compacted_entries += 1;
                    assert!(
                        c.amr_settled_at(ov).is_some(),
                        "only settled-AMR versions compact ({ov:?})"
                    );
                    assert!(
                        c.entry(ov).is_none(),
                        "compacted slot for {ov:?} released its full entry"
                    );
                    let entry = f.entry(ov).expect("full run keeps the entry");
                    let held: Vec<_> = mask.iter().collect();
                    let full_held: Vec<_> = entry.fragments.keys().copied().collect();
                    assert_eq!(
                        held, full_held,
                        "FS {id:?} residual for {ov:?} records exactly the fragments held"
                    );
                }
                None => {
                    assert_eq!(
                        format!("{:?}", f.entry(ov)),
                        format!("{:?}", c.entry(ov)),
                        "FS {id:?} uncompacted entry for {ov:?} is byte-identical"
                    );
                }
            }
        }
        assert_eq!(
            c.compacted_count(),
            sorted(Box::new(c.compacted_versions())).len(),
            "FS {id:?} compacted count matches its residual listing"
        );
    }
    compacted_entries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Converged-version compaction against the full store on an
    /// update-heavy stream: on a clean network compaction is pure local
    /// bookkeeping, so the outcome, event sequence, virtual clock,
    /// per-kind logical entry counts, KLS tables and every per-FS
    /// observable must match — with superseded settled versions allowed
    /// to collapse to residuals that mirror the full store's fragment
    /// sets. (Under faults the stores legitimately diverge: a residual
    /// still answers verification queries, but its released fragments
    /// can no longer feed a straggling sibling's recovery, and late
    /// duplicate fragment pushes are dropped instead of stored — so the
    /// strict event-level claim is scoped to fault-free runs.)
    #[test]
    fn compaction_is_invisible(
        sc in scenario_strategy(),
        key_space in 1u64..4,
        puts in 4u64..13,
    ) {
        let sc = Scenario {
            drop_pct: 0,
            dup_pct: 0,
            outages: Vec::new(),
            ..sc
        };
        let (full, full_outcome) =
            run_update_heavy(&sc, key_space, puts, ProtocolMode::optimized(), 0);
        let (compact, compact_outcome) =
            run_update_heavy(&sc, key_space, puts, ProtocolMode::scale(), 0);
        prop_assert_eq!(full_outcome, compact_outcome);
        prop_assert_eq!(
            full.sim().events_processed(),
            compact.sim().events_processed()
        );
        prop_assert_eq!(full.sim().now(), compact.sim().now());
        let entries = |c: &Cluster| -> Vec<(&'static str, u64)> {
            c.sim()
                .metrics()
                .registry()
                .iter()
                .map(|&k| (k, c.sim().metrics().entries_for(k)))
                .collect()
        };
        prop_assert_eq!(entries(&full), entries(&compact));
        assert_compaction_invisible(&full, &compact);
    }
}

/// A clean-network scripted run where every put supersedes the single
/// key: the scale mode must compact each superseded version on every FS
/// that held its fragments, while staying observationally equivalent to
/// the full store.
#[test]
fn compaction_collapses_superseded_versions_invisibly() {
    let sc = Scenario {
        seed: 7,
        puts: 0,
        value_len: 4096,
        drop_pct: 0,
        dup_pct: 0,
        naive: false,
        outages: Vec::new(),
    };
    let (full, full_outcome) = run_update_heavy(&sc, 1, 8, ProtocolMode::optimized(), 0);
    let (compact, compact_outcome) = run_update_heavy(&sc, 1, 8, ProtocolMode::scale(), 0);
    assert_eq!(full_outcome, compact_outcome);
    assert_eq!(
        full.sim().events_processed(),
        compact.sim().events_processed(),
        "compaction is event-neutral"
    );
    let compacted = assert_compaction_invisible(&full, &compact);
    // 8 puts to one key leave 7 superseded versions, each compacted on
    // every FS that held fragments of it.
    assert!(
        compacted >= 7,
        "each superseded version compacted somewhere (got {compacted} entries)"
    );
}

// ---------------------------------------------------------------------------
// Delta coding: semantic equivalence against the full-encode path
// ---------------------------------------------------------------------------

/// The streaming workload [`run_update_heavy`] drives for `sc`, rebuilt
/// so tests can compute expected last-writer blobs.
fn update_heavy_workload(
    sc: &Scenario,
    key_space: u64,
    puts: u64,
    overwrite_delta_permille: u16,
) -> StreamingWorkload {
    StreamingWorkload {
        puts,
        key_space,
        value_len: sc.value_len,
        policy: pahoehoe::policy::Policy::paper_default(),
        seed: sc.seed,
        dist: KeyDistribution::Sequential,
        overwrite_delta_permille,
    }
}

/// Decodes every key's newest stored version from FS fragments and
/// asserts it equals the last writer's bytes from the workload stream —
/// the end-to-end correctness claim for delta resolution: whatever mix of
/// full and XOR-delta stripes travelled, the archive holds the blobs.
fn assert_last_writer_values(cluster: &Cluster, wl: &StreamingWorkload) {
    use pahoehoe::client::ClientOp;
    use std::collections::BTreeMap;

    let mut last_put: BTreeMap<pahoehoe::types::Key, u64> = BTreeMap::new();
    for i in 0..wl.puts {
        last_put.insert(wl.key_at(i), i);
    }
    let topo = cluster.topology().clone();
    let codec = erasure::Codec::new(4, 12).expect("paper-default policy");
    for (key, &i) in &last_put {
        let mut newest: Option<pahoehoe::types::ObjectVersion> = None;
        let mut frags: BTreeMap<u8, erasure::Fragment> = BTreeMap::new();
        for id in topo.all_fss() {
            let fs: &Fs = cluster.sim().actor(id);
            for ov in fs.known_versions().filter(|ov| ov.key == *key) {
                if newest.is_none_or(|n| ov.ts > n.ts) {
                    newest = Some(ov);
                    frags.clear();
                }
            }
        }
        let ov = newest.expect("every key was stored");
        for id in topo.all_fss() {
            let fs: &Fs = cluster.sim().actor(id);
            if let Some(entry) = fs.entry(ov) {
                for (&idx, frag) in &entry.fragments {
                    assert!(!frag.is_delta(), "stores hold dense resolved fragments");
                    frags.entry(idx).or_insert_with(|| frag.clone());
                }
            }
        }
        assert!(frags.len() >= 4, "newest {ov:?} is decodable");
        let subset: Vec<erasure::Fragment> = frags.into_values().take(4).collect();
        let decoded = codec.decode(&subset, wl.value_len).expect("decodes");
        let ClientOp::Put { value, .. } = wl.op_at(i) else {
            panic!("streams are puts")
        };
        assert_eq!(
            decoded, value,
            "key {key:?} must hold put {i}'s bytes (newest {ov:?})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Delta coding changes the put-path *representation* — windowed XOR
    /// stripes against the proxy's cached base instead of full fragments
    /// — but never the archive's contents. On a clean network with an
    /// overwrite-correlated stream, the delta run and the full-encode run
    /// both succeed every put, classify every version identically, and
    /// every key converges to its last writer's exact bytes — including
    /// when converged-version compaction reclaims superseded delta bases
    /// underneath the chain.
    #[test]
    fn delta_mode_archives_last_writer_values(
        sc in scenario_strategy(),
        key_space in 1u64..5,
        extra_puts in 2u64..11,
        compact: bool,
        permille in 1u16..30,
    ) {
        let sc = Scenario {
            drop_pct: 0,
            dup_pct: 0,
            outages: Vec::new(),
            ..sc
        };
        let puts = key_space + extra_puts; // every run revisits a key
        let delta_mode = ProtocolMode {
            compact_converged: compact,
            ..ProtocolMode::delta()
        };
        // The baseline differs from the delta run in exactly one switch,
        // so every report delta is attributable to delta coding. (The
        // compaction flag must match: released residuals are invisible
        // to the report's durability census by design.)
        let full_mode = ProtocolMode {
            delta: false,
            ..delta_mode
        };
        let (delta, delta_outcome) =
            run_update_heavy(&sc, key_space, puts, delta_mode, permille);
        let (full, full_outcome) = run_update_heavy(&sc, key_space, puts, full_mode, permille);
        prop_assert_eq!(delta_outcome, RunOutcome::PredicateSatisfied);
        prop_assert_eq!(full_outcome, RunOutcome::PredicateSatisfied);

        // Non-vacuity: overwrites of cached stripes really took the
        // delta path.
        let metrics = delta.sim().metrics().clone();
        prop_assert!(metrics.event("deltas_encoded") > 0, "{metrics:?}");
        prop_assert_eq!(metrics.event("delta_unresolvable"), 0);
        prop_assert_eq!(
            metrics.event("deltas_resolved") > 0,
            metrics.event("deltas_encoded") > 0
        );

        // Semantic equivalence: identical put ledger and AMR census.
        // (Raw digests legitimately differ — delta puts skip the
        // location-decision round, so the message flow changes.)
        let dr = delta.report(delta_outcome);
        let fr = full.report(full_outcome);
        prop_assert_eq!(dr.puts_attempted, fr.puts_attempted);
        prop_assert_eq!(dr.puts_succeeded, fr.puts_succeeded);
        prop_assert_eq!(dr.puts_succeeded, puts);
        prop_assert_eq!(dr.amr_versions, fr.amr_versions);
        prop_assert_eq!(dr.excess_amr, fr.excess_amr);
        prop_assert_eq!(dr.non_durable, fr.non_durable);
        prop_assert_eq!(dr.durable_not_amr, fr.durable_not_amr);
        if !compact {
            // Without compaction every version stays fully inspectable:
            // all must be durable and settled AMR.
            prop_assert_eq!(dr.non_durable, 0);
            prop_assert_eq!(dr.durable_not_amr, 0);
            prop_assert_eq!(dr.amr_versions as u64, puts);
        }

        let wl = update_heavy_workload(&sc, key_space, puts, permille);
        assert_last_writer_values(&delta, &wl);
        assert_last_writer_values(&full, &wl);
    }
}

/// A scripted delta chain long enough to cross the chain-depth bound
/// *and* run over an actively compacting store: twelve puts to one hot
/// key under `delta + compact_converged`. Superseded bases must compact
/// (the store stays bounded) while every resolved stripe still decodes
/// to the last writer's bytes.
#[test]
fn delta_chains_survive_base_compaction() {
    let sc = Scenario {
        seed: 7,
        puts: 0,
        value_len: 4096,
        drop_pct: 0,
        dup_pct: 0,
        naive: false,
        outages: Vec::new(),
    };
    let mode = ProtocolMode {
        compact_converged: true,
        ..ProtocolMode::delta()
    };
    let (cluster, outcome) = run_update_heavy(&sc, 1, 12, mode, 10);
    assert_eq!(outcome, RunOutcome::PredicateSatisfied);

    let compacted: usize = cluster
        .topology()
        .clone()
        .all_fss()
        .map(|id| cluster.sim().actor::<Fs>(id).compacted_count())
        .sum();
    assert!(compacted > 0, "superseded delta bases compacted");

    let metrics = cluster.sim().metrics().clone();
    // Twelve puts to one key: the first is a full encode and every
    // chain-depth re-anchor falls back, but most overwrites are deltas.
    assert!(metrics.event("deltas_encoded") >= 6, "{metrics:?}");
    assert_eq!(metrics.event("delta_unresolvable"), 0, "{metrics:?}");

    let report = cluster.report(outcome);
    assert_eq!(report.puts_succeeded, 12);

    let wl = update_heavy_workload(&sc, 1, 12, 10);
    assert_last_writer_values(&cluster, &wl);
}
