//! End-to-end protocol tests for a full simulated Pahoehoe cluster.

use pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout};
use pahoehoe::convergence::ConvergenceOptions;
use simnet::{FaultPlan, NetworkConfig, RunOutcome, SimDuration, SimTime};

fn small_workload(mut cfg: ClusterConfig, puts: usize) -> ClusterConfig {
    cfg.workload_puts = puts;
    cfg.workload_value_len = 8 * 1024;
    cfg
}

#[test]
fn failure_free_with_all_optimizations_needs_no_convergence() {
    let cfg = small_workload(ClusterConfig::paper_default(), 10);
    let mut cluster = Cluster::build(cfg, 1);
    let report = cluster.run_to_convergence();
    assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);
    assert_eq!(report.puts_attempted, 10);
    assert_eq!(report.puts_succeeded, 10);
    assert_eq!(report.amr_versions, 10);
    assert_eq!(report.excess_amr, 0);
    assert_eq!(report.non_durable, 0);
    assert_eq!(report.durable_not_amr, 0);
    // Put-AMR indications suppress all convergence traffic.
    let m = &report.metrics;
    assert_eq!(m.kind("KLSConvergeReq").count, 0);
    assert_eq!(m.kind("FSConvergeReq").count, 0);
    assert_eq!(m.kind("RetrieveFragReq").count, 0);
    // One AMR indication per sibling FS per put.
    assert_eq!(m.kind("AMRIndication").count, 10 * 6);
    // 12 fragments per put, each stored exactly once.
    assert_eq!(m.kind("StoreFragmentReq").count, 10 * 12);
}

#[test]
fn failure_free_naive_converges_with_probes() {
    let mut cfg = small_workload(ClusterConfig::paper_default(), 10);
    cfg.convergence = ConvergenceOptions::naive();
    let mut cluster = Cluster::build(cfg, 2);
    let report = cluster.run_to_convergence();
    assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);
    assert_eq!(report.amr_versions, 10);
    let m = &report.metrics;
    // Naive convergence probes every KLS and sibling FS.
    assert!(m.kind("KLSConvergeReq").count > 0);
    assert!(m.kind("FSConvergeReq").count > 0);
    assert_eq!(m.kind("AMRIndication").count, 0, "no indications in naive");
    // No fragment was ever re-transferred: convergence only verified.
    assert_eq!(m.kind("RetrieveFragReq").count, 0);
    assert_eq!(m.kind("SiblingStoreReq").count, 0);
}

#[test]
fn fs_outage_is_repaired_by_convergence() {
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let mut faults = FaultPlan::none();
    // One FS in DC0 is unreachable for 10 minutes from the start.
    faults.add_node_outage(layout.fs(0, 0), SimTime::ZERO, SimDuration::from_mins(10));
    let cfg = small_workload(ClusterConfig::paper_default(), 5);
    let mut cluster = Cluster::build_with_faults(cfg, 3, faults);
    let report = cluster.run_to_convergence();
    assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);
    assert_eq!(report.puts_succeeded, 5, "puts succeed despite the outage");
    assert_eq!(report.amr_versions, 5, "convergence repaired the outage");
    assert_eq!(report.durable_not_amr, 0);
    // Repair required fragment recovery traffic.
    assert!(report.metrics.kind("RetrieveFragReq").count > 0);
    // Convergence finished within minutes of the outage healing.
    assert!(report.sim_time >= SimTime::ZERO + SimDuration::from_mins(10));
    assert!(report.sim_time <= SimTime::ZERO + SimDuration::from_mins(60));
}

#[test]
fn wan_partition_preserves_availability_and_heals() {
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let mut faults = FaultPlan::none();
    // The proxy (and its client) sit in DC0, so they partition with it.
    let mut side_a = layout.dc_nodes(0);
    side_a.push(layout.proxy());
    side_a.push(layout.client());
    faults.add_partition(
        &side_a,
        &layout.dc_nodes(1),
        SimTime::ZERO,
        SimDuration::from_mins(10),
    );
    let cfg = small_workload(ClusterConfig::paper_default(), 5);
    let mut cluster = Cluster::build_with_faults(cfg, 4, faults);
    let report = cluster.run_to_convergence();
    assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);
    // Availability: puts succeed during the partition using only DC0
    // (the proxy's side), per the paper's single-DC success threshold.
    assert_eq!(report.puts_succeeded, 5);
    // Eventual consistency: after the partition heals every version is
    // repaired to full redundancy in DC1 too.
    assert_eq!(report.amr_versions, 5);
    assert!(
        report.metrics.kind("RetrieveFragReq").count > 0,
        "DC1 fragments must be regenerated from DC0 fragments"
    );
}

#[test]
fn lossy_network_eventually_converges() {
    let mut cfg = small_workload(ClusterConfig::paper_default(), 10);
    cfg.network = NetworkConfig::with_drop_rate(0.10);
    let mut cluster = Cluster::build(cfg, 5);
    let report = cluster.run_to_convergence();
    assert_eq!(report.outcome, RunOutcome::PredicateSatisfied);
    assert_eq!(report.puts_succeeded, 10);
    assert!(report.puts_attempted >= 10);
    assert_eq!(report.durable_not_amr, 0, "every durable version is AMR");
    assert!(report.metrics.dropped() > 0, "losses actually happened");
}

#[test]
fn get_after_convergence_returns_stored_values() {
    let cfg = ClusterConfig::paper_default();
    let mut cluster = Cluster::build(cfg, 6);
    cluster.put(b"alpha", vec![1u8; 5000]);
    cluster.put(b"beta", vec![2u8; 333]);
    let report = cluster.run_to_convergence();
    assert_eq!(report.amr_versions, 2);
    assert_eq!(cluster.get(b"alpha"), Some(vec![1u8; 5000]));
    assert_eq!(cluster.get(b"beta"), Some(vec![2u8; 333]));
    assert_eq!(cluster.get(b"gamma"), None, "unknown key fails cleanly");
}

#[test]
fn overwrites_return_the_latest_version() {
    let mut cluster = Cluster::build(ClusterConfig::paper_default(), 7);
    cluster.put(b"key", b"old".to_vec());
    cluster.run_to_convergence();
    cluster.put(b"key", b"new".to_vec());
    cluster.run_to_convergence();
    assert_eq!(cluster.get(b"key"), Some(b"new".to_vec()));
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let run = |seed| {
        let cfg = small_workload(ClusterConfig::paper_default(), 5);
        let mut cluster = Cluster::build(cfg, seed);
        let r = cluster.run_to_convergence();
        (
            r.sim_time,
            r.metrics.total_count(),
            r.metrics.total_bytes(),
            r.puts_attempted,
        )
    };
    assert_eq!(run(11), run(11));
    assert_ne!(run(11).1, 0);
}
