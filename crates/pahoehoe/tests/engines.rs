//! Differential tests across simulation engines.
//!
//! The same scenario is driven through all three engines:
//!
//! * **sequential-sharded vs parallel** (`Sharded { workers: 1 }` vs
//!   `workers: 2..=4`): byte-identical — same final server states, same
//!   event count, same virtual clock, same metrics. Worker count is pure
//!   execution strategy.
//! * **legacy vs sequential-sharded**: *AMR-outcome equivalent*. The
//!   sharded engine draws latencies and drops from per-shard RNG streams,
//!   so the event interleaving legitimately differs from the legacy
//!   single-RNG engine; what must agree is the protocol-level ledger —
//!   both converge, every put eventually succeeds, and every durable
//!   version settles at maximum redundancy. On clean networks (no loss,
//!   no faults) the full report matches field-for-field.

use pahoehoe::cluster::{Cluster, ClusterConfig, ClusterLayout, ConvergenceReport, EngineMode};
use pahoehoe::fs::Fs;
use pahoehoe::kls::Kls;
use pahoehoe::protocol::ProtocolMode;
use proptest::prelude::*;
use simnet::{FaultPlan, NetworkConfig, RunOutcome, SimDuration, SimTime};

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    puts: usize,
    value_len: usize,
    drop_pct: u8,
    dup_pct: u8,
    /// `(node index, start secs, duration secs)` outages.
    outages: Vec<(u32, u64, u64)>,
    /// Knock out every server of DC 1 for this many seconds from t=0.
    dc_outage_secs: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    let outage = (0u32..10, 0u64..60, 30u64..180);
    (
        any::<u64>(),
        1usize..4,
        (0usize..3).prop_map(|i| [512usize, 4096, 16 * 1024][i]),
        0u8..8,
        0u8..5,
        proptest::collection::vec(outage, 0..3),
        (0u64..3).prop_map(|s| s * 60),
    )
        .prop_map(
            |(seed, puts, value_len, drop_pct, dup_pct, outages, dc_outage_secs)| Scenario {
                seed,
                puts,
                value_len,
                drop_pct,
                dup_pct,
                outages,
                dc_outage_secs,
            },
        )
}

fn build(sc: &Scenario, engine: EngineMode) -> Cluster {
    let layout = ClusterLayout {
        dcs: 2,
        kls_per_dc: 2,
        fs_per_dc: 3,
    };
    let mut cfg = ClusterConfig::paper_default();
    cfg.layout = layout;
    cfg.engine = engine;
    cfg.protocol = ProtocolMode::optimized();
    cfg.workload_puts = sc.puts;
    cfg.workload_value_len = sc.value_len;
    cfg.network = NetworkConfig {
        drop_rate: f64::from(sc.drop_pct) / 100.0,
        duplicate_rate: f64::from(sc.dup_pct) / 100.0,
        ..NetworkConfig::paper_default()
    };
    let mut faults = FaultPlan::none();
    for &(node, start, dur) in &sc.outages {
        faults.add_node_outage(
            simnet::NodeId::new(node),
            SimTime::ZERO + SimDuration::from_secs(start),
            SimDuration::from_secs(dur),
        );
    }
    if sc.dc_outage_secs > 0 {
        for node in layout.dc_nodes(1) {
            faults.add_node_outage(
                node,
                SimTime::ZERO,
                SimDuration::from_secs(sc.dc_outage_secs),
            );
        }
    }
    Cluster::build_with_faults(cfg, sc.seed, faults)
}

/// Engine-agnostic canonical rendering of every server's final state
/// (mirrors the differential suite's digest, but through [`Cluster`]'s
/// view-based accessors so it works under any engine).
fn state_digest(cluster: &Cluster) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let topo = cluster.topology().clone();
    for id in topo.all_klss() {
        let kls: &Kls = cluster.kls(id);
        write!(out, "KLS {id:?}:").unwrap();
        let mut ovs: Vec<_> = kls.known_versions().collect();
        ovs.sort();
        for ov in ovs {
            write!(out, " {ov:?}={:?}", kls.meta(ov).expect("known")).unwrap();
        }
        out.push('\n');
    }
    for id in topo.all_fss() {
        let fs: &Fs = cluster.fs(id);
        write!(out, "FS {id:?}:").unwrap();
        let mut ovs: Vec<_> = fs.known_versions().collect();
        ovs.sort();
        for ov in ovs {
            write!(
                out,
                " {ov:?}[v={} settled={:?} entry={:?}]",
                fs.verified(ov),
                fs.amr_settled_at(ov),
                fs.entry(ov),
            )
            .unwrap();
        }
        out.push('\n');
    }
    out
}

/// Full byte-level digest for the sharded-vs-parallel comparison.
fn full_digest(cluster: &Cluster) -> String {
    format!(
        "now={} events={} metrics={:?}\n{}",
        cluster.view().now(),
        cluster.view().events_processed(),
        cluster.view().metrics(),
        state_digest(cluster)
    )
}

fn run(sc: &Scenario, engine: EngineMode) -> (ConvergenceReport, String) {
    let mut cluster = build(sc, engine);
    let report = cluster.run_to_convergence();
    let digest = full_digest(&cluster);
    (report, digest)
}

/// The AMR-outcome ledger both engine families must agree on for any
/// converging scenario, no matter how their RNG streams interleave.
fn assert_amr_outcome_equivalent(sc: &Scenario, a: &ConvergenceReport, b: &ConvergenceReport) {
    assert_eq!(a.outcome, RunOutcome::PredicateSatisfied, "{sc:?}");
    assert_eq!(b.outcome, RunOutcome::PredicateSatisfied, "{sc:?}");
    // The client retries every put until the proxy reports success, so
    // convergence implies a full success ledger on both engines.
    assert_eq!(a.puts_succeeded, sc.puts as u64, "{sc:?}");
    assert_eq!(b.puts_succeeded, sc.puts as u64, "{sc:?}");
    for (label, r) in [("a", a), ("b", b)] {
        // Termination condition: nothing durable is left un-settled.
        assert_eq!(r.durable_not_amr, 0, "engine {label}: {sc:?}");
        // Every successful put's version is AMR; failed attempts account
        // for exactly the excess-AMR plus non-durable remainder.
        assert_eq!(
            r.amr_versions as u64,
            r.puts_succeeded + r.excess_amr as u64,
            "engine {label}: {sc:?}"
        );
        assert!(
            r.puts_attempted >= r.puts_succeeded,
            "engine {label}: {sc:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Tentpole determinism, protocol edition: the parallel engine at any
    /// worker count is byte-identical to sequential-sharded — same final
    /// KLS/FS states, event count, clock and metrics — over random
    /// workloads, loss rates, node outages and whole-DC outages.
    #[test]
    fn parallel_workers_are_byte_invisible(sc in scenario_strategy()) {
        let (seq_report, seq_digest) = run(&sc, EngineMode::Sharded { workers: 1 });
        for workers in 2..=4usize {
            let (report, digest) = run(&sc, EngineMode::Sharded { workers });
            prop_assert_eq!(&digest, &seq_digest, "workers={} diverged", workers);
            prop_assert_eq!(report.outcome, seq_report.outcome);
            prop_assert_eq!(report.puts_attempted, seq_report.puts_attempted);
            prop_assert_eq!(&report.time_to_amr, &seq_report.time_to_amr);
        }
    }

    /// Differential oracle against the legacy engine: the sharded engine
    /// reaches the same AMR outcome on every scenario, including lossy
    /// networks, per-node fault plans and whole-DC outages.
    #[test]
    fn sharded_engine_is_amr_outcome_equivalent_to_legacy(sc in scenario_strategy()) {
        let (legacy, _) = run(&sc, EngineMode::Legacy);
        let (sharded, _) = run(&sc, EngineMode::Sharded { workers: 1 });
        assert_amr_outcome_equivalent(&sc, &legacy, &sharded);
    }

    /// On a clean fault-free network the engines' reports agree
    /// field-for-field: no drops means no retries, no excess AMR and no
    /// non-durable versions on either engine.
    #[test]
    fn clean_network_reports_match_exactly(
        seed: u64,
        puts in 1usize..4,
        value_len in (0usize..3).prop_map(|i| [512usize, 4096, 16 * 1024][i]),
    ) {
        let sc = Scenario {
            seed,
            puts,
            value_len,
            drop_pct: 0,
            dup_pct: 0,
            outages: Vec::new(),
            dc_outage_secs: 0,
        };
        let (legacy, _) = run(&sc, EngineMode::Legacy);
        let (sharded, _) = run(&sc, EngineMode::Sharded { workers: 1 });
        for r in [&legacy, &sharded] {
            prop_assert_eq!(r.outcome, RunOutcome::PredicateSatisfied);
            prop_assert_eq!(r.puts_attempted, puts as u64);
            prop_assert_eq!(r.puts_succeeded, puts as u64);
            prop_assert_eq!(r.amr_versions, puts);
            prop_assert_eq!(r.excess_amr, 0);
            prop_assert_eq!(r.non_durable, 0);
            prop_assert_eq!(r.durable_not_amr, 0);
        }
    }
}

/// Scripted whole-DC blackout: DC 1 is dark for the first five minutes
/// while the client writes through DC 0. Both engine families converge
/// with a full success ledger and the parallel engine stays
/// byte-identical to sequential-sharded through the outage.
#[test]
fn dc_outage_converges_on_every_engine() {
    let sc = Scenario {
        seed: 42,
        puts: 3,
        value_len: 4096,
        drop_pct: 2,
        dup_pct: 0,
        outages: Vec::new(),
        dc_outage_secs: 300,
    };
    let (legacy, _) = run(&sc, EngineMode::Legacy);
    let (sharded, sharded_digest) = run(&sc, EngineMode::Sharded { workers: 1 });
    assert_amr_outcome_equivalent(&sc, &legacy, &sharded);
    let (parallel, parallel_digest) = run(&sc, EngineMode::Sharded { workers: 4 });
    assert_eq!(parallel_digest, sharded_digest);
    assert_eq!(parallel.outcome, sharded.outcome);
}

/// The engine-mode CLI spelling round-trips.
#[test]
fn engine_mode_parses_cli_spellings() {
    assert_eq!(EngineMode::parse("legacy", 4), Some(EngineMode::Legacy));
    assert_eq!(
        EngineMode::parse("sharded", 4),
        Some(EngineMode::Sharded { workers: 1 })
    );
    assert_eq!(
        EngineMode::parse("parallel", 4),
        Some(EngineMode::Sharded { workers: 4 })
    );
    assert_eq!(
        EngineMode::parse("parallel", 0),
        Some(EngineMode::Sharded { workers: 2 })
    );
    assert_eq!(EngineMode::parse("turbo", 1), None);
    for (mode, label) in [
        (EngineMode::Legacy, "legacy"),
        (EngineMode::Sharded { workers: 1 }, "sharded"),
        (EngineMode::Sharded { workers: 4 }, "parallel"),
    ] {
        assert_eq!(mode.label(), label);
        assert_eq!(EngineMode::parse(label, mode.workers()), Some(mode));
    }
}
