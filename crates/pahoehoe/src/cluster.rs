//! Cluster assembly and the run-to-convergence harness.
//!
//! [`Cluster`] wires KLSs, FSs, a proxy and a scripted client into a
//! [`simnet::Simulation`] with the paper's topology defaults (two data
//! centers, two KLSs + three FSs each) and runs it until **every object
//! version that can achieve AMR has done so** — the paper's experiment
//! termination condition (§5.1) — then classifies the outcome
//! ([`ConvergenceReport`]).

use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::Arc;

use bytes::Bytes;
use simnet::{
    FaultPlan, Metrics, NetworkConfig, NodeId, RunOutcome, SimDuration, SimTime, Simulation,
};

use crate::analysis;
use crate::client::{Client, ClientOp, GetOutcome};
use crate::convergence::ConvergenceOptions;
use crate::fs::Fs;
use crate::kls::Kls;
use crate::messages::Message;
use crate::policy::Policy;
use crate::protocol::ProtocolMode;
use crate::proxy::{Proxy, ProxyConfig};
use crate::topology::{DataCenterId, Topology};
use crate::types::{Key, ObjectVersion};

/// Deterministic node-id layout for a cluster shape, computable *before*
/// the simulation is built — fault plans (which need node ids) can then be
/// constructed up front.
///
/// Per data center, KLSs come first, then FSs; the proxy and the client
/// take the last two ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterLayout {
    /// Number of data centers.
    pub dcs: usize,
    /// KLSs per data center.
    pub kls_per_dc: usize,
    /// FSs per data center.
    pub fs_per_dc: usize,
}

impl ClusterLayout {
    fn per_dc(&self) -> usize {
        self.kls_per_dc + self.fs_per_dc
    }

    /// Node id of KLS `i` in data center `dc`.
    pub fn kls(&self, dc: usize, i: usize) -> NodeId {
        assert!(dc < self.dcs && i < self.kls_per_dc);
        NodeId::new((dc * self.per_dc() + i) as u32)
    }

    /// Node id of FS `i` in data center `dc`.
    pub fn fs(&self, dc: usize, i: usize) -> NodeId {
        assert!(dc < self.dcs && i < self.fs_per_dc);
        NodeId::new((dc * self.per_dc() + self.kls_per_dc + i) as u32)
    }

    /// Node id of the proxy.
    pub fn proxy(&self) -> NodeId {
        NodeId::new((self.dcs * self.per_dc()) as u32)
    }

    /// Node id of the client.
    pub fn client(&self) -> NodeId {
        NodeId::new((self.dcs * self.per_dc() + 1) as u32)
    }

    /// Every node (KLS and FS) of one data center — handy for building
    /// partition fault plans.
    pub fn dc_nodes(&self, dc: usize) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = (0..self.kls_per_dc).map(|i| self.kls(dc, i)).collect();
        v.extend((0..self.fs_per_dc).map(|i| self.fs(dc, i)));
        v
    }

    /// A network model with distinct LAN and WAN latency classes: links
    /// *within* each data center (plus the primary proxy/client, which
    /// live in DC 0) use the LAN range; everything else — the cross-DC
    /// links — uses the default range of `base`. An opt-in refinement of
    /// the paper's single uniform distribution, used by ablations.
    pub fn lan_wan_network(
        &self,
        base: simnet::NetworkConfig,
        lan_min: SimDuration,
        lan_max: SimDuration,
    ) -> simnet::NetworkConfig {
        let mut overrides = Vec::new();
        for dc in 0..self.dcs {
            let mut group = self.dc_nodes(dc);
            if dc == 0 {
                group.push(self.proxy());
                group.push(self.client());
            }
            overrides.push(simnet::LatencyOverride {
                group_a: group.clone(),
                group_b: group,
                latency_min: lan_min,
                latency_max: lan_max,
            });
        }
        simnet::NetworkConfig {
            latency_overrides: overrides,
            ..base
        }
    }
}

/// An additional proxy/client pair beyond the primary one — used to
/// exercise concurrent puts from different data centers with loosely
/// synchronized clocks (§3.1). Extra pairs take the node ids following
/// [`ClusterLayout::client`], in order.
#[derive(Debug, Clone)]
pub struct ExtraProxy {
    /// Which data center hosts this proxy (its puts' home DC).
    pub dc: usize,
    /// Clock skew of this proxy's loosely synchronized clock relative to
    /// simulated time.
    pub clock_skew: SimDuration,
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Cluster shape.
    pub layout: ClusterLayout,
    /// Additional proxy/client pairs (empty by default; the paper's
    /// experiments use a single proxy).
    pub extra_proxies: Vec<ExtraProxy>,
    /// Default durability policy for puts.
    pub policy: Policy,
    /// Convergence configuration for every FS (and the proxy's Put-AMR
    /// switch).
    pub convergence: ConvergenceOptions,
    /// Protocol hot-path switches (shared metadata, batched round
    /// accounting) for every actor in the cluster. Defaults to the
    /// process-wide switches (see [`crate::protocol`]); pin it explicitly
    /// in tests that compare modes so parallel tests cannot race.
    pub protocol: ProtocolMode,
    /// Proxy timeouts and clock skew.
    pub proxy: ProxyConfig,
    /// Network latency and loss model.
    pub network: NetworkConfig,
    /// Size of the standard workload (number of puts; 0 = no scripted
    /// workload, drive the cluster via [`Cluster::put`]/[`Cluster::get`]).
    pub workload_puts: usize,
    /// Value size for the standard workload.
    pub workload_value_len: usize,
    /// Rounds of the standard workload: each round puts every key once
    /// with the same key-derived contents, so `> 1` turns the insert-only
    /// script into an overwrite stream (the shape delta coding targets)
    /// without breaking byte-level durability checks. `1` is the paper's
    /// workload, byte-identical to the historical script.
    pub workload_rounds: usize,
    /// An explicit client script overriding the standard workload — e.g.
    /// built with [`Workload`](crate::workload::Workload) for non-uniform
    /// object sizes.
    pub custom_workload: Option<Vec<ClientOp>>,
    /// A constant-memory streamed workload (takes precedence over the
    /// standard workload, yields to `custom_workload`): the client
    /// synthesizes each put from `(seed, index)` instead of materializing
    /// a script — the scale harness's million-key mode.
    pub streaming_workload: Option<crate::workload::StreamingWorkload>,
    /// Virtual-time safety deadline for [`Cluster::run_to_convergence`].
    pub max_sim_time: SimDuration,
}

impl ClusterConfig {
    /// The paper's experimental setup (§5.1): two data centers with two
    /// KLSs and three FSs each, the default `(4, 12)` policy, 10–30 ms
    /// uniform latency, all optimizations on, no scripted workload.
    pub fn paper_default() -> Self {
        ClusterConfig {
            layout: ClusterLayout {
                dcs: 2,
                kls_per_dc: 2,
                fs_per_dc: 3,
            },
            extra_proxies: Vec::new(),
            policy: Policy::paper_default(),
            convergence: ConvergenceOptions::all(),
            protocol: ProtocolMode::current(),
            proxy: ProxyConfig::default(),
            network: NetworkConfig::paper_default(),
            workload_puts: 0,
            workload_value_len: 100 * 1024,
            workload_rounds: 1,
            custom_workload: None,
            streaming_workload: None,
            max_sim_time: SimDuration::from_secs(24 * 3600),
        }
    }

    /// The paper's standard workload on top of
    /// [`paper_default`](Self::paper_default): 100 puts of 100 KiB.
    pub fn paper_workload() -> Self {
        ClusterConfig {
            workload_puts: 100,
            ..ClusterConfig::paper_default()
        }
    }
}

/// Outcome classification after a run (the quantities the paper's
/// evaluation reports).
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// Why the run stopped (`PredicateSatisfied` = converged).
    pub outcome: RunOutcome,
    /// Virtual time at stop.
    pub sim_time: SimTime,
    /// Put attempts the client issued (Fig. 9's "puts attempted").
    pub puts_attempted: u64,
    /// Puts the client saw succeed.
    pub puts_succeeded: u64,
    /// Object versions that are globally at maximum redundancy.
    pub amr_versions: usize,
    /// AMR versions whose put the client saw *fail* (Fig. 9's "excess AMR
    /// object versions").
    pub excess_amr: usize,
    /// Versions that never durably stored `k` fragments (Fig. 9's
    /// "non-durable object versions"); they can never achieve AMR.
    pub non_durable: usize,
    /// Durable versions not yet AMR (zero whenever `outcome` is
    /// `PredicateSatisfied`).
    pub durable_not_amr: usize,
    /// Per-version time from the put's timestamp until the *last* sibling
    /// FS settled the version as AMR, sorted ascending. Empty when no
    /// version is AMR. (Proxy clock skew shifts the origin; with the
    /// default zero skew this is true time-to-full-redundancy.)
    pub time_to_amr: Vec<SimDuration>,
    /// Traffic accounting for the whole run.
    pub metrics: Metrics,
}

/// A fully wired Pahoehoe cluster inside a deterministic simulation.
pub struct Cluster {
    sim: Simulation<Message>,
    layout: ClusterLayout,
    topo: Arc<Topology>,
    config: ClusterConfig,
    /// `(proxy, client)` node ids of the extra pairs, in config order.
    extra: Vec<(NodeId, NodeId)>,
}

impl Cluster {
    /// Builds a cluster with no injected faults.
    pub fn build(config: ClusterConfig, seed: u64) -> Self {
        Cluster::build_with_faults(config, seed, FaultPlan::none())
    }

    /// Builds a cluster with a fault plan (node outages, partitions). Use
    /// [`ClusterLayout`] to compute the node ids the plan needs.
    pub fn build_with_faults(config: ClusterConfig, seed: u64, faults: FaultPlan) -> Self {
        let layout = config.layout;
        let mut sim = Simulation::with_network(seed, config.network.clone(), faults);

        let topo = Topology::new(
            (0..layout.dcs)
                .map(|dc| {
                    (
                        (0..layout.kls_per_dc).map(|i| layout.kls(dc, i)).collect(),
                        (0..layout.fs_per_dc).map(|i| layout.fs(dc, i)).collect(),
                    )
                })
                .collect(),
        );

        for dc in 0..layout.dcs {
            let dc_id = DataCenterId::new(dc as u8);
            for _ in 0..layout.kls_per_dc {
                let id = sim.add_actor(Kls::with_mode(topo.clone(), dc_id, config.protocol));
                debug_assert!(topo.klss_in(dc_id).contains(&id));
            }
            for _ in 0..layout.fs_per_dc {
                let id = sim.add_actor(Fs::with_mode(
                    topo.clone(),
                    dc_id,
                    config.convergence.clone(),
                    config.protocol,
                ));
                debug_assert!(topo.fss_in(dc_id).contains(&id));
            }
        }

        let proxy_cfg = ProxyConfig {
            put_amr_indication: config.convergence.put_amr_indication,
            ..config.proxy.clone()
        };
        let proxy_id = sim.add_actor(Proxy::with_mode(
            topo.clone(),
            DataCenterId::new(0),
            0,
            proxy_cfg,
            config.protocol,
        ));
        debug_assert_eq!(proxy_id, layout.proxy());

        let client = match (&config.custom_workload, &config.streaming_workload) {
            (Some(script), _) => Client::new(proxy_id, script.clone()),
            (None, Some(stream)) => Client::streaming(proxy_id, stream.clone()),
            (None, None) => Client::standard_workload_rounds(
                proxy_id,
                config.workload_puts,
                config.workload_value_len,
                config.policy,
                config.workload_rounds,
            ),
        };
        let client_id = sim.add_actor(client);
        debug_assert_eq!(client_id, layout.client());

        // Extra proxy/client pairs (concurrent-writer scenarios).
        let mut extra = Vec::new();
        for (i, spec) in config.extra_proxies.iter().enumerate() {
            assert!(spec.dc < layout.dcs, "extra proxy DC out of range");
            let proxy_cfg = ProxyConfig {
                put_amr_indication: config.convergence.put_amr_indication,
                clock_skew: spec.clock_skew,
                ..config.proxy.clone()
            };
            let p = sim.add_actor(Proxy::with_mode(
                topo.clone(),
                DataCenterId::new(spec.dc as u8),
                1 + i as u32,
                proxy_cfg,
                config.protocol,
            ));
            let c = sim.add_actor(Client::new(p, Vec::new()));
            extra.push((p, c));
        }

        Cluster {
            sim,
            layout,
            topo,
            config,
            extra,
        }
    }

    /// The underlying simulation.
    pub fn sim(&self) -> &Simulation<Message> {
        &self.sim
    }

    /// Mutable access to the underlying simulation — e.g. to advance
    /// virtual time into a scheduled fault window with
    /// [`Simulation::run_until_time`].
    pub fn sim_mut(&mut self) -> &mut Simulation<Message> {
        &mut self.sim
    }

    /// The cluster's node-id layout.
    pub fn layout(&self) -> ClusterLayout {
        self.layout
    }

    /// The shared topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Borrows a KLS actor.
    pub fn kls(&self, id: NodeId) -> &Kls {
        self.sim.actor(id)
    }

    /// Borrows an FS actor.
    pub fn fs(&self, id: NodeId) -> &Fs {
        self.sim.actor(id)
    }

    /// Borrows the proxy actor.
    pub fn proxy(&self) -> &Proxy {
        self.sim.actor(self.layout.proxy())
    }

    /// Borrows the client actor.
    pub fn client(&self) -> &Client {
        self.sim.actor(self.layout.client())
    }

    /// Node ids of every client: the primary first, then the extras in
    /// [`ClusterConfig::extra_proxies`] order.
    pub fn client_ids(&self) -> Vec<NodeId> {
        let mut v = vec![self.layout.client()];
        v.extend(self.extra.iter().map(|&(_, c)| c));
        v
    }

    /// The `(proxy, client)` node ids of extra pair `i`.
    pub fn extra_pair(&self, i: usize) -> (NodeId, NodeId) {
        self.extra[i]
    }

    /// Enqueues a put of `value` under the key named `name` (retried by
    /// the client until it succeeds) and wakes the client.
    pub fn put(&mut self, name: &[u8], value: Vec<u8>) {
        let client = self.layout.client();
        self.put_as(client, name, value);
    }

    /// Like [`put`](Self::put), issued through extra pair `i`'s client —
    /// a writer in another data center with its own proxy clock.
    pub fn put_from(&mut self, i: usize, name: &[u8], value: Vec<u8>) {
        let client = self.extra[i].1;
        self.put_as(client, name, value);
    }

    fn put_as(&mut self, client_id: NodeId, name: &[u8], value: Vec<u8>) {
        let key = Key::from_name(name);
        let policy = self.config.policy;
        self.sim
            .actor_mut::<Client>(client_id)
            .enqueue(ClientOp::Put {
                key,
                value: Bytes::from(value),
                policy,
            });
        self.sim.schedule_timer(client_id, SimDuration::ZERO, 1);
    }

    /// Runs a get for the key named `name` to completion and returns the
    /// value, or `None` if the get failed/aborted.
    pub fn get(&mut self, name: &[u8]) -> Option<Vec<u8>> {
        let client = self.layout.client();
        self.get_as(client, name)
    }

    /// Like [`get`](Self::get), issued through extra pair `i`'s client.
    pub fn get_from(&mut self, i: usize, name: &[u8]) -> Option<Vec<u8>> {
        let client = self.extra[i].1;
        self.get_as(client, name)
    }

    fn get_as(&mut self, client_id: NodeId, name: &[u8]) -> Option<Vec<u8>> {
        let key = Key::from_name(name);
        let done_before = self.sim.actor::<Client>(client_id).gets_done().len();
        self.sim
            .actor_mut::<Client>(client_id)
            .enqueue(ClientOp::Get { key });
        self.sim.schedule_timer(client_id, SimDuration::ZERO, 1);
        self.sim
            .run_until(|sim| sim.actor::<Client>(client_id).gets_done().len() > done_before);
        let outcome: &GetOutcome = &self.sim.actor::<Client>(client_id).gets_done()[done_before];
        debug_assert_eq!(outcome.key, key);
        outcome.result.as_ref().map(|(_, v)| v.to_vec())
    }

    /// Runs until every object version that can achieve AMR has done so
    /// and no fragment server has convergence work left for a durable
    /// version (the paper's termination condition), then classifies the
    /// outcome.
    ///
    /// Also stops at the configured
    /// [`max_sim_time`](ClusterConfig::max_sim_time) as a safety net; the
    /// report's `outcome` distinguishes the cases.
    pub fn run_to_convergence(&mut self) -> ConvergenceReport {
        let client_ids = self.client_ids();
        let fss: Vec<NodeId> = self.topo.all_fss().collect();
        let deadline = SimTime::ZERO + self.config.max_sim_time;
        // The convergence check walks every store, so gate it to at most
        // once per half simulated second.
        let next_check = Cell::new(0u64);
        let check_interval = SimDuration::from_millis(500).as_micros();

        let outcome = self.sim.run_until(|sim| {
            if sim.now() >= deadline {
                return true;
            }
            if sim.now().as_micros() < next_check.get() {
                return false;
            }
            next_check.set(sim.now().as_micros() + check_interval);
            if !client_ids.iter().all(|&c| sim.actor::<Client>(c).is_done()) {
                return false;
            }
            let durable = analysis::durable_versions(sim, &fss);
            fss.iter().all(|&fs| {
                sim.actor::<Fs>(fs)
                    .pending_versions()
                    .all(|ov| !durable.contains(&ov))
            })
        });
        self.report(outcome)
    }

    /// Builds a [`ConvergenceReport`] for the current state, aggregating
    /// over every client (primary plus extras).
    pub fn report(&self, outcome: RunOutcome) -> ConvergenceReport {
        let fss: Vec<NodeId> = self.topo.all_fss().collect();
        let klss: Vec<NodeId> = self.topo.all_klss().collect();

        let mut success_versions: BTreeSet<ObjectVersion> = BTreeSet::new();
        let mut client_versions: BTreeSet<ObjectVersion> = BTreeSet::new();
        let mut puts_attempted = 0;
        let mut puts_succeeded = 0;
        for id in self.client_ids() {
            let client: &Client = self.sim.actor(id);
            success_versions.extend(client.success_versions());
            client_versions.extend(client.success_versions());
            client_versions.extend(client.failed_versions());
            puts_attempted += client.puts_attempted();
            puts_succeeded += client.puts_succeeded();
        }

        let durable = analysis::durable_versions(&self.sim, &fss);
        let all_versions = analysis::known_versions(&self.sim, &klss, &fss)
            .union(&client_versions)
            .copied()
            .collect::<BTreeSet<ObjectVersion>>();

        let mut amr_versions = 0;
        let mut excess_amr = 0;
        let mut durable_not_amr = 0;
        let mut non_durable = 0;
        let mut time_to_amr = Vec::new();
        for &ov in &all_versions {
            let amr = analysis::is_amr(&self.sim, &self.topo, ov);
            if amr {
                amr_versions += 1;
                // Settled when the last sibling FS stopped convergence
                // work for it (verified or indicated).
                let settled = fss
                    .iter()
                    .filter_map(|&fs| self.sim.actor::<Fs>(fs).amr_settled_at(ov))
                    .max();
                if let Some(settled) = settled {
                    time_to_amr.push(SimDuration::from_micros(
                        settled.as_micros().saturating_sub(ov.ts.clock_micros()),
                    ));
                }
                // Excess AMR (Fig. 9): the version converged but its put
                // was never acknowledged successful to the client (failed
                // answer, or the answer itself was lost).
                if !success_versions.contains(&ov) {
                    excess_amr += 1;
                }
            } else if durable.contains(&ov) {
                durable_not_amr += 1;
            }
            if !durable.contains(&ov) {
                non_durable += 1;
            }
        }

        time_to_amr.sort_unstable();
        ConvergenceReport {
            outcome,
            sim_time: self.sim.now(),
            puts_attempted,
            puts_succeeded,
            amr_versions,
            excess_amr,
            non_durable,
            durable_not_amr,
            time_to_amr,
            metrics: self.sim.metrics().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> ClusterLayout {
        ClusterLayout {
            dcs: 2,
            kls_per_dc: 2,
            fs_per_dc: 3,
        }
    }

    #[test]
    fn layout_ids_are_dense_and_disjoint() {
        let l = layout();
        let mut ids = Vec::new();
        for dc in 0..2 {
            for i in 0..2 {
                ids.push(l.kls(dc, i));
            }
            for i in 0..3 {
                ids.push(l.fs(dc, i));
            }
        }
        ids.push(l.proxy());
        ids.push(l.client());
        let expected: Vec<NodeId> = (0..12).map(|i| NodeId::new(i as u32)).collect();
        ids.sort();
        assert_eq!(ids, expected, "dense, disjoint, in build order");
    }

    #[test]
    fn dc_nodes_lists_servers_only() {
        let l = layout();
        let nodes = l.dc_nodes(1);
        assert_eq!(nodes.len(), 5);
        assert!(!nodes.contains(&l.proxy()));
        assert!(!nodes.contains(&l.client()));
    }

    #[test]
    #[should_panic]
    fn layout_bounds_are_checked() {
        let _ = layout().fs(0, 3);
    }

    #[test]
    fn built_cluster_matches_layout_and_topology() {
        let cluster = Cluster::build(ClusterConfig::paper_default(), 1);
        let l = cluster.layout();
        let topo = cluster.topology();
        assert_eq!(topo.all_klss().count(), 4);
        assert_eq!(topo.all_fss().count(), 6);
        for dc in 0..2 {
            for i in 0..2 {
                assert!(topo.is_kls(l.kls(dc, i)));
            }
            for i in 0..3 {
                assert!(!topo.is_kls(l.fs(dc, i)));
            }
        }
        assert_eq!(cluster.client_ids(), vec![l.client()]);
        assert_eq!(cluster.sim().actor_count(), 12);
    }

    #[test]
    fn extra_proxies_extend_the_id_space() {
        let mut cfg = ClusterConfig::paper_default();
        cfg.extra_proxies = vec![
            ExtraProxy {
                dc: 1,
                clock_skew: SimDuration::ZERO,
            },
            ExtraProxy {
                dc: 0,
                clock_skew: SimDuration::from_secs(1),
            },
        ];
        let cluster = Cluster::build(cfg, 1);
        let l = cluster.layout();
        let base = l.client().index() as u32;
        assert_eq!(
            cluster.extra_pair(0),
            (NodeId::new(base + 1), NodeId::new(base + 2))
        );
        assert_eq!(
            cluster.extra_pair(1),
            (NodeId::new(base + 3), NodeId::new(base + 4))
        );
        assert_eq!(cluster.client_ids().len(), 3);
    }

    #[test]
    fn lan_wan_network_overrides_intra_dc_links_only() {
        let l = layout();
        let net = l.lan_wan_network(
            NetworkConfig::paper_default(),
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        assert_eq!(net.latency_overrides.len(), 2);
        // DC0's override includes the proxy and client.
        assert!(net.latency_overrides[0].group_a.contains(&l.proxy()));
        assert!(net.latency_overrides[0].group_a.contains(&l.client()));
        assert!(!net.latency_overrides[1].group_a.contains(&l.proxy()));
        // Defaults untouched.
        assert_eq!(net.latency_min, SimDuration::from_millis(10));
    }

    #[test]
    fn empty_cluster_report_is_all_zero() {
        let cluster = Cluster::build(ClusterConfig::paper_default(), 3);
        let r = cluster.report(RunOutcome::Quiescent);
        assert_eq!(r.amr_versions, 0);
        assert_eq!(r.puts_attempted, 0);
        assert_eq!(r.non_durable, 0);
        assert!(r.time_to_amr.is_empty());
    }

    #[test]
    #[should_panic(expected = "extra proxy DC out of range")]
    fn extra_proxy_dc_is_validated() {
        let mut cfg = ClusterConfig::paper_default();
        cfg.extra_proxies = vec![ExtraProxy {
            dc: 9,
            clock_skew: SimDuration::ZERO,
        }];
        let _ = Cluster::build(cfg, 1);
    }
}
