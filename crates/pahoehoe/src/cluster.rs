//! Cluster assembly and the run-to-convergence harness.
//!
//! [`Cluster`] wires KLSs, FSs, a proxy and a scripted client into a
//! [`simnet::Simulation`] with the paper's topology defaults (two data
//! centers, two KLSs + three FSs each) and runs it until **every object
//! version that can achieve AMR has done so** — the paper's experiment
//! termination condition (§5.1) — then classifies the outcome
//! ([`ConvergenceReport`]).

use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::Arc;

use bytes::Bytes;
use simnet::{
    FaultPlan, Metrics, NetworkConfig, NodeId, RunOutcome, ShardPlan, ShardedSimulation,
    SimDuration, SimTime, SimView, Simulation,
};

use crate::analysis;
use crate::client::{Client, ClientOp, GetOutcome};
use crate::convergence::ConvergenceOptions;
use crate::fs::Fs;
use crate::kls::Kls;
use crate::messages::Message;
use crate::policy::Policy;
use crate::protocol::ProtocolMode;
use crate::proxy::{Proxy, ProxyConfig};
use crate::repair::RepairActor;
use crate::topology::{DataCenterId, Topology};
use crate::types::{Key, ObjectVersion};

/// Deterministic node-id layout for a cluster shape, computable *before*
/// the simulation is built — fault plans (which need node ids) can then be
/// constructed up front.
///
/// Per data center, KLSs come first, then FSs; the proxy and the client
/// take the last two ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterLayout {
    /// Number of data centers.
    pub dcs: usize,
    /// KLSs per data center.
    pub kls_per_dc: usize,
    /// FSs per data center.
    pub fs_per_dc: usize,
}

impl ClusterLayout {
    fn per_dc(&self) -> usize {
        self.kls_per_dc + self.fs_per_dc
    }

    /// Node id of KLS `i` in data center `dc`.
    pub fn kls(&self, dc: usize, i: usize) -> NodeId {
        assert!(dc < self.dcs && i < self.kls_per_dc);
        NodeId::new((dc * self.per_dc() + i) as u32)
    }

    /// Node id of FS `i` in data center `dc`.
    pub fn fs(&self, dc: usize, i: usize) -> NodeId {
        assert!(dc < self.dcs && i < self.fs_per_dc);
        NodeId::new((dc * self.per_dc() + self.kls_per_dc + i) as u32)
    }

    /// Node id of the proxy.
    pub fn proxy(&self) -> NodeId {
        NodeId::new((self.dcs * self.per_dc()) as u32)
    }

    /// Node id of the client.
    pub fn client(&self) -> NodeId {
        NodeId::new((self.dcs * self.per_dc() + 1) as u32)
    }

    /// Every node (KLS and FS) of one data center — handy for building
    /// partition fault plans.
    pub fn dc_nodes(&self, dc: usize) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = (0..self.kls_per_dc).map(|i| self.kls(dc, i)).collect();
        v.extend((0..self.fs_per_dc).map(|i| self.fs(dc, i)));
        v
    }

    /// A network model with distinct LAN and WAN latency classes: links
    /// *within* each data center (plus the primary proxy/client, which
    /// live in DC 0) use the LAN range; everything else — the cross-DC
    /// links — uses the default range of `base`. An opt-in refinement of
    /// the paper's single uniform distribution, used by ablations.
    pub fn lan_wan_network(
        &self,
        base: simnet::NetworkConfig,
        lan_min: SimDuration,
        lan_max: SimDuration,
    ) -> simnet::NetworkConfig {
        let mut overrides = Vec::new();
        for dc in 0..self.dcs {
            let mut group = self.dc_nodes(dc);
            if dc == 0 {
                group.push(self.proxy());
                group.push(self.client());
            }
            overrides.push(simnet::LatencyOverride {
                group_a: group.clone(),
                group_b: group,
                latency_min: lan_min,
                latency_max: lan_max,
            });
        }
        simnet::NetworkConfig {
            latency_overrides: overrides,
            ..base
        }
    }
}

/// Which simulation engine drives the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// The single-threaded legacy engine (default; byte-identical to
    /// every recorded digest).
    Legacy,
    /// The DC-sharded conservative engine ([`simnet::parallel`]): one
    /// shard per data center (the proxy and client live in DC 0, extra
    /// pairs in their configured DC), lookahead derived from the
    /// topology's cross-DC latency floor. `workers == 1` is
    /// sequential-sharded; any worker count is byte-identical to it.
    Sharded {
        /// Worker threads executing shard windows.
        workers: usize,
    },
}

impl EngineMode {
    /// Parses the explorer/bench CLI spelling: `legacy`, `sharded`, or
    /// `parallel` (sharded is parallel with one worker; a `--workers`
    /// flag then picks the thread count for `parallel`).
    pub fn parse(s: &str, workers: usize) -> Option<EngineMode> {
        match s {
            "legacy" => Some(EngineMode::Legacy),
            "sharded" => Some(EngineMode::Sharded { workers: 1 }),
            "parallel" => Some(EngineMode::Sharded {
                workers: workers.max(2),
            }),
            _ => None,
        }
    }

    /// The CLI label for this mode.
    pub fn label(&self) -> &'static str {
        match self {
            EngineMode::Legacy => "legacy",
            EngineMode::Sharded { workers: 1 } => "sharded",
            EngineMode::Sharded { .. } => "parallel",
        }
    }

    /// Worker-thread count (1 for legacy and sequential-sharded).
    pub fn workers(&self) -> usize {
        match self {
            EngineMode::Legacy => 1,
            EngineMode::Sharded { workers } => (*workers).max(1),
        }
    }
}

/// An additional proxy/client pair beyond the primary one — used to
/// exercise concurrent puts from different data centers with loosely
/// synchronized clocks (§3.1). Extra pairs take the node ids following
/// [`ClusterLayout::client`], in order.
#[derive(Debug, Clone)]
pub struct ExtraProxy {
    /// Which data center hosts this proxy (its puts' home DC).
    pub dc: usize,
    /// Clock skew of this proxy's loosely synchronized clock relative to
    /// simulated time.
    pub clock_skew: SimDuration,
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Cluster shape.
    pub layout: ClusterLayout,
    /// Additional proxy/client pairs (empty by default; the paper's
    /// experiments use a single proxy).
    pub extra_proxies: Vec<ExtraProxy>,
    /// Default durability policy for puts.
    pub policy: Policy,
    /// Convergence configuration for every FS (and the proxy's Put-AMR
    /// switch).
    pub convergence: ConvergenceOptions,
    /// Protocol hot-path switches (shared metadata, batched round
    /// accounting) for every actor in the cluster. Defaults to the
    /// process-wide switches (see [`crate::protocol`]); pin it explicitly
    /// in tests that compare modes so parallel tests cannot race.
    pub protocol: ProtocolMode,
    /// Proxy timeouts and clock skew.
    pub proxy: ProxyConfig,
    /// Network latency and loss model.
    pub network: NetworkConfig,
    /// Size of the standard workload (number of puts; 0 = no scripted
    /// workload, drive the cluster via [`Cluster::put`]/[`Cluster::get`]).
    pub workload_puts: usize,
    /// Value size for the standard workload.
    pub workload_value_len: usize,
    /// Rounds of the standard workload: each round puts every key once
    /// with the same key-derived contents, so `> 1` turns the insert-only
    /// script into an overwrite stream (the shape delta coding targets)
    /// without breaking byte-level durability checks. `1` is the paper's
    /// workload, byte-identical to the historical script.
    pub workload_rounds: usize,
    /// An explicit client script overriding the standard workload — e.g.
    /// built with [`Workload`](crate::workload::Workload) for non-uniform
    /// object sizes.
    pub custom_workload: Option<Vec<ClientOp>>,
    /// A constant-memory streamed workload (takes precedence over the
    /// standard workload, yields to `custom_workload`): the client
    /// synthesizes each put from `(seed, index)` instead of materializing
    /// a script — the scale harness's million-key mode.
    pub streaming_workload: Option<crate::workload::StreamingWorkload>,
    /// Virtual-time safety deadline for [`Cluster::run_to_convergence`].
    pub max_sim_time: SimDuration,
    /// Which simulation engine drives the cluster (legacy by default, so
    /// all recorded digests stay byte-identical).
    pub engine: EngineMode,
    /// Failure-domain modeling: `Some(r)` partitions each data center's
    /// FSs into `r` racks (by position) and switches the KLS to rack-aware
    /// fragment placement; `None` (the default — byte-identical to every
    /// recorded digest) keeps the legacy rack-blind layout.
    pub racks_per_dc: Option<usize>,
}

impl ClusterConfig {
    /// The paper's experimental setup (§5.1): two data centers with two
    /// KLSs and three FSs each, the default `(4, 12)` policy, 10–30 ms
    /// uniform latency, all optimizations on, no scripted workload.
    pub fn paper_default() -> Self {
        ClusterConfig {
            layout: ClusterLayout {
                dcs: 2,
                kls_per_dc: 2,
                fs_per_dc: 3,
            },
            extra_proxies: Vec::new(),
            policy: Policy::paper_default(),
            convergence: ConvergenceOptions::all(),
            protocol: ProtocolMode::current(),
            proxy: ProxyConfig::default(),
            network: NetworkConfig::paper_default(),
            workload_puts: 0,
            workload_value_len: 100 * 1024,
            workload_rounds: 1,
            custom_workload: None,
            streaming_workload: None,
            max_sim_time: SimDuration::from_secs(24 * 3600),
            engine: EngineMode::Legacy,
            racks_per_dc: None,
        }
    }

    /// The paper's standard workload on top of
    /// [`paper_default`](Self::paper_default): 100 puts of 100 KiB.
    pub fn paper_workload() -> Self {
        ClusterConfig {
            workload_puts: 100,
            ..ClusterConfig::paper_default()
        }
    }
}

/// Outcome classification after a run (the quantities the paper's
/// evaluation reports).
#[derive(Debug, Clone)]
pub struct ConvergenceReport {
    /// Why the run stopped (`PredicateSatisfied` = converged).
    pub outcome: RunOutcome,
    /// Virtual time at stop.
    pub sim_time: SimTime,
    /// Put attempts the client issued (Fig. 9's "puts attempted").
    pub puts_attempted: u64,
    /// Puts the client saw succeed.
    pub puts_succeeded: u64,
    /// Object versions that are globally at maximum redundancy.
    pub amr_versions: usize,
    /// AMR versions whose put the client saw *fail* (Fig. 9's "excess AMR
    /// object versions").
    pub excess_amr: usize,
    /// Versions that never durably stored `k` fragments (Fig. 9's
    /// "non-durable object versions"); they can never achieve AMR.
    pub non_durable: usize,
    /// Durable versions not yet AMR (zero whenever `outcome` is
    /// `PredicateSatisfied`).
    pub durable_not_amr: usize,
    /// Per-version time from the put's timestamp until the *last* sibling
    /// FS settled the version as AMR, sorted ascending. Empty when no
    /// version is AMR. (Proxy clock skew shifts the origin; with the
    /// default zero skew this is true time-to-full-redundancy.)
    pub time_to_amr: Vec<SimDuration>,
    /// Traffic accounting for the whole run.
    pub metrics: Metrics,
}

/// A cluster-level view inspector: boxed so [`Engine`] can forward it to
/// whichever engine is live.
type Inspector = Box<dyn FnMut(&dyn SimView<Message>)>;

/// Either simulation engine, dispatched behind one seam so the cluster
/// assembly and harness code is engine-agnostic. One `Engine` exists per
/// cluster, so the variant size gap is irrelevant — boxing the legacy
/// simulation would only add a pointer hop to every event.
#[allow(clippy::large_enum_variant)]
enum Engine {
    Legacy(Simulation<Message>),
    Sharded(ShardedSimulation<Message>),
}

impl Engine {
    fn add_actor<A: simnet::Actor<Message> + Send + 'static>(&mut self, actor: A) -> NodeId {
        match self {
            Engine::Legacy(sim) => sim.add_actor(actor),
            Engine::Sharded(sim) => sim.add_actor(actor),
        }
    }

    fn view(&self) -> &dyn SimView<Message> {
        match self {
            Engine::Legacy(sim) => sim,
            Engine::Sharded(sim) => sim,
        }
    }

    fn actor_mut<T: std::any::Any>(&mut self, id: NodeId) -> &mut T {
        match self {
            Engine::Legacy(sim) => sim.actor_mut(id),
            Engine::Sharded(sim) => sim.actor_mut(id),
        }
    }

    fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) {
        match self {
            Engine::Legacy(sim) => {
                sim.schedule_timer(node, delay, tag);
            }
            Engine::Sharded(sim) => {
                sim.schedule_timer(node, delay, tag);
            }
        }
    }

    fn run_until(&mut self, mut pred: impl FnMut(&dyn SimView<Message>) -> bool) -> RunOutcome {
        match self {
            Engine::Legacy(sim) => sim.run_until(|s| pred(s)),
            Engine::Sharded(sim) => sim.run_until(|s| pred(s)),
        }
    }

    fn run_until_time(&mut self, deadline: SimTime) -> RunOutcome {
        match self {
            Engine::Legacy(sim) => sim.run_until_time(deadline),
            Engine::Sharded(sim) => sim.run_until_time(deadline),
        }
    }

    fn run_until_quiescent(&mut self) -> RunOutcome {
        match self {
            Engine::Legacy(sim) => sim.run_until_quiescent(),
            Engine::Sharded(sim) => sim.run_until_quiescent(),
        }
    }

    fn set_inspector(&mut self, mut f: Inspector) {
        match self {
            Engine::Legacy(sim) => sim.set_inspector(move |s| f(s)),
            Engine::Sharded(sim) => sim.set_inspector(move |s| f(s)),
        }
    }

    fn clear_inspector(&mut self) {
        match self {
            Engine::Legacy(sim) => sim.clear_inspector(),
            Engine::Sharded(sim) => sim.clear_inspector(),
        }
    }

    fn enable_trace(&mut self) {
        match self {
            Engine::Legacy(sim) => sim.enable_trace(),
            Engine::Sharded(sim) => sim.enable_trace(),
        }
    }

    fn set_event_limit(&mut self, limit: u64) {
        match self {
            Engine::Legacy(sim) => sim.set_event_limit(limit),
            Engine::Sharded(sim) => sim.set_event_limit(limit),
        }
    }
}

/// Computes the DC shard plan for a cluster shape: every node of a data
/// center (servers, plus the proxy/client pairs homed there) shares a
/// shard, and the lookahead is the latency floor over all cross-shard
/// links.
fn shard_plan(
    layout: ClusterLayout,
    extras: &[ExtraProxy],
    network: &NetworkConfig,
    workers: usize,
    repair: bool,
) -> ShardPlan {
    let mut owner: Vec<u16> = Vec::new();
    for dc in 0..layout.dcs {
        owner.extend(std::iter::repeat_n(dc as u16, layout.per_dc()));
    }
    owner.push(0); // primary proxy lives in DC 0
    owner.push(0); // primary client lives in DC 0
    for spec in extras {
        owner.push(spec.dc as u16); // extra proxy
        owner.push(spec.dc as u16); // its client
    }
    if repair {
        // One repair actor per data center, homed with the FSs it watches.
        owner.extend((0..layout.dcs).map(|dc| dc as u16));
    }
    let mut lookahead: Option<SimDuration> = None;
    for a in 0..owner.len() {
        for b in 0..owner.len() {
            if owner[a] != owner[b] {
                let floor = network.link_latency_min(NodeId::new(a as u32), NodeId::new(b as u32));
                lookahead = Some(lookahead.map_or(floor, |l| l.min(floor)));
            }
        }
    }
    ShardPlan {
        owner,
        // Single-DC clusters have no cross-shard links; any positive
        // bound is sound (there is nothing to look ahead of).
        lookahead: lookahead.unwrap_or(network.latency_min),
        workers,
    }
}

/// A fully wired Pahoehoe cluster inside a deterministic simulation.
pub struct Cluster {
    sim: Engine,
    layout: ClusterLayout,
    topo: Arc<Topology>,
    config: ClusterConfig,
    /// `(proxy, client)` node ids of the extra pairs, in config order.
    extra: Vec<(NodeId, NodeId)>,
    /// Node ids of the per-DC repair actors (empty when repair is off).
    repair: Vec<NodeId>,
}

impl Cluster {
    /// Builds a cluster with no injected faults.
    pub fn build(config: ClusterConfig, seed: u64) -> Self {
        Cluster::build_with_faults(config, seed, FaultPlan::none())
    }

    /// Builds a cluster with a fault plan (node outages, partitions). Use
    /// [`ClusterLayout`] to compute the node ids the plan needs.
    pub fn build_with_faults(config: ClusterConfig, seed: u64, faults: FaultPlan) -> Self {
        let layout = config.layout;
        let mut sim = match config.engine {
            EngineMode::Legacy => Engine::Legacy(Simulation::with_network(
                seed,
                config.network.clone(),
                faults,
            )),
            EngineMode::Sharded { workers } => {
                let plan = shard_plan(
                    layout,
                    &config.extra_proxies,
                    &config.network,
                    workers,
                    config.convergence.repair.is_some(),
                );
                Engine::Sharded(ShardedSimulation::with_network(
                    seed,
                    config.network.clone(),
                    faults,
                    plan,
                ))
            }
        };

        let dc_shape = (0..layout.dcs)
            .map(|dc| {
                (
                    (0..layout.kls_per_dc).map(|i| layout.kls(dc, i)).collect(),
                    (0..layout.fs_per_dc).map(|i| layout.fs(dc, i)).collect(),
                )
            })
            .collect();
        let topo = match config.racks_per_dc {
            Some(racks) => Topology::with_racks(dc_shape, racks),
            None => Topology::new(dc_shape),
        };

        for dc in 0..layout.dcs {
            let dc_id = DataCenterId::new(dc as u8);
            for _ in 0..layout.kls_per_dc {
                let id = sim.add_actor(Kls::with_mode(topo.clone(), dc_id, config.protocol));
                debug_assert!(topo.klss_in(dc_id).contains(&id));
            }
            for _ in 0..layout.fs_per_dc {
                let id = sim.add_actor(Fs::with_mode(
                    topo.clone(),
                    dc_id,
                    config.convergence.clone(),
                    config.protocol,
                ));
                debug_assert!(topo.fss_in(dc_id).contains(&id));
            }
        }

        let proxy_cfg = ProxyConfig {
            put_amr_indication: config.convergence.put_amr_indication,
            ..config.proxy.clone()
        };
        let proxy_id = sim.add_actor(Proxy::with_mode(
            topo.clone(),
            DataCenterId::new(0),
            0,
            proxy_cfg,
            config.protocol,
        ));
        debug_assert_eq!(proxy_id, layout.proxy());

        let client = match (&config.custom_workload, &config.streaming_workload) {
            (Some(script), _) => Client::new(proxy_id, script.clone()),
            (None, Some(stream)) => Client::streaming(proxy_id, stream.clone()),
            (None, None) => Client::standard_workload_rounds(
                proxy_id,
                config.workload_puts,
                config.workload_value_len,
                config.policy,
                config.workload_rounds,
            ),
        };
        let client_id = sim.add_actor(client);
        debug_assert_eq!(client_id, layout.client());

        // Extra proxy/client pairs (concurrent-writer scenarios).
        let mut extra = Vec::new();
        for (i, spec) in config.extra_proxies.iter().enumerate() {
            assert!(spec.dc < layout.dcs, "extra proxy DC out of range");
            let proxy_cfg = ProxyConfig {
                put_amr_indication: config.convergence.put_amr_indication,
                clock_skew: spec.clock_skew,
                ..config.proxy.clone()
            };
            let p = sim.add_actor(Proxy::with_mode(
                topo.clone(),
                DataCenterId::new(spec.dc as u8),
                1 + i as u32,
                proxy_cfg,
                config.protocol,
            ));
            let c = sim.add_actor(Client::new(p, Vec::new()));
            extra.push((p, c));
        }

        // Repair actors come last so every recorded id ahead of them —
        // servers, primary pair, extras — is unchanged when repair is off.
        let mut repair = Vec::new();
        if let Some(opts) = config.convergence.repair.clone() {
            for dc in 0..layout.dcs {
                let dc_id = DataCenterId::new(dc as u8);
                let id = sim.add_actor(RepairActor::new(topo.clone(), dc_id, opts.clone()));
                for i in 0..layout.fs_per_dc {
                    sim.actor_mut::<Fs>(layout.fs(dc, i)).set_repair_target(id);
                }
                repair.push(id);
            }
        }

        Cluster {
            sim,
            layout,
            topo,
            config,
            extra,
            repair,
        }
    }

    /// The underlying legacy simulation. Panics under a sharded engine —
    /// engine-agnostic code should use [`view`](Self::view) and the
    /// cluster-level run/inspect helpers instead.
    pub fn sim(&self) -> &Simulation<Message> {
        match &self.sim {
            Engine::Legacy(sim) => sim,
            Engine::Sharded(_) => panic!("sim() is legacy-engine only; use view()"),
        }
    }

    /// Mutable access to the underlying legacy simulation — e.g. to
    /// advance virtual time into a scheduled fault window with
    /// [`Simulation::run_until_time`]. Panics under a sharded engine; use
    /// the cluster-level helpers ([`run_until_time`](Self::run_until_time),
    /// [`set_view_inspector`](Self::set_view_inspector), ...) instead.
    pub fn sim_mut(&mut self) -> &mut Simulation<Message> {
        match &mut self.sim {
            Engine::Legacy(sim) => sim,
            Engine::Sharded(_) => panic!("sim_mut() is legacy-engine only; use view()"),
        }
    }

    /// Engine-agnostic read access to the simulation (clock, metrics,
    /// trace, actors) — works under both engines.
    pub fn view(&self) -> &dyn SimView<Message> {
        self.sim.view()
    }

    /// Runs until `pred` holds at an observation point (legacy: after any
    /// event; sharded: at a round barrier).
    pub fn run_until_view(
        &mut self,
        pred: impl FnMut(&dyn SimView<Message>) -> bool,
    ) -> RunOutcome {
        self.sim.run_until(pred)
    }

    /// Runs until the virtual clock reaches `deadline`.
    pub fn run_until_time(&mut self, deadline: SimTime) -> RunOutcome {
        self.sim.run_until_time(deadline)
    }

    /// Runs until no events remain.
    pub fn run_until_quiescent(&mut self) -> RunOutcome {
        self.sim.run_until_quiescent()
    }

    /// Installs an engine-agnostic inspector (legacy: after every event;
    /// sharded: at every round barrier).
    pub fn set_view_inspector(&mut self, f: impl FnMut(&dyn SimView<Message>) + 'static) {
        self.sim.set_inspector(Box::new(f));
    }

    /// Removes the inspector.
    pub fn clear_view_inspector(&mut self) {
        self.sim.clear_inspector();
    }

    /// Enables message tracing on the underlying engine.
    pub fn enable_trace(&mut self) {
        self.sim.enable_trace();
    }

    /// Caps the number of processed events (safety net for exploration).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.sim.set_event_limit(limit);
    }

    /// Mutable access to an actor by node id, under either engine.
    pub fn actor_mut<T: std::any::Any>(&mut self, id: NodeId) -> &mut T {
        self.sim.actor_mut(id)
    }

    /// Schedules a timer for `node` after `delay`, under either engine.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) {
        self.sim.schedule_timer(node, delay, tag);
    }

    /// The cluster's node-id layout.
    pub fn layout(&self) -> ClusterLayout {
        self.layout
    }

    /// The shared topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Borrows a KLS actor.
    pub fn kls(&self, id: NodeId) -> &Kls {
        self.sim.view().actor(id)
    }

    /// Borrows an FS actor.
    pub fn fs(&self, id: NodeId) -> &Fs {
        self.sim.view().actor(id)
    }

    /// Borrows the proxy actor.
    pub fn proxy(&self) -> &Proxy {
        self.sim.view().actor(self.layout.proxy())
    }

    /// Borrows the client actor.
    pub fn client(&self) -> &Client {
        self.sim.view().actor(self.layout.client())
    }

    /// Node ids of every client: the primary first, then the extras in
    /// [`ClusterConfig::extra_proxies`] order.
    pub fn client_ids(&self) -> Vec<NodeId> {
        let mut v = vec![self.layout.client()];
        v.extend(self.extra.iter().map(|&(_, c)| c));
        v
    }

    /// The `(proxy, client)` node ids of extra pair `i`.
    pub fn extra_pair(&self, i: usize) -> (NodeId, NodeId) {
        self.extra[i]
    }

    /// Node ids of the per-DC repair actors, in DC order (empty when the
    /// repair engine is disabled).
    pub fn repair_ids(&self) -> &[NodeId] {
        &self.repair
    }

    /// Borrows the repair actor of data center `dc`. Panics when repair is
    /// disabled.
    pub fn repair_actor(&self, dc: usize) -> &RepairActor {
        self.sim.view().actor(self.repair[dc])
    }

    /// Enqueues a put of `value` under the key named `name` (retried by
    /// the client until it succeeds) and wakes the client.
    pub fn put(&mut self, name: &[u8], value: Vec<u8>) {
        let client = self.layout.client();
        self.put_as(client, name, value);
    }

    /// Like [`put`](Self::put), issued through extra pair `i`'s client —
    /// a writer in another data center with its own proxy clock.
    pub fn put_from(&mut self, i: usize, name: &[u8], value: Vec<u8>) {
        let client = self.extra[i].1;
        self.put_as(client, name, value);
    }

    fn put_as(&mut self, client_id: NodeId, name: &[u8], value: Vec<u8>) {
        let key = Key::from_name(name);
        let policy = self.config.policy;
        self.sim
            .actor_mut::<Client>(client_id)
            .enqueue(ClientOp::Put {
                key,
                value: Bytes::from(value),
                policy,
            });
        self.sim.schedule_timer(client_id, SimDuration::ZERO, 1);
    }

    /// Runs a get for the key named `name` to completion and returns the
    /// value, or `None` if the get failed/aborted.
    pub fn get(&mut self, name: &[u8]) -> Option<Vec<u8>> {
        let client = self.layout.client();
        self.get_as(client, name)
    }

    /// Like [`get`](Self::get), issued through extra pair `i`'s client.
    pub fn get_from(&mut self, i: usize, name: &[u8]) -> Option<Vec<u8>> {
        let client = self.extra[i].1;
        self.get_as(client, name)
    }

    fn get_as(&mut self, client_id: NodeId, name: &[u8]) -> Option<Vec<u8>> {
        let key = Key::from_name(name);
        let done_before = self.sim.view().actor::<Client>(client_id).gets_done().len();
        self.sim
            .actor_mut::<Client>(client_id)
            .enqueue(ClientOp::Get { key });
        self.sim.schedule_timer(client_id, SimDuration::ZERO, 1);
        self.sim
            .run_until(|sim| sim.actor::<Client>(client_id).gets_done().len() > done_before);
        let outcome: &GetOutcome =
            &self.sim.view().actor::<Client>(client_id).gets_done()[done_before];
        debug_assert_eq!(outcome.key, key);
        outcome.result.as_ref().map(|(_, v)| v.to_vec())
    }

    /// Runs until every object version that can achieve AMR has done so
    /// and no fragment server has convergence work left for a durable
    /// version (the paper's termination condition), then classifies the
    /// outcome.
    ///
    /// Also stops at the configured
    /// [`max_sim_time`](ClusterConfig::max_sim_time) as a safety net; the
    /// report's `outcome` distinguishes the cases.
    pub fn run_to_convergence(&mut self) -> ConvergenceReport {
        let client_ids = self.client_ids();
        let fss: Vec<NodeId> = self.topo.all_fss().collect();
        let deadline = SimTime::ZERO + self.config.max_sim_time;
        // The convergence check walks every store, so gate it to at most
        // once per half simulated second.
        let next_check = Cell::new(0u64);
        let check_interval = SimDuration::from_millis(500).as_micros();

        let outcome = self.sim.run_until(|sim| {
            if sim.now() >= deadline {
                return true;
            }
            if sim.now().as_micros() < next_check.get() {
                return false;
            }
            next_check.set(sim.now().as_micros() + check_interval);
            if !client_ids.iter().all(|&c| sim.actor::<Client>(c).is_done()) {
                return false;
            }
            let durable = analysis::durable_versions(sim, &fss);
            fss.iter().all(|&fs| {
                sim.actor::<Fs>(fs)
                    .pending_versions()
                    .all(|ov| !durable.contains(&ov))
            })
        });
        self.report(outcome)
    }

    /// Builds a [`ConvergenceReport`] for the current state, aggregating
    /// over every client (primary plus extras).
    pub fn report(&self, outcome: RunOutcome) -> ConvergenceReport {
        let fss: Vec<NodeId> = self.topo.all_fss().collect();
        let klss: Vec<NodeId> = self.topo.all_klss().collect();

        let mut success_versions: BTreeSet<ObjectVersion> = BTreeSet::new();
        let mut client_versions: BTreeSet<ObjectVersion> = BTreeSet::new();
        let mut puts_attempted = 0;
        let mut puts_succeeded = 0;
        for id in self.client_ids() {
            let client: &Client = self.sim.view().actor(id);
            success_versions.extend(client.success_versions());
            client_versions.extend(client.success_versions());
            client_versions.extend(client.failed_versions());
            puts_attempted += client.puts_attempted();
            puts_succeeded += client.puts_succeeded();
        }

        let durable = analysis::durable_versions(self.sim.view(), &fss);
        let all_versions = analysis::known_versions(self.sim.view(), &klss, &fss)
            .union(&client_versions)
            .copied()
            .collect::<BTreeSet<ObjectVersion>>();

        let mut amr_versions = 0;
        let mut excess_amr = 0;
        let mut durable_not_amr = 0;
        let mut non_durable = 0;
        let mut time_to_amr = Vec::new();
        for &ov in &all_versions {
            let amr = analysis::is_amr(self.sim.view(), &self.topo, ov);
            if amr {
                amr_versions += 1;
                // Settled when the last sibling FS stopped convergence
                // work for it (verified or indicated).
                let settled = fss
                    .iter()
                    .filter_map(|&fs| self.sim.view().actor::<Fs>(fs).amr_settled_at(ov))
                    .max();
                if let Some(settled) = settled {
                    time_to_amr.push(SimDuration::from_micros(
                        settled.as_micros().saturating_sub(ov.ts.clock_micros()),
                    ));
                }
                // Excess AMR (Fig. 9): the version converged but its put
                // was never acknowledged successful to the client (failed
                // answer, or the answer itself was lost).
                if !success_versions.contains(&ov) {
                    excess_amr += 1;
                }
            } else if durable.contains(&ov) {
                durable_not_amr += 1;
            }
            if !durable.contains(&ov) {
                non_durable += 1;
            }
        }

        time_to_amr.sort_unstable();
        ConvergenceReport {
            outcome,
            sim_time: self.sim.view().now(),
            puts_attempted,
            puts_succeeded,
            amr_versions,
            excess_amr,
            non_durable,
            durable_not_amr,
            time_to_amr,
            metrics: self.sim.view().metrics().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> ClusterLayout {
        ClusterLayout {
            dcs: 2,
            kls_per_dc: 2,
            fs_per_dc: 3,
        }
    }

    #[test]
    fn layout_ids_are_dense_and_disjoint() {
        let l = layout();
        let mut ids = Vec::new();
        for dc in 0..2 {
            for i in 0..2 {
                ids.push(l.kls(dc, i));
            }
            for i in 0..3 {
                ids.push(l.fs(dc, i));
            }
        }
        ids.push(l.proxy());
        ids.push(l.client());
        let expected: Vec<NodeId> = (0..12).map(|i| NodeId::new(i as u32)).collect();
        ids.sort();
        assert_eq!(ids, expected, "dense, disjoint, in build order");
    }

    #[test]
    fn dc_nodes_lists_servers_only() {
        let l = layout();
        let nodes = l.dc_nodes(1);
        assert_eq!(nodes.len(), 5);
        assert!(!nodes.contains(&l.proxy()));
        assert!(!nodes.contains(&l.client()));
    }

    #[test]
    #[should_panic]
    fn layout_bounds_are_checked() {
        let _ = layout().fs(0, 3);
    }

    #[test]
    fn built_cluster_matches_layout_and_topology() {
        let cluster = Cluster::build(ClusterConfig::paper_default(), 1);
        let l = cluster.layout();
        let topo = cluster.topology();
        assert_eq!(topo.all_klss().count(), 4);
        assert_eq!(topo.all_fss().count(), 6);
        for dc in 0..2 {
            for i in 0..2 {
                assert!(topo.is_kls(l.kls(dc, i)));
            }
            for i in 0..3 {
                assert!(!topo.is_kls(l.fs(dc, i)));
            }
        }
        assert_eq!(cluster.client_ids(), vec![l.client()]);
        assert_eq!(cluster.sim().actor_count(), 12);
    }

    #[test]
    fn extra_proxies_extend_the_id_space() {
        let mut cfg = ClusterConfig::paper_default();
        cfg.extra_proxies = vec![
            ExtraProxy {
                dc: 1,
                clock_skew: SimDuration::ZERO,
            },
            ExtraProxy {
                dc: 0,
                clock_skew: SimDuration::from_secs(1),
            },
        ];
        let cluster = Cluster::build(cfg, 1);
        let l = cluster.layout();
        let base = l.client().index() as u32;
        assert_eq!(
            cluster.extra_pair(0),
            (NodeId::new(base + 1), NodeId::new(base + 2))
        );
        assert_eq!(
            cluster.extra_pair(1),
            (NodeId::new(base + 3), NodeId::new(base + 4))
        );
        assert_eq!(cluster.client_ids().len(), 3);
    }

    #[test]
    fn lan_wan_network_overrides_intra_dc_links_only() {
        let l = layout();
        let net = l.lan_wan_network(
            NetworkConfig::paper_default(),
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        assert_eq!(net.latency_overrides.len(), 2);
        // DC0's override includes the proxy and client.
        assert!(net.latency_overrides[0].group_a.contains(&l.proxy()));
        assert!(net.latency_overrides[0].group_a.contains(&l.client()));
        assert!(!net.latency_overrides[1].group_a.contains(&l.proxy()));
        // Defaults untouched.
        assert_eq!(net.latency_min, SimDuration::from_millis(10));
    }

    #[test]
    fn empty_cluster_report_is_all_zero() {
        let cluster = Cluster::build(ClusterConfig::paper_default(), 3);
        let r = cluster.report(RunOutcome::Quiescent);
        assert_eq!(r.amr_versions, 0);
        assert_eq!(r.puts_attempted, 0);
        assert_eq!(r.non_durable, 0);
        assert!(r.time_to_amr.is_empty());
    }

    #[test]
    fn repair_actors_take_the_trailing_ids() {
        let mut cfg = ClusterConfig::paper_default();
        cfg.convergence.repair = Some(crate::repair::RepairOptions::paper_default());
        cfg.racks_per_dc = Some(3);
        let cluster = Cluster::build(cfg, 1);
        let l = cluster.layout();
        assert_eq!(cluster.sim().actor_count(), 14);
        assert_eq!(
            cluster.repair_ids(),
            &[
                NodeId::new(l.client().index() as u32 + 1),
                NodeId::new(l.client().index() as u32 + 2)
            ]
        );
        assert_eq!(cluster.topology().racks_in(DataCenterId::new(0)), 3);
        // Repair off: layout and count are untouched.
        let plain = Cluster::build(ClusterConfig::paper_default(), 1);
        assert_eq!(plain.sim().actor_count(), 12);
        assert!(plain.repair_ids().is_empty());
    }

    #[test]
    #[should_panic(expected = "extra proxy DC out of range")]
    fn extra_proxy_dc_is_validated() {
        let mut cfg = ClusterConfig::paper_default();
        cfg.extra_proxies = vec![ExtraProxy {
            dc: 9,
            clock_skew: SimDuration::ZERO,
        }];
        let _ = Cluster::build(cfg, 1);
    }
}
