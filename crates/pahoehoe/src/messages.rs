//! The Pahoehoe wire message set.
//!
//! One variant per message in the paper's protocol figures; the metric
//! labels (`kind`) match the stacked legends of Figures 5–8
//! (`DecideLocsReq`, `StoreFragmentRep`, `KLSConvergeReq`, …). Client↔proxy
//! messages are labeled `Client*` and excluded from figure accounting, as
//! in the paper, which counts "all activity from the proxy's put and all
//! convergence activity".
//!
//! # Wire-size model
//!
//! Sizes are modeled, not serialized: every message pays a fixed
//! [`HEADER_BYTES`] (framing, addressing, correlation ids) plus the sizes
//! of its fields — 20 bytes per object version, [`Metadata::wire_size`]
//! for metadata, and the full payload length for fragments. Fragment
//! payloads dominate: for the paper's 100 KiB values and `k = 4`, each
//! fragment-bearing message carries 25 KiB.
//!
//! Metadata is embedded as [`Arc<Metadata>`] so a send is a refcount bump
//! rather than a deep copy (see [`crate::protocol`]); the wire-size model
//! is unaffected because it prices the serialized bytes.
//!
//! The `*Batch` variants model one convergence round's coalesced traffic
//! to a single destination: one shared [`HEADER_BYTES`] plus the per-entry
//! bodies. They report under the same metric label (`kind_id`) as their
//! singular counterparts, so figure legends are unchanged and batching
//! shows up as fewer, larger messages of the same kind.

use std::sync::Arc;

use bytes::Bytes;
use erasure::{Fragment, FragmentIndex};
use simnet::Payload;

use crate::metadata::{Location, Metadata};
use crate::policy::Policy;
use crate::topology::DataCenterId;
use crate::types::{Key, ObjectVersion, Timestamp};

/// Fixed per-message overhead: framing, addressing and correlation ids.
pub const HEADER_BYTES: usize = 40;

/// Bytes modeled for an [`ObjectVersion`] on the wire (key + timestamp).
pub const OV_BYTES: usize = 20;

/// Bytes modeled for a [`Policy`] on the wire.
pub const POLICY_BYTES: usize = 5;

/// Correlation id for client operations and embedded gets.
pub type OpId = u64;

// Dense indices into [`Message::EVENTS`], for `Context::record_event`.
// Keep these in sync with the registry below — each constant is the
// position of its label.
/// Put-path stripes encoded as XOR deltas (proxy).
pub const EV_DELTAS_ENCODED: usize = 0;
/// Delta-eligible puts that fell back to full encode (proxy).
pub const EV_DELTA_FALLBACKS: usize = 1;
/// Put-path fragment payload bytes saved by delta coding vs full encode.
pub const EV_DELTA_BYTES_SAVED: usize = 2;
/// Stripe-cache lookups that found a usable base version (proxy).
pub const EV_STRIPE_CACHE_HITS: usize = 3;
/// Stripe-cache lookups that missed (proxy).
pub const EV_STRIPE_CACHE_MISSES: usize = 4;
/// Put-path fragment payload bytes shipped as windowed deltas.
pub const EV_DELTA_FRAG_BYTES: usize = 5;
/// Put-path fragment payload bytes shipped as full fragments.
pub const EV_FULL_FRAG_BYTES: usize = 6;
/// Windowed delta fragments resolved to dense bytes at an FS.
pub const EV_DELTAS_RESOLVED: usize = 7;
/// Windowed delta fragments an FS could not resolve (base missing).
pub const EV_DELTA_UNRESOLVABLE: usize = 8;
/// Repair jobs enqueued because an object fell below the repair
/// threshold (repair actor).
pub const EV_REPAIR_TRIGGERED: usize = 9;
/// Repair jobs that finished re-protecting their object (repair actor).
pub const EV_REPAIR_COMPLETED: usize = 10;
/// Repair jobs abandoned after exhausting donor retries (repair actor).
pub const EV_REPAIR_ABANDONED: usize = 11;
/// Fragment payload bytes moved by repair (donor fetches + pushes).
pub const EV_REPAIR_BYTES: usize = 12;
/// Sum of repair-queue depth sampled at each drain tick (repair actor).
pub const EV_REPAIR_QUEUE_DEPTH: usize = 13;
/// Drain ticks where the bandwidth budget stalled a ready job.
pub const EV_REPAIR_THROTTLE_STALLS: usize = 14;
/// Gets that decoded successfully but saw at least one ⊥ fragment
/// reply on the way (proxy).
pub const EV_DEGRADED_READS: usize = 15;

/// Every message exchanged between Pahoehoe nodes.
#[derive(Clone, Debug)]
pub enum Message {
    // ---- client <-> proxy (excluded from figure accounting) ----
    /// Client asks its proxy to store `value` under `key`.
    ClientPut {
        /// Client-chosen correlation id.
        op: OpId,
        /// Object key.
        key: Key,
        /// The value to store.
        value: Bytes,
        /// Durability policy for this put.
        policy: Policy,
    },
    /// Proxy's final answer to a [`Message::ClientPut`].
    ClientPutReply {
        /// Echoed correlation id.
        op: OpId,
        /// The object version the put created.
        ov: ObjectVersion,
        /// `true` when the policy's success threshold was met; `false` is
        /// the paper's "unknown" outcome (the put may still converge).
        success: bool,
    },
    /// Client asks its proxy to retrieve the object stored under `key`.
    ClientGet {
        /// Client-chosen correlation id.
        op: OpId,
        /// Object key.
        key: Key,
    },
    /// Proxy's final answer to a [`Message::ClientGet`].
    ClientGetReply {
        /// Echoed correlation id.
        op: OpId,
        /// The version and value retrieved, or `None` on abort/failure.
        result: Option<(ObjectVersion, Bytes)>,
    },

    // ---- put protocol ----
    /// Proxy asks a KLS to suggest fragment locations for its data center.
    DecideLocs {
        /// Object version being put.
        ov: ObjectVersion,
        /// Durability policy to interpret.
        policy: Policy,
        /// The put's home data center (holds the data fragments).
        home_dc: DataCenterId,
    },
    /// KLS's location suggestion for one whole data center.
    DecideLocsReply {
        /// Object version.
        ov: ObjectVersion,
        /// The data center these locations are for.
        dc: DataCenterId,
        /// One location per fragment hosted in `dc`.
        locations: Vec<Location>,
    },
    /// Like [`Message::DecideLocs`] but issued by a fragment server during
    /// a convergence step (metadata repair). Carries the FS's current
    /// metadata; KLSs treat it differently from the proxy path: they
    /// persist the decision and indicate it to the sibling FSs (§3.5).
    FsDecideLocs {
        /// Object version.
        ov: ObjectVersion,
        /// The FS's current (incomplete) metadata.
        meta: Arc<Metadata>,
    },
    /// KLS → sibling FS push of a location decision taken on behalf of a
    /// converging FS (§3.5). Not in the paper's figure legends; reported
    /// under its own `LocsIndication` label.
    LocsIndication {
        /// Object version.
        ov: ObjectVersion,
        /// The KLS's merged metadata after its decision.
        meta: Arc<Metadata>,
    },
    /// Proxy stores (possibly still partial) metadata at a KLS.
    StoreMetadata {
        /// Object version.
        ov: ObjectVersion,
        /// Metadata with all locations decided so far.
        meta: Arc<Metadata>,
    },
    /// KLS acknowledgment of a [`Message::StoreMetadata`].
    StoreMetadataReply {
        /// Object version.
        ov: ObjectVersion,
        /// Whether the KLS's stored metadata is now complete.
        complete: bool,
    },
    /// Proxy (or put-path code inside an FS) stores one fragment plus the
    /// metadata snapshot at a fragment server.
    StoreFragment {
        /// Object version.
        ov: ObjectVersion,
        /// Metadata snapshot at send time (may be partial).
        meta: Arc<Metadata>,
        /// The sibling fragment for this server.
        fragment: Fragment,
    },
    /// FS acknowledgment of a [`Message::StoreFragment`].
    StoreFragmentReply {
        /// Object version.
        ov: ObjectVersion,
        /// Which fragment index was durably stored.
        fragment: FragmentIndex,
    },
    /// "This object version is at maximum redundancy; do no convergence
    /// work for it." Sent by a proxy at the end of a fully successful put
    /// (PutAMR optimization) or by an FS that completed verification
    /// (FS-AMR optimization). Carries the complete metadata so the
    /// receiver's stored metadata also becomes complete.
    AmrIndication {
        /// Object version.
        ov: ObjectVersion,
        /// Complete metadata.
        meta: Arc<Metadata>,
    },
    /// Several [`Message::AmrIndication`] entries for the same destination,
    /// coalesced by one convergence round (one shared header).
    AmrIndicationBatch {
        /// `(object version, complete metadata)` per indication.
        entries: Vec<(ObjectVersion, Arc<Metadata>)>,
    },

    // ---- get protocol ----
    /// Proxy asks a KLS for the object versions of `key` with metadata,
    /// one page at a time, newest first — the paper's "iteratively
    /// retrieves timestamps with associated metadata from KLSs instead of
    /// retrieving information about all object versions at once" (§3.5).
    RetrieveTs {
        /// Correlation id of the get operation.
        op: OpId,
        /// The key being read.
        key: Key,
        /// Maximum versions to return in this page.
        limit: u16,
        /// Only return versions strictly older than this (pagination
        /// cursor); `None` starts from the newest.
        older_than: Option<Timestamp>,
    },
    /// KLS's versions-with-metadata answer (one page).
    RetrieveTsReply {
        /// Echoed correlation id.
        op: OpId,
        /// Echoed key.
        key: Key,
        /// Up to `limit` `(timestamp, metadata)` pairs, newest first.
        versions: Vec<(Timestamp, Arc<Metadata>)>,
        /// Whether older versions remain beyond this page.
        more: bool,
    },
    /// Request for one fragment of one object version (used by proxy gets
    /// and by FS fragment recovery).
    RetrieveFrag {
        /// Correlation id of the enclosing get/recovery.
        op: OpId,
        /// Object version.
        ov: ObjectVersion,
        /// Which fragment index is wanted.
        fragment: FragmentIndex,
    },
    /// Answer to [`Message::RetrieveFrag`]; `data` is `None` when the
    /// server does not store that fragment (the paper's ⊥ reply).
    RetrieveFragReply {
        /// Echoed correlation id.
        op: OpId,
        /// Object version.
        ov: ObjectVersion,
        /// Echoed fragment index.
        fragment: FragmentIndex,
        /// The fragment, or `None` if absent.
        data: Option<Fragment>,
    },

    // ---- convergence ----
    /// FS → KLS convergence probe carrying the FS's metadata.
    ConvergeKls {
        /// Object version.
        ov: ObjectVersion,
        /// The FS's metadata (merged into the KLS's store).
        meta: Arc<Metadata>,
    },
    /// Several [`Message::ConvergeKls`] probes for the same KLS, coalesced
    /// by one convergence round (one shared header).
    ConvergeKlsBatch {
        /// `(object version, sender's metadata)` per probe.
        entries: Vec<(ObjectVersion, Arc<Metadata>)>,
    },
    /// KLS's answer: is its stored metadata complete?
    ConvergeKlsReply {
        /// Object version.
        ov: ObjectVersion,
        /// Verification result.
        verified: bool,
    },
    /// FS → sibling FS convergence probe.
    ConvergeFs {
        /// Object version.
        ov: ObjectVersion,
        /// The sender's metadata (merged by the receiver).
        meta: Arc<Metadata>,
        /// Set when the sender intends to perform sibling fragment
        /// recovery (§4.2); the receiver then reports which fragments it
        /// needs and may trigger the id-ordered backoff rule.
        recovery_intent: bool,
    },
    /// Several [`Message::ConvergeFs`] probes for the same sibling FS,
    /// coalesced by one convergence round (one shared header).
    ConvergeFsBatch {
        /// `(object version, sender's metadata, recovery intent)` per
        /// probe.
        entries: Vec<(ObjectVersion, Arc<Metadata>, bool)>,
    },
    /// Sibling FS's answer to a convergence probe.
    ConvergeFsReply {
        /// Object version.
        ov: ObjectVersion,
        /// `verify(storefrag[ov])`: metadata complete and all assigned
        /// fragments present.
        verified: bool,
        /// Fragment indices the replier holds (for recovery planning).
        have: Vec<FragmentIndex>,
        /// Assigned fragment indices the replier is missing (its recovery
        /// needs; only meaningful when the probe carried
        /// `recovery_intent`).
        missing: Vec<FragmentIndex>,
        /// Whether the replier is itself attempting sibling fragment
        /// recovery for this version (drives the id-ordered backoff).
        recovering: bool,
    },
    /// FS → repair actor periodic inventory report: every object version
    /// the FS knows about, with its metadata and the fragment indices it
    /// currently holds. The repair actor folds these into per-object
    /// live-fragment counts and triggers reconstruction below the repair
    /// threshold. Reports under the `FSConvergeRep` label: it is the same
    /// verification traffic an FS already emits during convergence, just
    /// pushed on a timer instead of pulled by a probe.
    RepairReport {
        /// `(object version, metadata, fragment indices held)` per object.
        entries: Vec<(ObjectVersion, Arc<Metadata>, Vec<FragmentIndex>)>,
    },
    /// A recovered sibling fragment pushed to the FS that needs it
    /// (sibling fragment recovery, §4.2). Unacknowledged; the next
    /// convergence round verifies receipt.
    SiblingStore {
        /// Object version.
        ov: ObjectVersion,
        /// Complete metadata.
        meta: Arc<Metadata>,
        /// The regenerated fragment.
        fragment: Fragment,
    },
}

impl Message {
    /// Whether this is client↔proxy traffic (excluded from the paper's
    /// message accounting).
    pub fn is_client_traffic(&self) -> bool {
        matches!(
            self,
            Message::ClientPut { .. }
                | Message::ClientPutReply { .. }
                | Message::ClientGet { .. }
                | Message::ClientGetReply { .. }
        )
    }
}

impl Payload for Message {
    /// One label per *protocol* message kind, so
    /// [`kind_id`](Payload::kind_id) is a dense index and the engine's
    /// per-kind counters are plain arrays. The `*Batch` variants share
    /// their singular counterpart's label: a batch is the same protocol
    /// traffic, just coalesced under one header.
    const KINDS: &'static [&'static str] = &[
        "ClientPutReq",
        "ClientPutRep",
        "ClientGetReq",
        "ClientGetRep",
        "DecideLocsReq",
        "DecideLocsRep",
        "FSDecideLocsReq",
        "LocsIndication",
        "StoreMetadataReq",
        "StoreMetadataRep",
        "StoreFragmentReq",
        "StoreFragmentRep",
        "AMRIndication",
        "RetrieveTsReq",
        "RetrieveTsRep",
        "RetrieveFragReq",
        "RetrieveFragRep",
        "KLSConvergeReq",
        "KLSConvergeRep",
        "FSConvergeReq",
        "FSConvergeRep",
        "SiblingStoreReq",
    ];

    /// Protocol event counters for the delta-coding path, indexed by the
    /// `EV_*` constants above.
    const EVENTS: &'static [&'static str] = &[
        "deltas_encoded",
        "delta_fallbacks",
        "delta_bytes_saved",
        "stripe_cache_hits",
        "stripe_cache_misses",
        "delta_frag_bytes",
        "full_frag_bytes",
        "deltas_resolved",
        "delta_unresolvable",
        "repair_triggered",
        "repair_completed",
        "repair_abandoned",
        "repair_bytes",
        "repair_queue_depth",
        "repair_throttle_stalls",
        "degraded_reads",
    ];

    fn kind_id(&self) -> usize {
        match self {
            Message::ClientPut { .. } => 0,
            Message::ClientPutReply { .. } => 1,
            Message::ClientGet { .. } => 2,
            Message::ClientGetReply { .. } => 3,
            Message::DecideLocs { .. } => 4,
            Message::DecideLocsReply { .. } => 5,
            Message::FsDecideLocs { .. } => 6,
            Message::LocsIndication { .. } => 7,
            Message::StoreMetadata { .. } => 8,
            Message::StoreMetadataReply { .. } => 9,
            Message::StoreFragment { .. } => 10,
            Message::StoreFragmentReply { .. } => 11,
            Message::AmrIndication { .. } | Message::AmrIndicationBatch { .. } => 12,
            Message::RetrieveTs { .. } => 13,
            Message::RetrieveTsReply { .. } => 14,
            Message::RetrieveFrag { .. } => 15,
            Message::RetrieveFragReply { .. } => 16,
            Message::ConvergeKls { .. } | Message::ConvergeKlsBatch { .. } => 17,
            Message::ConvergeKlsReply { .. } => 18,
            Message::ConvergeFs { .. } | Message::ConvergeFsBatch { .. } => 19,
            Message::ConvergeFsReply { .. } | Message::RepairReport { .. } => 20,
            Message::SiblingStore { .. } => 21,
        }
    }

    fn wire_size(&self) -> usize {
        HEADER_BYTES
            + match self {
                Message::ClientPut { value, .. } => 8 + 8 + POLICY_BYTES + value.len(),
                Message::ClientPutReply { .. } => 8 + OV_BYTES + 1,
                Message::ClientGet { .. } => 8 + 8,
                Message::ClientGetReply { result, .. } => {
                    8 + 1 + result.as_ref().map_or(0, |(_, v)| OV_BYTES + v.len())
                }
                Message::DecideLocs { .. } => OV_BYTES + POLICY_BYTES + 1,
                Message::DecideLocsReply { locations, .. } => OV_BYTES + 1 + 6 * locations.len(),
                Message::FsDecideLocs { meta, .. } => OV_BYTES + meta.wire_size(),
                Message::LocsIndication { meta, .. } => OV_BYTES + meta.wire_size(),
                Message::StoreMetadata { meta, .. } => OV_BYTES + meta.wire_size(),
                Message::StoreMetadataReply { .. } => OV_BYTES + 1,
                Message::StoreFragment { meta, fragment, .. } => {
                    OV_BYTES + meta.wire_size() + 1 + fragment.wire_len()
                }
                Message::StoreFragmentReply { .. } => OV_BYTES + 1,
                Message::AmrIndication { meta, .. } => OV_BYTES + meta.wire_size(),
                Message::AmrIndicationBatch { entries } => entries
                    .iter()
                    .map(|(_, m)| OV_BYTES + m.wire_size())
                    .sum::<usize>(),
                Message::RetrieveTs { older_than, .. } => 8 + 8 + 2 + older_than.map_or(1, |_| 13),
                Message::RetrieveTsReply { versions, .. } => {
                    8 + 8
                        + 1
                        + versions
                            .iter()
                            .map(|(_, m)| 12 + m.wire_size())
                            .sum::<usize>()
                }
                Message::RetrieveFrag { .. } => 8 + OV_BYTES + 1,
                Message::RetrieveFragReply { data, .. } => {
                    8 + OV_BYTES + 1 + data.as_ref().map_or(1, |f| 1 + f.wire_len())
                }
                Message::ConvergeKls { meta, .. } => OV_BYTES + meta.wire_size(),
                Message::ConvergeKlsBatch { entries } => entries
                    .iter()
                    .map(|(_, m)| OV_BYTES + m.wire_size())
                    .sum::<usize>(),
                Message::ConvergeKlsReply { .. } => OV_BYTES + 1,
                Message::ConvergeFs { meta, .. } => OV_BYTES + meta.wire_size() + 1,
                Message::ConvergeFsBatch { entries } => entries
                    .iter()
                    .map(|(_, m, _)| OV_BYTES + m.wire_size() + 1)
                    .sum::<usize>(),
                Message::ConvergeFsReply { have, missing, .. } => {
                    OV_BYTES + 2 + have.len() + missing.len()
                }
                Message::RepairReport { entries } => entries
                    .iter()
                    .map(|(_, m, have)| OV_BYTES + m.wire_size() + 1 + have.len())
                    .sum::<usize>(),
                Message::SiblingStore { meta, fragment, .. } => {
                    OV_BYTES + meta.wire_size() + fragment.wire_len()
                }
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{NodeId, SimTime};

    fn ov() -> ObjectVersion {
        ObjectVersion::new(Key::from_u64(1), Timestamp::new(SimTime::ZERO, 0))
    }

    fn full_meta() -> Metadata {
        let mut m = Metadata::new(Policy::paper_default(), DataCenterId::new(0), 1000);
        for dc in 0..2u8 {
            let locs = (0..6)
                .map(|i| Location {
                    fs: NodeId::new(u32::from(dc) * 10 + u32::from(i) / 2),
                    disk: i % 2,
                })
                .collect();
            m.add_dc_locations(DataCenterId::new(dc), locs);
        }
        m
    }

    #[test]
    fn kinds_match_figure_legends() {
        let m = Arc::new(full_meta());
        let cases: Vec<(Message, &str)> = vec![
            (
                Message::DecideLocs {
                    ov: ov(),
                    policy: Policy::paper_default(),
                    home_dc: DataCenterId::new(0),
                },
                "DecideLocsReq",
            ),
            (
                Message::StoreFragment {
                    ov: ov(),
                    meta: m.clone(),
                    fragment: Fragment::new(0, vec![0u8; 250]),
                },
                "StoreFragmentReq",
            ),
            (
                Message::AmrIndication {
                    ov: ov(),
                    meta: m.clone(),
                },
                "AMRIndication",
            ),
            (
                Message::ConvergeKls {
                    ov: ov(),
                    meta: m.clone(),
                },
                "KLSConvergeReq",
            ),
            (
                Message::ConvergeFsReply {
                    ov: ov(),
                    verified: true,
                    have: vec![],
                    missing: vec![],
                    recovering: false,
                },
                "FSConvergeRep",
            ),
            (
                Message::SiblingStore {
                    ov: ov(),
                    meta: m,
                    fragment: Fragment::new(1, vec![0u8; 250]),
                },
                "SiblingStoreReq",
            ),
        ];
        for (msg, kind) in cases {
            assert_eq!(msg.kind(), kind);
        }
    }

    #[test]
    fn fragment_messages_dominate_bytes() {
        let m = Arc::new(full_meta());
        let frag = Fragment::new(0, vec![0u8; 25 * 1024]);
        let store = Message::StoreFragment {
            ov: ov(),
            meta: m.clone(),
            fragment: frag,
        };
        assert!(store.wire_size() > 25 * 1024);
        assert!(store.wire_size() < 25 * 1024 + 200);
        let ack = Message::StoreFragmentReply {
            ov: ov(),
            fragment: 0,
        };
        assert_eq!(ack.wire_size(), HEADER_BYTES + OV_BYTES + 1);
    }

    #[test]
    fn empty_fragment_reply_is_small() {
        let miss = Message::RetrieveFragReply {
            op: 1,
            ov: ov(),
            fragment: 3,
            data: None,
        };
        assert_eq!(miss.wire_size(), HEADER_BYTES + 8 + OV_BYTES + 2);
        let hit = Message::RetrieveFragReply {
            op: 1,
            ov: ov(),
            fragment: 3,
            data: Some(Fragment::new(3, vec![0u8; 100])),
        };
        assert!(hit.wire_size() > miss.wire_size() + 98);
    }

    #[test]
    fn event_ids_index_the_event_registry() {
        assert_eq!(Message::EVENTS[EV_DELTAS_ENCODED], "deltas_encoded");
        assert_eq!(Message::EVENTS[EV_DELTA_FALLBACKS], "delta_fallbacks");
        assert_eq!(Message::EVENTS[EV_DELTA_BYTES_SAVED], "delta_bytes_saved");
        assert_eq!(Message::EVENTS[EV_STRIPE_CACHE_HITS], "stripe_cache_hits");
        assert_eq!(
            Message::EVENTS[EV_STRIPE_CACHE_MISSES],
            "stripe_cache_misses"
        );
        assert_eq!(Message::EVENTS[EV_DELTA_FRAG_BYTES], "delta_frag_bytes");
        assert_eq!(Message::EVENTS[EV_FULL_FRAG_BYTES], "full_frag_bytes");
        assert_eq!(Message::EVENTS[EV_DELTAS_RESOLVED], "deltas_resolved");
        assert_eq!(Message::EVENTS[EV_DELTA_UNRESOLVABLE], "delta_unresolvable");
        assert_eq!(Message::EVENTS[EV_REPAIR_TRIGGERED], "repair_triggered");
        assert_eq!(Message::EVENTS[EV_REPAIR_COMPLETED], "repair_completed");
        assert_eq!(Message::EVENTS[EV_REPAIR_ABANDONED], "repair_abandoned");
        assert_eq!(Message::EVENTS[EV_REPAIR_BYTES], "repair_bytes");
        assert_eq!(Message::EVENTS[EV_REPAIR_QUEUE_DEPTH], "repair_queue_depth");
        assert_eq!(
            Message::EVENTS[EV_REPAIR_THROTTLE_STALLS],
            "repair_throttle_stalls"
        );
        assert_eq!(Message::EVENTS[EV_DEGRADED_READS], "degraded_reads");
        assert_eq!(Message::EVENTS.len(), 16);
    }

    #[test]
    fn repair_report_shares_the_converge_reply_label() {
        let report = Message::RepairReport {
            entries: vec![(ov(), Arc::new(full_meta()), vec![0, 3])],
        };
        assert_eq!(report.kind(), "FSConvergeRep");
        // One shared header plus per-entry bodies, like the batches.
        assert_eq!(
            report.wire_size(),
            HEADER_BYTES + OV_BYTES + full_meta().wire_size() + 1 + 2
        );
    }

    #[test]
    fn delta_fragments_price_window_header_and_tagged_metadata() {
        let mut tagged = full_meta();
        tagged.set_delta_base(Timestamp::new(SimTime::ZERO, 0));
        let dense = Message::StoreFragment {
            ov: ov(),
            meta: Arc::new(full_meta()),
            fragment: Fragment::new(0, vec![0u8; 250]),
        };
        let delta = Message::StoreFragment {
            ov: ov(),
            meta: Arc::new(tagged),
            fragment: Fragment::new_delta(0, vec![0u8; 10], 100, 250),
        };
        // 240 fewer payload bytes, plus 6 window header and 9 metadata tag.
        assert_eq!(
            dense.wire_size() - delta.wire_size(),
            240 - erasure::DELTA_WINDOW_BYTES - 9
        );
    }

    #[test]
    fn client_traffic_is_flagged() {
        let put = Message::ClientPut {
            op: 1,
            key: Key::from_u64(1),
            value: Bytes::from_static(b"v"),
            policy: Policy::paper_default(),
        };
        assert!(put.is_client_traffic());
        assert_eq!(put.kind(), "ClientPutReq");
        let probe = Message::ConvergeKls {
            ov: ov(),
            meta: Arc::new(full_meta()),
        };
        assert!(!probe.is_client_traffic());
    }

    #[test]
    fn retrieve_ts_reply_grows_per_version() {
        let one = Message::RetrieveTsReply {
            op: 0,
            key: Key::from_u64(1),
            versions: vec![(Timestamp::new(SimTime::ZERO, 0), Arc::new(full_meta()))],
            more: false,
        };
        let two = Message::RetrieveTsReply {
            op: 0,
            key: Key::from_u64(1),
            versions: vec![
                (Timestamp::new(SimTime::ZERO, 0), Arc::new(full_meta())),
                (Timestamp::new(SimTime::ZERO, 1), Arc::new(full_meta())),
            ],
            more: false,
        };
        assert_eq!(
            two.wire_size() - one.wire_size(),
            12 + full_meta().wire_size()
        );
    }

    /// Metadata in every completeness state a batch entry can carry:
    /// nothing decided, one DC, both DCs.
    fn meta_variants() -> Vec<Arc<Metadata>> {
        let empty = Metadata::new(Policy::paper_default(), DataCenterId::new(0), 512);
        let mut one_dc = empty.clone();
        one_dc.add_dc_locations(
            DataCenterId::new(0),
            (0..6)
                .map(|i| Location {
                    fs: NodeId::new(u32::from(i) / 2),
                    disk: i % 2,
                })
                .collect(),
        );
        vec![Arc::new(empty), Arc::new(one_dc), Arc::new(full_meta())]
    }

    #[test]
    fn batch_kinds_share_the_singular_label() {
        let m = Arc::new(full_meta());
        let entries = vec![(ov(), m.clone())];
        assert_eq!(
            Message::ConvergeKlsBatch {
                entries: entries.clone()
            }
            .kind(),
            "KLSConvergeReq"
        );
        assert_eq!(
            Message::AmrIndicationBatch { entries }.kind(),
            "AMRIndication"
        );
        assert_eq!(
            Message::ConvergeFsBatch {
                entries: vec![(ov(), m, true)]
            }
            .kind(),
            "FSConvergeReq"
        );
    }

    /// The batching satellite's wire-size property, checked across every
    /// batch kind, entry count 1..=8 and mixed metadata completeness: a
    /// batch of k entries costs exactly one `HEADER_BYTES` plus the sum of
    /// the entry bodies, which equals the unbatched total minus
    /// (k-1)·`HEADER_BYTES`.
    #[test]
    fn batched_wire_size_amortizes_exactly_one_header() {
        let metas = meta_variants();
        for k in 1usize..=8 {
            let entries: Vec<(ObjectVersion, Arc<Metadata>)> = (0..k)
                .map(|i| {
                    (
                        ObjectVersion::new(
                            Key::from_u64(i as u64),
                            Timestamp::new(SimTime::ZERO, i as u32),
                        ),
                        metas[i % metas.len()].clone(),
                    )
                })
                .collect();

            let singles: Vec<Message> = entries
                .iter()
                .map(|(ov, m)| Message::ConvergeKls {
                    ov: *ov,
                    meta: m.clone(),
                })
                .collect();
            let unbatched: usize = singles.iter().map(Message::wire_size).sum();
            let batch = Message::ConvergeKlsBatch {
                entries: entries.clone(),
            };
            assert_eq!(batch.wire_size(), unbatched - (k - 1) * HEADER_BYTES);
            let bodies: usize = entries.iter().map(|(_, m)| OV_BYTES + m.wire_size()).sum();
            assert_eq!(batch.wire_size(), HEADER_BYTES + bodies);

            let amr_unbatched: usize = entries
                .iter()
                .map(|(ov, m)| {
                    Message::AmrIndication {
                        ov: *ov,
                        meta: m.clone(),
                    }
                    .wire_size()
                })
                .sum();
            let amr_batch = Message::AmrIndicationBatch {
                entries: entries.clone(),
            };
            assert_eq!(
                amr_batch.wire_size(),
                amr_unbatched - (k - 1) * HEADER_BYTES
            );

            let fs_entries: Vec<(ObjectVersion, Arc<Metadata>, bool)> = entries
                .iter()
                .enumerate()
                .map(|(i, (ov, m))| (*ov, m.clone(), i % 2 == 0))
                .collect();
            let fs_unbatched: usize = fs_entries
                .iter()
                .map(|(ov, m, ri)| {
                    Message::ConvergeFs {
                        ov: *ov,
                        meta: m.clone(),
                        recovery_intent: *ri,
                    }
                    .wire_size()
                })
                .sum();
            let fs_batch = Message::ConvergeFsBatch {
                entries: fs_entries,
            };
            assert_eq!(fs_batch.wire_size(), fs_unbatched - (k - 1) * HEADER_BYTES);
        }
    }
}
