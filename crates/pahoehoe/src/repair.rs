//! The background repair engine.
//!
//! The paper's recovery story is purely reactive: §4.2 sibling recovery
//! fires only when a convergence round happens to probe a version, and
//! the optional scrub merely re-hashes. Under sustained churn or a
//! rack-correlated outage the archive silently degrades until a read
//! notices. This module adds the production-shaped counterpart: one
//! [`RepairActor`] per data center that *continuously* tracks per-object
//! live-fragment counts from periodic FS inventory reports
//! ([`Message::RepairReport`]) and restores redundancy the moment an
//! object falls below a policy threshold — not only on reads.
//!
//! # Threshold policy
//!
//! Each actor watches the fragments assigned to its own data center
//! (`frags_per_dc` of them per object). An object becomes *below
//! threshold* when `live * 100 < threshold_pct * target` — integer
//! arithmetic, no floats, so every run computes the identical decision.
//! With the paper policy (6 per DC) and the default `threshold_pct = 80`,
//! repair triggers once a DC drops to 4 of its 6 fragments. Objects with
//! fewer than `k` live fragments *cluster-wide* are not repairable and
//! are left for read-path convergence to flag.
//!
//! # Donor selection
//!
//! Donors are the live fragments' holders. When racks are modeled
//! ([`Topology::with_racks`]) the actor prefers donors outside the
//! *failing racks* — the racks hosting the missing fragments — so a
//! rack-correlated outage does not also concentrate repair reads on the
//! sick rack. Within a preference class donors are ordered by `NodeId`,
//! keeping the schedule deterministic. When the local DC cannot supply
//! `k` live fragments the actor falls back to the sibling DC's assigned
//! holders (verified by the fetch itself: absent fragments answer ⊥).
//!
//! # Throttle and backpressure
//!
//! Repairs drain from a queue on a fixed-period tick. At most
//! [`RepairOptions::max_in_flight`] jobs run concurrently, and a token
//! bucket refilled with [`RepairOptions::bandwidth_per_tick`] bytes per
//! tick (0 = unthrottled) gates job admission; a tick whose budget cannot
//! cover the next job records a throttle stall and leaves the job queued.
//! Donor timeouts retry the whole job up to [`RepairOptions::retry_limit`]
//! times before abandoning it (a later report re-triggers from scratch).
//!
//! # Why repair-off digests are pinned
//!
//! The engine is entirely gated on `ConvergenceOptions::repair`: with
//! `None` (the default) no repair actors are built, no report timers are
//! scheduled and no messages or counters change, so the full 144-scenario
//! sweep digests stay byte-identical to the pre-repair tree. The
//! equivalence ladder (sequential vs parallel, default vs reference
//! protocol) therefore keeps guarding the paper protocol while the repair
//! scenarios guard the engine.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use erasure::{Codec, Fragment, FragmentIndex};
use simnet::{Actor, Context, NodeId, SimDuration, SimTime, TimerId};

use crate::messages::{
    Message, OpId, EV_REPAIR_ABANDONED, EV_REPAIR_BYTES, EV_REPAIR_COMPLETED,
    EV_REPAIR_QUEUE_DEPTH, EV_REPAIR_THROTTLE_STALLS, EV_REPAIR_TRIGGERED,
};
use crate::metadata::Metadata;
use crate::topology::{DataCenterId, Topology};
use crate::types::ObjectVersion;

/// Timer tag: periodic queue-drain tick.
const TAG_DRAIN: u64 = 1 << 56;
/// Timer tag: per-job donor timeout (low bits carry the job's op id).
const TAG_JOB: u64 = 2 << 56;
/// Mask selecting the tag class from a timer tag.
const TAG_MASK: u64 = 0xff << 56;

/// Policy knobs for the background repair engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairOptions {
    /// Redundancy floor as a percentage of the per-DC fragment target:
    /// an object triggers repair when
    /// `live * 100 < threshold_pct * target`. Integer percent keeps the
    /// decision float-free and deterministic. Default 80 (the tentpole's
    /// "0.8×target").
    pub threshold_pct: u32,
    /// How long an object may stay repairable-but-below-threshold before
    /// the `redundancy-floor` invariant calls it a violation. Must cover
    /// at least one report interval plus a repair round-trip.
    pub grace: SimDuration,
    /// Period of each FS's inventory report to its DC's repair actor.
    pub report_interval: SimDuration,
    /// Period of the repair actor's queue-drain tick.
    pub drain_interval: SimDuration,
    /// Maximum concurrently in-flight repair jobs (backpressure bound).
    pub max_in_flight: usize,
    /// Token-bucket refill per drain tick, in fragment payload bytes;
    /// `0` disables throttling entirely.
    pub bandwidth_per_tick: u64,
    /// How many times a job is retried after donor timeouts before it is
    /// abandoned (a later report re-triggers it from scratch).
    pub retry_limit: u32,
    /// Donor fetch timeout per job attempt.
    pub donor_timeout: SimDuration,
}

impl RepairOptions {
    /// Production-shaped defaults: 80 % floor, 30 s reports, 1 s drain
    /// ticks, 4 jobs in flight, unthrottled.
    pub fn paper_default() -> Self {
        RepairOptions {
            threshold_pct: 80,
            grace: SimDuration::from_secs(120),
            report_interval: SimDuration::from_secs(30),
            drain_interval: SimDuration::from_secs(1),
            max_in_flight: 4,
            bandwidth_per_tick: 0,
            retry_limit: 3,
            donor_timeout: SimDuration::from_secs(5),
        }
    }

    /// The default policy with a bandwidth budget of `bytes` per drain
    /// tick (the throttled benchmark cell).
    pub fn throttled(bytes: u64) -> Self {
        RepairOptions {
            bandwidth_per_tick: bytes,
            ..RepairOptions::paper_default()
        }
    }
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions::paper_default()
    }
}

/// What the actor knows about one object version.
#[derive(Debug)]
struct Tracked {
    meta: Arc<Metadata>,
    /// Fragment indices each reporting FS currently holds.
    have: BTreeMap<NodeId, BTreeSet<FragmentIndex>>,
    /// When this actor first learned of the version; threshold checks
    /// wait one report interval so every holder has had a chance to
    /// report before a fresh put looks degraded.
    first_seen: SimTime,
    state: JobState,
    retries: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Idle,
    Queued,
    InFlight(OpId),
}

/// One in-flight reconstruction.
#[derive(Debug)]
struct Job {
    ov: ObjectVersion,
    /// Missing `(fragment index, assigned FS)` pairs to regenerate.
    targets: Vec<(FragmentIndex, NodeId)>,
    /// Donor fragments collected so far.
    collected: Vec<Fragment>,
    /// Donor replies still outstanding.
    awaiting: usize,
    /// Store acks still outstanding after reconstruction.
    pending_acks: BTreeSet<FragmentIndex>,
    timer: TimerId,
}

/// Per-data-center background repair actor.
///
/// Fed by [`Message::RepairReport`] inventories from the DC's fragment
/// servers; fetches donors with [`Message::RetrieveFrag`], reconstructs
/// missing fragments and pushes them with [`Message::StoreFragment`] —
/// all existing protocol paths, so fragment servers need no repair-
/// specific handling.
pub struct RepairActor {
    topo: Arc<Topology>,
    my_dc: DataCenterId,
    opts: RepairOptions,
    tracked: BTreeMap<ObjectVersion, Tracked>,
    queue: VecDeque<ObjectVersion>,
    jobs: BTreeMap<OpId, Job>,
    next_op: OpId,
    /// Token bucket for the bandwidth throttle (bytes).
    tokens: u64,
    /// FSs of my DC that have sent at least one report; threshold checks
    /// start once every FS has reported.
    reported: BTreeSet<NodeId>,
    /// Codecs by `(k, n)`, built once per policy shape.
    codecs: BTreeMap<(u8, u8), Codec>,
    triggered: u64,
    completed: u64,
    abandoned: u64,
}

impl RepairActor {
    /// Creates the repair actor for data center `my_dc`.
    pub fn new(topo: Arc<Topology>, my_dc: DataCenterId, opts: RepairOptions) -> Self {
        RepairActor {
            topo,
            my_dc,
            opts,
            tracked: BTreeMap::new(),
            queue: VecDeque::new(),
            jobs: BTreeMap::new(),
            next_op: 1,
            tokens: 0,
            reported: BTreeSet::new(),
            codecs: BTreeMap::new(),
            triggered: 0,
            completed: 0,
            abandoned: 0,
        }
    }

    /// Repair jobs triggered so far.
    pub fn jobs_triggered(&self) -> u64 {
        self.triggered
    }

    /// Repair jobs completed so far.
    pub fn jobs_completed(&self) -> u64 {
        self.completed
    }

    /// Repair jobs abandoned after exhausting retries.
    pub fn jobs_abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Object versions currently queued or in flight.
    pub fn backlog(&self) -> usize {
        self.queue.len() + self.jobs.len()
    }

    /// Live fragment indices this actor believes `ov` has in its DC.
    pub fn live_fragments(&self, ov: ObjectVersion) -> usize {
        self.tracked.get(&ov).map_or(0, |t| Self::live_set(t).len())
    }

    fn live_set(t: &Tracked) -> BTreeSet<FragmentIndex> {
        t.have.values().flatten().copied().collect()
    }

    /// The fragment indices assigned to this actor's DC under `meta`.
    fn local_assigned(&self, meta: &Metadata) -> Vec<(FragmentIndex, NodeId)> {
        meta.assignments()
            .filter(|(_, loc)| self.topo.dc_of(loc.fs) == Some(self.my_dc))
            .map(|(idx, loc)| (idx, loc.fs))
            .collect()
    }

    /// Whether `ov` is below the repair threshold and repairable; queues
    /// it if so.
    fn maybe_trigger(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        let Some(t) = self.tracked.get(&ov) else {
            return;
        };
        if t.state != JobState::Idle {
            return;
        }
        // Wait for full visibility: every FS reported once, and the
        // version has been known for a full report interval.
        if self.reported.len() < self.topo.fss_in(self.my_dc).len() {
            return;
        }
        if ctx.now() < t.first_seen + self.opts.report_interval {
            return;
        }
        let local = self.local_assigned(&t.meta);
        let target = local.len() as u64;
        if target == 0 {
            return;
        }
        let live_set = Self::live_set(t);
        let live = local
            .iter()
            .filter(|(idx, _)| live_set.contains(idx))
            .count() as u64;
        let k = u64::from(t.meta.policy().k);
        let below_threshold = live * 100 < u64::from(self.opts.threshold_pct) * target;
        // Repairable: the cluster still has >= k fragments. Locally we
        // only *know* our DC's live set; assigned remote fragments count
        // as potential donors (the fetch verifies).
        let remote = t.meta.location_count() as u64 - target;
        let repairable = live + remote >= k && live < target;
        if below_threshold && repairable {
            // lint:allow(panic-path): tracked.get succeeded above
            let t = self.tracked.get_mut(&ov).expect("tracked above");
            t.state = JobState::Queued;
            self.queue.push_back(ov);
            self.triggered += 1;
            ctx.record_event(EV_REPAIR_TRIGGERED, 1);
        }
    }

    /// Estimated payload bytes one repair of `ov` moves: `k` donor
    /// fetches plus one push per missing fragment.
    fn job_cost(&self, t: &Tracked) -> u64 {
        let p = t.meta.policy();
        let flen = t.meta.value_len().div_ceil(usize::from(p.k.max(1))) as u64;
        let local = self.local_assigned(&t.meta);
        let live_set = Self::live_set(t);
        let missing = local
            .iter()
            .filter(|(idx, _)| !live_set.contains(idx))
            .count() as u64;
        (u64::from(p.k) + missing) * flen
    }

    /// Starts the repair of `ov`: pick donors, fire the fetches, arm the
    /// job timeout.
    fn start_job(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        let Some(t) = self.tracked.get(&ov) else {
            return;
        };
        let meta = Arc::clone(&t.meta);
        let live_set = Self::live_set(t);
        let local = self.local_assigned(&meta);
        let targets: Vec<(FragmentIndex, NodeId)> = local
            .iter()
            .filter(|(idx, _)| !live_set.contains(idx))
            .copied()
            .collect();
        if targets.is_empty() {
            // A newer report healed it while queued.
            if let Some(t) = self.tracked.get_mut(&ov) {
                t.state = JobState::Idle;
                t.retries = 0;
            }
            return;
        }
        // Failing racks: the racks hosting the missing fragments.
        let failing: BTreeSet<usize> = targets
            .iter()
            .filter_map(|(_, fs)| self.topo.rack_of(self.my_dc, *fs))
            .collect();
        // Donor candidates: live local fragments first (ordered to avoid
        // the failing racks), then the sibling DCs' assigned holders.
        let mut donors: Vec<(bool, bool, NodeId, FragmentIndex)> = Vec::new();
        for (idx, fs) in &local {
            if live_set.contains(idx) {
                let sick = self
                    .topo
                    .rack_of(self.my_dc, *fs)
                    .is_some_and(|r| failing.contains(&r));
                donors.push((false, sick, *fs, *idx));
            }
        }
        for (idx, loc) in meta.assignments() {
            if self.topo.dc_of(loc.fs) != Some(self.my_dc) {
                donors.push((true, false, loc.fs, idx));
            }
        }
        donors.sort_unstable();
        let k = usize::from(meta.policy().k);
        let picked: Vec<(NodeId, FragmentIndex)> = {
            let mut seen = BTreeSet::new();
            donors
                .into_iter()
                .filter(|(_, _, _, idx)| seen.insert(*idx))
                .take(k)
                .map(|(_, _, fs, idx)| (fs, idx))
                .collect()
        };
        let op = self.next_op;
        self.next_op += 1;
        let awaiting = picked.len();
        for (fs, idx) in picked {
            ctx.send(
                fs,
                Message::RetrieveFrag {
                    op,
                    ov,
                    fragment: idx,
                },
            );
        }
        let timer = ctx.schedule_timer(self.opts.donor_timeout, TAG_JOB | op);
        self.jobs.insert(
            op,
            Job {
                ov,
                targets,
                collected: Vec::new(),
                awaiting,
                pending_acks: BTreeSet::new(),
                timer,
            },
        );
        if let Some(t) = self.tracked.get_mut(&ov) {
            t.state = JobState::InFlight(op);
        }
    }

    /// Reconstructs and pushes the missing fragments once `k` donors have
    /// answered.
    fn try_reconstruct(&mut self, ctx: &mut Context<'_, Message>, op: OpId) {
        let Some(job) = self.jobs.get(&op) else {
            return;
        };
        let ov = job.ov;
        let Some(t) = self.tracked.get(&ov) else {
            return;
        };
        let meta = Arc::clone(&t.meta);
        let p = *meta.policy();
        let k = usize::from(p.k);
        if job.collected.len() < k {
            if job.awaiting == 0 {
                // Every donor answered and we still lack k fragments.
                self.retry_or_abandon(ctx, op);
            }
            return;
        }
        let codec = self.codecs.entry((p.k, p.n)).or_insert_with(|| {
            // lint:allow(panic-path): the policy was validated at put time
            Codec::new(usize::from(p.k), usize::from(p.n)).expect("policy validated at put time")
        });
        let missing: Vec<FragmentIndex> = job.targets.iter().map(|(idx, _)| *idx).collect();
        let Ok(rebuilt) = codec.recover(&job.collected, &missing, meta.value_len()) else {
            self.retry_or_abandon(ctx, op);
            return;
        };
        let mut pushed_bytes = 0u64;
        let mut pending_acks = BTreeSet::new();
        for frag in rebuilt {
            let idx = frag.index();
            if let Some((_, fs)) = job.targets.iter().find(|(i, _)| *i == idx) {
                pushed_bytes += frag.len() as u64;
                pending_acks.insert(idx);
                ctx.send(
                    *fs,
                    Message::StoreFragment {
                        ov,
                        meta: Arc::clone(&meta),
                        fragment: frag,
                    },
                );
            }
        }
        ctx.record_event(EV_REPAIR_BYTES, pushed_bytes);
        if let Some(job) = self.jobs.get_mut(&op) {
            job.collected.clear();
            job.pending_acks = pending_acks;
        }
    }

    /// A job attempt failed (donor timeout or unrecoverable donor set):
    /// requeue with the retry budget, or abandon.
    fn retry_or_abandon(&mut self, ctx: &mut Context<'_, Message>, op: OpId) {
        let Some(job) = self.jobs.remove(&op) else {
            return;
        };
        ctx.cancel_timer(job.timer);
        let ov = job.ov;
        let Some(t) = self.tracked.get_mut(&ov) else {
            return;
        };
        t.retries += 1;
        if t.retries > self.opts.retry_limit {
            t.state = JobState::Idle;
            t.retries = 0;
            self.abandoned += 1;
            ctx.record_event(EV_REPAIR_ABANDONED, 1);
        } else {
            // Back off by re-queuing: the next drain tick (or a later
            // one, under throttle) restarts the job with fresh donors.
            t.state = JobState::Queued;
            self.queue.push_back(ov);
        }
    }

    /// One drain tick: refill the token bucket, record queue depth,
    /// admit jobs within the in-flight and bandwidth budgets.
    fn drain(&mut self, ctx: &mut Context<'_, Message>) {
        ctx.record_event(EV_REPAIR_QUEUE_DEPTH, self.queue.len() as u64);
        if self.opts.bandwidth_per_tick > 0 {
            self.tokens = (self.tokens + self.opts.bandwidth_per_tick)
                .min(self.opts.bandwidth_per_tick.saturating_mul(8));
        }
        while self.jobs.len() < self.opts.max_in_flight {
            let Some(&ov) = self.queue.front() else {
                break;
            };
            if self.opts.bandwidth_per_tick > 0 {
                let cost = self.tracked.get(&ov).map_or(0, |t| self.job_cost(t));
                if cost > self.tokens {
                    ctx.record_event(EV_REPAIR_THROTTLE_STALLS, 1);
                    break;
                }
                self.tokens -= cost;
            }
            self.queue.pop_front();
            self.start_job(ctx, ov);
        }
        ctx.schedule_timer(self.opts.drain_interval, TAG_DRAIN);
    }
}

impl Actor<Message> for RepairActor {
    fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
        ctx.schedule_timer(self.opts.drain_interval, TAG_DRAIN);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: Message) {
        match msg {
            Message::RepairReport { entries } => {
                self.reported.insert(from);
                let now = ctx.now();
                // Replace the reporter's inventory wholesale: a fragment
                // it no longer lists is gone (disk loss, corruption).
                let mut fresh: BTreeMap<ObjectVersion, BTreeSet<FragmentIndex>> = BTreeMap::new();
                for (ov, meta, have) in entries {
                    fresh.insert(ov, have.iter().copied().collect());
                    let t = self.tracked.entry(ov).or_insert_with(|| Tracked {
                        meta: Arc::clone(&meta),
                        have: BTreeMap::new(),
                        first_seen: now,
                        state: JobState::Idle,
                        retries: 0,
                    });
                    Metadata::merge_shared(&mut t.meta, &meta);
                }
                let touched: Vec<ObjectVersion> = self
                    .tracked
                    .iter_mut()
                    .map(|(&ov, t)| {
                        match fresh.remove(&ov) {
                            Some(set) => {
                                t.have.insert(from, set);
                            }
                            None => {
                                // Not in this report: the FS holds nothing.
                                t.have.remove(&from);
                            }
                        }
                        ov
                    })
                    .collect();
                for ov in touched {
                    self.maybe_trigger(ctx, ov);
                }
            }

            Message::RetrieveFragReply { op, data, .. } => {
                if let Some(job) = self.jobs.get_mut(&op) {
                    job.awaiting = job.awaiting.saturating_sub(1);
                    // Delta-shaped fragments cannot feed the codec
                    // directly; treat them like an absent donor.
                    if let Some(frag) = data.filter(|f| !f.is_delta()) {
                        ctx.record_event(EV_REPAIR_BYTES, frag.len() as u64);
                        job.collected.push(frag);
                    }
                    self.try_reconstruct(ctx, op);
                }
            }

            Message::StoreFragmentReply { ov, fragment } => {
                let done = self.jobs.iter_mut().find_map(|(&op, job)| {
                    if job.ov == ov && job.pending_acks.remove(&fragment) {
                        Some((op, job.pending_acks.is_empty()))
                    } else {
                        None
                    }
                });
                if let Some(t) = self.tracked.get_mut(&ov) {
                    t.have.entry(from).or_default().insert(fragment);
                }
                if let Some((op, true)) = done {
                    if let Some(job) = self.jobs.remove(&op) {
                        ctx.cancel_timer(job.timer);
                    }
                    if let Some(t) = self.tracked.get_mut(&ov) {
                        t.state = JobState::Idle;
                        t.retries = 0;
                    }
                    self.completed += 1;
                    ctx.record_event(EV_REPAIR_COMPLETED, 1);
                }
            }

            // Anything else (stray replies after an abandon, protocol
            // traffic misdirected by a fault scenario) is ignored.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, tag: u64) {
        match tag & TAG_MASK {
            TAG_DRAIN => self.drain(ctx),
            TAG_JOB => {
                let op = tag & !TAG_MASK;
                if self.jobs.contains_key(&op) {
                    self.retry_or_abandon(ctx, op);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kls::Kls;
    use crate::policy::Policy;
    use crate::types::{Key, Timestamp};

    fn topo() -> Arc<Topology> {
        // One DC: 1 KLS, 6 FSs in 3 racks.
        Topology::with_racks(
            vec![(
                vec![NodeId::new(0)],
                (1..=6).map(NodeId::new).collect::<Vec<_>>(),
            )],
            3,
        )
    }

    fn ov(n: u64) -> ObjectVersion {
        ObjectVersion::new(
            Key::from_u64(n),
            Timestamp::new(simnet::SimTime::from_micros(n), 0),
        )
    }

    fn meta_for(t: &Topology, v: ObjectVersion) -> Arc<Metadata> {
        // Single-DC policy: k=4, n=6, all six fragments in DC0.
        let p = Policy::new(4, 6, 1, 2);
        let mut m = Metadata::new(p, DataCenterId::new(0), 1024);
        m.add_dc_locations(
            DataCenterId::new(0),
            Kls::which_locs(t, DataCenterId::new(0), v, &p),
        );
        Arc::new(m)
    }

    #[test]
    fn threshold_is_integer_percent_of_local_target() {
        let t = topo();
        let v = ov(1);
        let meta = meta_for(&t, v);
        let mut actor = RepairActor::new(t, DataCenterId::new(0), RepairOptions::paper_default());
        let mut have = BTreeMap::new();
        for (idx, loc) in meta.assignments() {
            have.entry(loc.fs).or_insert_with(BTreeSet::new).insert(idx);
        }
        actor.tracked.insert(
            v,
            Tracked {
                meta,
                have,
                first_seen: SimTime::ZERO,
                state: JobState::Idle,
                retries: 0,
            },
        );
        assert_eq!(actor.live_fragments(v), 6);
        // 6 live of target 6: 600 >= 80*6=480, healthy.
        let tr = actor.tracked.get(&v).unwrap();
        let live = RepairActor::live_set(tr).len() as u64;
        assert!(live * 100 >= 80 * 6);
    }

    #[test]
    fn job_cost_counts_fetches_and_pushes() {
        let t = topo();
        let v = ov(2);
        let meta = meta_for(&t, v);
        let actor = RepairActor::new(
            t.clone(),
            DataCenterId::new(0),
            RepairOptions::paper_default(),
        );
        // 4 of 6 fragments live -> 2 missing; flen = 1024/4 = 256.
        let mut have: BTreeMap<NodeId, BTreeSet<FragmentIndex>> = BTreeMap::new();
        for (idx, loc) in meta.assignments().take(4) {
            have.entry(loc.fs).or_default().insert(idx);
        }
        let tracked = Tracked {
            meta,
            have,
            first_seen: SimTime::ZERO,
            state: JobState::Idle,
            retries: 0,
        };
        assert_eq!(actor.job_cost(&tracked), (4 + 2) * 256);
    }
}
