//! The workload client.
//!
//! Drives a scripted sequence of puts and gets through one proxy,
//! retrying failed puts until they succeed — the behaviour behind the
//! paper's lossy-network experiment (§5.4), which counts how many put
//! operations must be *attempted* for 100 to *succeed*, and classifies the
//! object versions left behind by failed attempts (excess-AMR versus
//! non-durable).

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::Bytes;
use simnet::{Actor, Context, NodeId, SimDuration, SimTime};

use crate::messages::{Message, OpId};
use crate::policy::Policy;
use crate::types::{Key, ObjectVersion};
use crate::workload::StreamingWorkload;

const TAG_NEXT_OP: u64 = 1;
const TAG_OP_TIMEOUT: u64 = 1 << 56;
const TAG_MASK: u64 = 0xff << 56;

/// One scripted client operation.
#[derive(Debug, Clone)]
pub enum ClientOp {
    /// Store `value` under `key`, retrying until the proxy reports
    /// success.
    Put {
        /// Object key.
        key: Key,
        /// Value to store.
        value: Bytes,
        /// Durability policy.
        policy: Policy,
    },
    /// Retrieve the object stored under `key` (no retry; the outcome is
    /// recorded as-is).
    Get {
        /// Object key.
        key: Key,
    },
}

/// The outcome of a completed get.
#[derive(Debug, Clone, PartialEq)]
pub struct GetOutcome {
    /// The key requested.
    pub key: Key,
    /// Version and value returned, or `None` if the get aborted/failed.
    pub result: Option<(ObjectVersion, Bytes)>,
}

/// A scripted workload client bound to one proxy.
pub struct Client {
    proxy: NodeId,
    /// Pause between consecutive operations.
    gap: SimDuration,
    /// Pause before retrying a failed put.
    retry_delay: SimDuration,
    /// Give up on an unanswered operation after this long. The request or
    /// the answer may have been dropped by a lossy network; the paper's
    /// client "effectively handles [the proxy's unknown answer] like a
    /// timeout" and retries (§3.5). Must exceed the proxy's own
    /// operation timeout plus a round trip.
    op_timeout: SimDuration,
    script: VecDeque<ClientOp>,
    /// Constant-memory op source drained after `script`: ops synthesized
    /// one at a time from `(workload, next index)`, so a million-put
    /// workload never materializes a script. Retries re-enter `script`.
    stream: Option<(StreamingWorkload, u64)>,
    in_flight: Option<(OpId, ClientOp)>,
    in_flight_timer: Option<simnet::TimerId>,
    /// When the in-flight operation was issued.
    in_flight_since: SimTime,
    next_op: OpId,
    wakeup_scheduled: bool,
    /// Attempts that timed out with no proxy answer at all.
    puts_timed_out: u64,
    // ---- outcome accounting ----
    puts_attempted: u64,
    puts_succeeded: u64,
    /// Put attempts the proxy answered (success or failure). Paired with
    /// [`last_put_latency`](Client::last_put_latency) this lets an
    /// external observer (e.g. the scale bench's inspector) stream every
    /// per-put latency into a constant-memory estimator.
    puts_answered: u64,
    /// Issue-to-answer latency of the most recently answered put.
    last_put_latency: SimDuration,
    /// Versions whose put the client saw succeed.
    success_versions: BTreeSet<ObjectVersion>,
    /// Versions created by attempts the client saw fail.
    failed_versions: BTreeSet<ObjectVersion>,
    /// Version each key's successful put produced.
    version_of: BTreeMap<Key, ObjectVersion>,
    gets_done: Vec<GetOutcome>,
}

impl Client {
    /// Creates a client that will run `script` against `proxy`.
    pub fn new(proxy: NodeId, script: Vec<ClientOp>) -> Self {
        Client {
            proxy,
            gap: SimDuration::ZERO,
            retry_delay: SimDuration::from_millis(200),
            op_timeout: SimDuration::from_secs(5),
            script: script.into(),
            stream: None,
            in_flight: None,
            in_flight_timer: None,
            in_flight_since: SimTime::ZERO,
            next_op: 1,
            wakeup_scheduled: false,
            puts_timed_out: 0,
            puts_attempted: 0,
            puts_succeeded: 0,
            puts_answered: 0,
            last_put_latency: SimDuration::ZERO,
            success_versions: BTreeSet::new(),
            failed_versions: BTreeSet::new(),
            version_of: BTreeMap::new(),
            gets_done: Vec::new(),
        }
    }

    /// Builds the paper's standard workload: `count` puts of `value_len`
    /// bytes each, with deterministic per-key contents.
    pub fn standard_workload(
        proxy: NodeId,
        count: usize,
        value_len: usize,
        policy: Policy,
    ) -> Self {
        Self::standard_workload_rounds(proxy, count, value_len, policy, 1)
    }

    /// The standard workload repeated `rounds` times: every round puts
    /// each key once, with the same key-derived contents each round, so
    /// `rounds > 1` turns the insert-only script into an overwrite stream
    /// — the shape that exercises delta coding — while staying compatible
    /// with byte-level durability checks (the blob for a key never
    /// changes across rounds).
    pub fn standard_workload_rounds(
        proxy: NodeId,
        count: usize,
        value_len: usize,
        policy: Policy,
        rounds: usize,
    ) -> Self {
        let script = (0..rounds.max(1))
            .flat_map(|_| {
                (0..count).map(move |i| ClientOp::Put {
                    key: Key::from_u64(i as u64 + 1),
                    value: Self::synthetic_value(i as u64, value_len),
                    policy,
                })
            })
            .collect();
        Client::new(proxy, script)
    }

    /// Creates a client that synthesizes its puts one at a time from a
    /// [`StreamingWorkload`] — constant memory in the workload size.
    pub fn streaming(proxy: NodeId, workload: StreamingWorkload) -> Self {
        let mut c = Client::new(proxy, Vec::new());
        c.stream = Some((workload, 0));
        c
    }

    /// Deterministic synthetic object contents for workload key `i`.
    pub fn synthetic_value(i: u64, len: usize) -> Bytes {
        let mut v = Vec::with_capacity(len);
        let mut state = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            v.push(state as u8);
        }
        Bytes::from(v)
    }

    /// Appends an operation to the script. The caller must also wake the
    /// client with a scheduled timer if the simulation already started
    /// (see [`Cluster::put`](crate::cluster::Cluster::put)).
    pub fn enqueue(&mut self, op: ClientOp) {
        self.script.push_back(op);
    }

    /// All operations done (script and stream drained, nothing in
    /// flight)?
    pub fn is_done(&self) -> bool {
        self.script.is_empty() && !self.stream_has_more() && self.in_flight.is_none()
    }

    fn stream_has_more(&self) -> bool {
        self.stream
            .as_ref()
            .is_some_and(|(wl, next)| *next < wl.puts)
    }

    /// The next operation: scripted ops (including retries pushed back to
    /// the front) first, then the stream.
    fn next_op_from_script(&mut self) -> Option<ClientOp> {
        if let Some(op) = self.script.pop_front() {
            return Some(op);
        }
        let (wl, next) = self.stream.as_mut()?;
        if *next >= wl.puts {
            return None;
        }
        let op = wl.op_at(*next);
        *next += 1;
        Some(op)
    }

    /// Overrides the operation timeout (see the field docs).
    pub fn set_op_timeout(&mut self, timeout: SimDuration) {
        self.op_timeout = timeout;
    }

    /// Put attempts issued so far (the paper's "puts attempted").
    pub fn puts_attempted(&self) -> u64 {
        self.puts_attempted
    }

    /// Attempts that received no proxy answer before the client timeout.
    pub fn puts_timed_out(&self) -> u64 {
        self.puts_timed_out
    }

    /// Puts the proxy reported successful.
    pub fn puts_succeeded(&self) -> u64 {
        self.puts_succeeded
    }

    /// Put attempts the proxy answered (success or failure) so far.
    pub fn puts_answered(&self) -> u64 {
        self.puts_answered
    }

    /// Issue-to-answer latency of the most recently answered put.
    pub fn last_put_latency(&self) -> SimDuration {
        self.last_put_latency
    }

    /// Versions whose put succeeded.
    pub fn success_versions(&self) -> &BTreeSet<ObjectVersion> {
        &self.success_versions
    }

    /// Versions created by failed attempts (candidates for excess-AMR or
    /// non-durable classification).
    pub fn failed_versions(&self) -> &BTreeSet<ObjectVersion> {
        &self.failed_versions
    }

    /// The version the successful put of `key` produced.
    pub fn version_of(&self, key: Key) -> Option<ObjectVersion> {
        self.version_of.get(&key).copied()
    }

    /// Outcomes of completed gets, in completion order.
    pub fn gets_done(&self) -> &[GetOutcome] {
        &self.gets_done
    }

    fn kick(&mut self, ctx: &mut Context<'_, Message>, delay: SimDuration) {
        if !self.wakeup_scheduled {
            ctx.schedule_timer(delay, TAG_NEXT_OP);
            self.wakeup_scheduled = true;
        }
    }

    fn issue_next(&mut self, ctx: &mut Context<'_, Message>) {
        if self.in_flight.is_some() {
            return;
        }
        let Some(op) = self.next_op_from_script() else {
            return;
        };
        let id = self.next_op;
        self.next_op += 1;
        match &op {
            ClientOp::Put { key, value, policy } => {
                self.puts_attempted += 1;
                ctx.send(
                    self.proxy,
                    Message::ClientPut {
                        op: id,
                        key: *key,
                        value: value.clone(),
                        policy: *policy,
                    },
                );
            }
            ClientOp::Get { key } => {
                ctx.send(self.proxy, Message::ClientGet { op: id, key: *key });
            }
        }
        self.in_flight = Some((id, op));
        self.in_flight_since = ctx.now();
        self.in_flight_timer = Some(ctx.schedule_timer(self.op_timeout, TAG_OP_TIMEOUT | id));
    }

    fn clear_in_flight_timer(&mut self, ctx: &mut Context<'_, Message>) {
        if let Some(t) = self.in_flight_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    /// The in-flight operation got no answer: count it and retry puts
    /// (gets record a failed outcome).
    fn on_op_timeout(&mut self, ctx: &mut Context<'_, Message>, id: OpId) {
        let Some((current_id, op)) = self.in_flight.take() else {
            return;
        };
        if current_id != id {
            self.in_flight = Some((current_id, op));
            return;
        }
        self.in_flight_timer = None;
        match op {
            put @ ClientOp::Put { .. } => {
                self.puts_timed_out += 1;
                self.script.push_front(put);
                self.kick(ctx, self.retry_delay);
            }
            ClientOp::Get { key } => {
                self.gets_done.push(GetOutcome { key, result: None });
                self.kick(ctx, self.gap);
            }
        }
    }
}

impl Actor<Message> for Client {
    fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
        if !self.script.is_empty() || self.stream_has_more() {
            self.kick(ctx, SimDuration::ZERO);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Message>, _from: NodeId, msg: Message) {
        match msg {
            Message::ClientPutReply { op, ov, success } => {
                let Some((id, current)) = self.in_flight.take() else {
                    return;
                };
                if id != op {
                    self.in_flight = Some((id, current));
                    return;
                }
                self.clear_in_flight_timer(ctx);
                let ClientOp::Put { key, .. } = &current else {
                    debug_assert!(false, "put reply while get in flight");
                    return;
                };
                self.puts_answered += 1;
                self.last_put_latency = SimDuration::from_micros(
                    ctx.now().as_micros() - self.in_flight_since.as_micros(),
                );
                if success {
                    self.puts_succeeded += 1;
                    self.success_versions.insert(ov);
                    self.version_of.insert(*key, ov);
                    self.kick(ctx, self.gap);
                } else {
                    // Retry the same logical put; a new attempt makes a
                    // new object version (fresh timestamp).
                    self.failed_versions.insert(ov);
                    self.script.push_front(current);
                    self.kick(ctx, self.retry_delay);
                }
            }
            Message::ClientGetReply { op, result } => {
                let Some((id, current)) = self.in_flight.take() else {
                    return;
                };
                if id != op {
                    self.in_flight = Some((id, current));
                    return;
                }
                self.clear_in_flight_timer(ctx);
                let ClientOp::Get { key } = &current else {
                    debug_assert!(false, "get reply while put in flight");
                    return;
                };
                self.gets_done.push(GetOutcome { key: *key, result });
                self.kick(ctx, self.gap);
            }
            other => {
                debug_assert!(false, "client received unexpected {:?}", other);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, tag: u64) {
        match tag & TAG_MASK {
            TAG_OP_TIMEOUT => self.on_op_timeout(ctx, tag & !TAG_MASK),
            _ => {
                debug_assert_eq!(tag, TAG_NEXT_OP);
                self.wakeup_scheduled = false;
                self.issue_next(ctx);
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_values_are_deterministic_and_distinct() {
        let a = Client::synthetic_value(1, 256);
        let b = Client::synthetic_value(1, 256);
        let c = Client::synthetic_value(2, 256);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn standard_workload_has_one_put_per_key() {
        let c = Client::standard_workload(NodeId::new(0), 5, 128, Policy::paper_default());
        assert_eq!(c.script.len(), 5);
        let keys: BTreeSet<Key> = c
            .script
            .iter()
            .map(|op| match op {
                ClientOp::Put { key, .. } => *key,
                ClientOp::Get { key } => *key,
            })
            .collect();
        assert_eq!(keys.len(), 5);
        assert!(!c.is_done());
    }

    #[test]
    fn empty_script_is_done() {
        let c = Client::new(NodeId::new(0), Vec::new());
        assert!(c.is_done());
        assert_eq!(c.puts_attempted(), 0);
    }
}
