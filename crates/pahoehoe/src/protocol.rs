//! Protocol hot-path mode switches and dense helpers.
//!
//! PRs 2 and 3 gave the codec and the engine process-wide *reference
//! switches* (`erasure::Codec::set_reference_mode`,
//! `simnet::set_reference_queue_mode`) so the recorded benchmarks can
//! attribute speedups honestly, one layer at a time. This module does the
//! same for the protocol layer itself:
//!
//! * **Shared metadata** — with `share_metadata` on (the default), actors
//!   pass [`Metadata`] around as refcounted [`Arc`]s: a send is a refcount
//!   bump. The reference mode deep-copies the metadata on every share,
//!   reproducing the seed's clone-per-send cost. Behavior is identical in
//!   both modes; `wire_size()` models serialized bytes, not in-memory
//!   layout, so the accounting never changes.
//! * **Batched rounds** — with `batch_rounds` on, a fragment server
//!   coalesces the convergence traffic one `run_round` emits to the same
//!   destination into a single multi-entry message (one shared
//!   `HEADER_BYTES`, per-entry bodies). The paper's rounds are
//!   *unsynchronized* — per-node and uncoordinated (§4.1) — so nothing in
//!   the protocol depends on entries arriving as separate messages.
//!   Batching is implemented as coalesced *accounting*: each entry still
//!   traverses the simulated channel individually, in the exact order the
//!   unbatched protocol sends it, drawing the same RNG — so event order,
//!   actor state and final AMR outcomes are bit-identical with batching on
//!   or off, and only the message/byte metrics change. Off by default so
//!   the paper-faithful experiment figures keep their per-message curves.
//!
//! Modes are captured per actor at construction (see
//! [`ClusterConfig::protocol`](crate::cluster::ClusterConfig)); the
//! process-wide setters here only choose the default for subsequently
//! built actors, mirroring the codec/engine switches.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use erasure::FragmentIndex;

use crate::metadata::Metadata;

/// Process-wide default for `share_metadata = false`; see
/// [`set_reference_protocol_mode`].
static REFERENCE_PROTOCOL_MODE: AtomicBool = AtomicBool::new(false);

/// Process-wide default for `batch_rounds = true`; see
/// [`set_batched_rounds`].
static BATCH_ROUNDS: AtomicBool = AtomicBool::new(false);

/// Process-wide default for `shard_store = false`; see
/// [`set_flat_store`].
static FLAT_STORE: AtomicBool = AtomicBool::new(false);

/// Process-wide default for `compact_converged = true`; see
/// [`set_compaction`].
static COMPACT_CONVERGED: AtomicBool = AtomicBool::new(false);

/// Process-wide default for `delta = true`; see [`set_delta_coding`].
static DELTA_CODING: AtomicBool = AtomicBool::new(false);

/// Switches every *subsequently constructed* protocol actor to the
/// pre-optimization metadata handling: a deep [`Metadata`] copy on every
/// share, exactly the seed's clone-per-send cost. Mirrors
/// `erasure::Codec::set_reference_mode` / `simnet::set_reference_queue_mode`
/// and exists solely so the recorded benchmark
/// (`cargo run -p bench --release --bin baseline`) measures an honest
/// before/after. Not for production use.
pub fn set_reference_protocol_mode(enabled: bool) {
    REFERENCE_PROTOCOL_MODE.store(enabled, Ordering::Relaxed);
}

/// Whether [`set_reference_protocol_mode`] is on.
pub fn reference_protocol_mode() -> bool {
    REFERENCE_PROTOCOL_MODE.load(Ordering::Relaxed)
}

/// Enables coalesced convergence-round accounting for every
/// *subsequently constructed* fragment server (see the module docs for
/// why this cannot change protocol behavior). Off by default.
pub fn set_batched_rounds(enabled: bool) {
    BATCH_ROUNDS.store(enabled, Ordering::Relaxed);
}

/// Whether [`set_batched_rounds`] is on.
pub fn batched_rounds() -> bool {
    BATCH_ROUNDS.load(Ordering::Relaxed)
}

/// Switches every *subsequently constructed* fragment server back to the
/// flat (unsharded) per-FS version index, the pre-scale-tier layout kept
/// as the differential oracle for the sharded store. Off by default.
pub fn set_flat_store(enabled: bool) {
    FLAT_STORE.store(enabled, Ordering::Relaxed);
}

/// Whether [`set_flat_store`] is on.
pub fn flat_store() -> bool {
    FLAT_STORE.load(Ordering::Relaxed)
}

/// Enables converged-version compaction for every *subsequently
/// constructed* fragment server: once a version is settled AMR locally
/// *and* a strictly newer version of the same key is also settled AMR
/// locally, the version's fragment bytes, checksums and metadata handle
/// are released, leaving an O(1) residual record. Off by default so the
/// paper-faithful sweeps keep full per-version state (and the
/// durable-monotone invariant, which compaction deliberately relaxes for
/// superseded versions, stays exact).
pub fn set_compaction(enabled: bool) {
    COMPACT_CONVERGED.store(enabled, Ordering::Relaxed);
}

/// Whether [`set_compaction`] is on.
pub fn compaction() -> bool {
    COMPACT_CONVERGED.load(Ordering::Relaxed)
}

/// Enables XOR-delta stripe coding for every *subsequently constructed*
/// proxy and fragment server: when a proxy still holds the previous
/// version's value for a key (its bounded stripe cache), the overwrite is
/// encoded as windowed delta fragments — by GF(2⁸) linearity,
/// `encode(a) XOR encode(b) = encode(a XOR b)` — and each FS resolves the
/// delta against its stored base fragment at store time, so stored state
/// stays dense. Off by default: the paper-faithful sweeps and the
/// recorded digests use full encodes; delta runs opt in (explorer
/// `--delta`, the delta bench).
pub fn set_delta_coding(enabled: bool) {
    DELTA_CODING.store(enabled, Ordering::Relaxed);
}

/// Whether [`set_delta_coding`] is on.
pub fn delta_coding() -> bool {
    DELTA_CODING.load(Ordering::Relaxed)
}

/// The protocol-layer optimization switches an actor runs with, captured
/// once at construction so parallel tests can pin a mode per cluster
/// without racing on the process-wide defaults.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ProtocolMode {
    /// Share metadata by refcount (`true`, the default) or deep-copy it on
    /// every share (the seed's behavior, for reference benchmarks).
    pub share_metadata: bool,
    /// Coalesce each convergence round's per-destination traffic into
    /// multi-entry messages (accounting only; see module docs).
    pub batch_rounds: bool,
    /// Key-shard the per-FS version index (`true`, the default): lookups
    /// hash the key into a fixed power-of-two shard array so a per-key
    /// operation touches one small map. `false` keeps the flat map as the
    /// differential oracle.
    pub shard_store: bool,
    /// Release the state of durably converged, superseded versions down
    /// to an O(1) residual record (see [`set_compaction`]). Off by
    /// default; scale runs opt in.
    pub compact_converged: bool,
    /// Encode overwrites of cached keys as XOR-delta stripes resolved at
    /// the FS store path (see [`set_delta_coding`]). Off by default so
    /// the pinned sweep digests keep their full-encode byte accounting.
    pub delta: bool,
}

impl ProtocolMode {
    /// The optimized default: shared metadata, sharded store, unbatched
    /// accounting (the paper-faithful per-message figures), no
    /// compaction.
    pub const fn optimized() -> Self {
        ProtocolMode {
            share_metadata: true,
            batch_rounds: false,
            shard_store: true,
            compact_converged: false,
            delta: false,
        }
    }

    /// The pre-optimization reference: deep-copied metadata, flat
    /// unsharded store, unbatched, no compaction.
    pub const fn reference() -> Self {
        ProtocolMode {
            share_metadata: false,
            batch_rounds: false,
            shard_store: false,
            compact_converged: false,
            delta: false,
        }
    }

    /// Shared metadata plus coalesced round accounting.
    pub const fn batched() -> Self {
        ProtocolMode {
            share_metadata: true,
            batch_rounds: true,
            shard_store: true,
            compact_converged: false,
            delta: false,
        }
    }

    /// The scale tier: every optimization on, including converged-version
    /// compaction (which the default sweeps leave off; see
    /// [`set_compaction`]).
    pub const fn scale() -> Self {
        ProtocolMode {
            share_metadata: true,
            batch_rounds: false,
            shard_store: true,
            compact_converged: true,
            delta: false,
        }
    }

    /// The optimized defaults plus XOR-delta stripe coding for hot-key
    /// overwrites (what explorer `--delta` pins per cluster).
    pub const fn delta() -> Self {
        ProtocolMode {
            share_metadata: true,
            batch_rounds: false,
            shard_store: true,
            compact_converged: false,
            delta: true,
        }
    }

    /// The mode selected by the process-wide switches right now (what a
    /// newly built actor adopts unless told otherwise).
    pub fn current() -> Self {
        ProtocolMode {
            share_metadata: !reference_protocol_mode(),
            batch_rounds: batched_rounds(),
            shard_store: !flat_store(),
            compact_converged: compaction(),
            delta: delta_coding(),
        }
    }

    /// Produces the metadata handle to embed in an outgoing message: a
    /// refcount bump when sharing, a deep copy in reference mode (the
    /// seed cloned metadata into every send).
    // lint:hot
    pub fn share(&self, meta: &Arc<Metadata>) -> Arc<Metadata> {
        if self.share_metadata {
            Arc::clone(meta)
        } else {
            Arc::new((**meta).clone())
        }
    }
}

impl Default for ProtocolMode {
    fn default() -> Self {
        ProtocolMode::optimized()
    }
}

/// A dense set of fragment indices (`n <= 256`), replacing the
/// `Vec<FragmentIndex>` / `BTreeSet` walks on the protocol hot path:
/// insert, membership and cardinality are single-word bit operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FragMask {
    bits: [u64; 4],
}

impl FragMask {
    /// The empty set.
    pub const fn new() -> Self {
        FragMask { bits: [0; 4] }
    }

    /// Inserts `idx`; returns `true` if it was not present before.
    // lint:hot
    pub fn insert(&mut self, idx: FragmentIndex) -> bool {
        let (w, b) = (usize::from(idx) / 64, usize::from(idx) % 64);
        let fresh = self.bits[w] & (1 << b) == 0;
        self.bits[w] |= 1 << b;
        fresh
    }

    /// Removes `idx`; returns `true` if it was present.
    pub fn remove(&mut self, idx: FragmentIndex) -> bool {
        let (w, b) = (usize::from(idx) / 64, usize::from(idx) % 64);
        let present = self.bits[w] & (1 << b) != 0;
        self.bits[w] &= !(1 << b);
        present
    }

    /// Whether `idx` is in the set.
    // lint:hot
    pub fn contains(&self, idx: FragmentIndex) -> bool {
        let (w, b) = (usize::from(idx) / 64, usize::from(idx) % 64);
        self.bits[w] & (1 << b) != 0
    }

    /// Number of indices in the set.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes every index.
    pub fn clear(&mut self) {
        self.bits = [0; 4];
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterates the indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = FragmentIndex> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros();
                rest &= rest - 1;
                Some((w * 64 + b as usize) as FragmentIndex)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::topology::DataCenterId;

    #[test]
    fn mode_constructors_and_default() {
        assert_eq!(ProtocolMode::default(), ProtocolMode::optimized());
        assert!(ProtocolMode::optimized().share_metadata);
        assert!(!ProtocolMode::optimized().batch_rounds);
        assert!(ProtocolMode::optimized().shard_store);
        assert!(!ProtocolMode::optimized().compact_converged);
        assert!(!ProtocolMode::reference().share_metadata);
        assert!(!ProtocolMode::reference().shard_store);
        assert!(ProtocolMode::batched().batch_rounds);
        assert!(ProtocolMode::scale().compact_converged);
        assert!(ProtocolMode::scale().shard_store);
        assert!(!ProtocolMode::optimized().delta);
        assert!(!ProtocolMode::reference().delta);
        assert!(!ProtocolMode::scale().delta);
        assert!(ProtocolMode::delta().delta);
        assert!(ProtocolMode::delta().share_metadata);
        assert!(!ProtocolMode::delta().compact_converged);
    }

    // The process-wide `set_flat_store` / `set_compaction` switches are
    // exercised in `tests/store_switches.rs`, a dedicated integration
    // binary, so toggling them can never race another test's
    // `ProtocolMode::current()` capture.

    #[test]
    fn share_bumps_or_copies() {
        let meta = Arc::new(Metadata::new(
            Policy::paper_default(),
            DataCenterId::new(0),
            100,
        ));
        let shared = ProtocolMode::optimized().share(&meta);
        assert!(Arc::ptr_eq(&meta, &shared), "optimized mode shares");
        let copied = ProtocolMode::reference().share(&meta);
        assert!(!Arc::ptr_eq(&meta, &copied), "reference mode deep-copies");
        assert_eq!(*meta, *copied, "the copy is equal");
    }

    #[test]
    fn frag_mask_set_operations() {
        let mut m = FragMask::new();
        assert!(m.is_empty());
        assert!(m.insert(0));
        assert!(m.insert(63));
        assert!(m.insert(64));
        assert!(m.insert(255));
        assert!(!m.insert(63), "double insert reports not-fresh");
        assert_eq!(m.count(), 4);
        assert!(m.contains(64));
        assert!(!m.contains(1));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 63, 64, 255]);
        assert!(m.remove(63));
        assert!(!m.remove(63));
        assert_eq!(m.count(), 3);
        m.clear();
        assert!(m.is_empty());
    }
}
