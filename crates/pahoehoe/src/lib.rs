#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Pahoehoe: an eventually consistent, erasure-coded key-blob archive.
//!
//! This crate reproduces the system described in *"Efficient eventual
//! consistency in Pahoehoe, an erasure-coded key-blob archive"* (DSN 2010).
//! Pahoehoe is a key-value store for binary large objects that stays
//! available during network partitions by providing **eventual
//! consistency**, and achieves durability at low cost by storing each
//! object version as `n = k + m` **erasure-coded fragments** instead of
//! replicas.
//!
//! # Architecture
//!
//! * **Clients** issue `put(key, value, policy)` and `get(key)` through a
//!   [`Proxy`](proxy::Proxy) in their data center.
//! * **Key Lookup Servers** ([`Kls`](kls::Kls)) map a key to its object
//!   versions: `(timestamp, policy, locations)` tuples.
//! * **Fragment Servers** ([`Fs`](fs::Fs)) store fragments plus the
//!   metadata needed to run **convergence** — the decentralized protocol
//!   that drives every durable object version to *at maximum redundancy*
//!   (AMR): complete metadata on every KLS and every sibling fragment on
//!   every sibling FS. Once a version is AMR, a subsequent get will never
//!   return an earlier version; that is Pahoehoe's consistency guarantee.
//!
//! All actors are deterministic state machines over
//! [`simnet`]'s discrete-event simulator, which is how the paper
//! itself evaluates the protocols.
//!
//! # Quick start
//!
//! ```
//! use pahoehoe::cluster::{Cluster, ClusterConfig};
//!
//! // Paper-default cluster: 2 data centers x (2 KLS + 3 FS), (4,12) code.
//! let mut cluster = Cluster::build(ClusterConfig::paper_default(), 42);
//! cluster.put(b"photo-1", vec![7u8; 4096]);
//! let report = cluster.run_to_convergence();
//! assert_eq!(report.amr_versions, 1);
//! assert_eq!(cluster.get(b"photo-1"), Some(vec![7u8; 4096]));
//! ```

pub mod analysis;
pub mod client;
pub mod cluster;
pub mod convergence;
pub mod fs;
pub mod kls;
pub mod messages;
pub mod metadata;
pub mod policy;
pub mod protocol;
pub mod proxy;
pub mod repair;
pub mod topology;
pub mod types;
pub mod workload;

pub use convergence::ConvergenceOptions;
pub use messages::Message;
pub use metadata::{Location, Metadata};
pub use policy::Policy;
pub use protocol::{
    batched_rounds, compaction, flat_store, reference_protocol_mode, set_batched_rounds,
    set_compaction, set_flat_store, set_reference_protocol_mode, ProtocolMode,
};
pub use repair::{RepairActor, RepairOptions};
pub use types::{Key, ObjectVersion, Timestamp};

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for in-crate actor tests: a scripted driver actor
    //! that injects messages at start and records everything it receives.

    use std::any::Any;

    use simnet::{Actor, Context, NodeId};

    use crate::messages::Message;

    /// Injects `script` at start; records `(from, message)` pairs.
    pub struct Driver {
        /// Messages to send at start.
        pub script: Vec<(NodeId, Message)>,
        /// Everything received, in order.
        pub received: Vec<(NodeId, Message)>,
    }

    impl Driver {
        /// Creates a driver with the given send script.
        pub fn new(script: Vec<(NodeId, Message)>) -> Self {
            Driver {
                script,
                received: Vec::new(),
            }
        }
    }

    impl Actor<Message> for Driver {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            for (to, msg) in self.script.drain(..) {
                ctx.send(to, msg);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Message>, from: NodeId, msg: Message) {
            self.received.push((from, msg));
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Message>, _tag: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }
}
