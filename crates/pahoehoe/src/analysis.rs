//! Global-state analysis: durability and AMR checks across all servers.
//!
//! These functions implement the *observer's* view of the definitions in
//! §2–3 of the paper, used by the experiment harness to decide when a run
//! has converged and to classify leftover object versions:
//!
//! * a version is **durable** when at least `k` distinct sibling fragments
//!   are durably stored across the fragment servers;
//! * a version is **at maximum redundancy (AMR)** when every KLS stores
//!   complete metadata for it and every sibling FS stores both complete
//!   metadata and all of its assigned sibling fragments.

use std::collections::BTreeSet;

use simnet::{NodeId, SimView};

use crate::fs::Fs;
use crate::kls::Kls;
use crate::messages::Message;
use crate::topology::Topology;
use crate::types::ObjectVersion;

/// Object versions with at least `k` distinct fragments stored across the
/// given fragment servers.
pub fn durable_versions(sim: &dyn SimView<Message>, fss: &[NodeId]) -> BTreeSet<ObjectVersion> {
    let mut out = BTreeSet::new();
    let mut seen: BTreeSet<ObjectVersion> = BTreeSet::new();
    for &fs in fss {
        for ov in sim.actor::<Fs>(fs).known_versions() {
            seen.insert(ov);
        }
    }
    for ov in seen {
        let mut distinct: BTreeSet<u8> = BTreeSet::new();
        let mut k = None;
        for &fs in fss {
            if let Some(entry) = sim.actor::<Fs>(fs).entry(ov) {
                k = Some(entry.meta.policy().k);
                distinct.extend(entry.fragments.keys().copied());
            }
        }
        if let Some(k) = k {
            if distinct.len() >= usize::from(k) {
                out.insert(ov);
            }
        }
    }
    out
}

/// Every object version any KLS or FS has heard of.
pub fn known_versions(
    sim: &dyn SimView<Message>,
    klss: &[NodeId],
    fss: &[NodeId],
) -> BTreeSet<ObjectVersion> {
    let mut out = BTreeSet::new();
    for &kls in klss {
        out.extend(sim.actor::<Kls>(kls).known_versions());
    }
    for &fs in fss {
        out.extend(sim.actor::<Fs>(fs).known_versions());
    }
    out
}

/// Whether `ov` is globally at maximum redundancy.
pub fn is_amr(sim: &dyn SimView<Message>, topo: &Topology, ov: ObjectVersion) -> bool {
    // Every KLS must hold complete metadata.
    let mut meta = None;
    for kls in topo.all_klss() {
        let actor = sim.actor::<Kls>(kls);
        if !actor.has_complete_meta(ov) {
            return false;
        }
        if meta.is_none() {
            meta = actor.meta(ov).cloned();
        }
    }
    let Some(meta) = meta else { return false };
    debug_assert!(meta.is_complete());
    // Every sibling FS must hold complete metadata and every fragment
    // assigned to it.
    for (idx, loc) in meta.assignments() {
        let Some(entry) = sim.actor::<Fs>(loc.fs).entry(ov) else {
            return false;
        };
        if !entry.meta.is_complete() || !entry.fragments.contains_key(&idx) {
            return false;
        }
    }
    true
}
