//! Core identifiers: keys, timestamps, object versions.

use std::fmt;

use simnet::SimTime;

/// An application-provided object name.
///
/// Pahoehoe keys are opaque byte strings; for compact simulation we
/// fingerprint them into a 64-bit value at the API boundary and carry the
/// fingerprint on the wire (collisions are irrelevant to the protocol
/// behaviour being studied and astronomically unlikely at workload sizes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(u64);

impl Key {
    /// Creates a key directly from a 64-bit value.
    pub const fn from_u64(v: u64) -> Self {
        Key(v)
    }

    /// Fingerprints an arbitrary byte-string name into a key (FNV-1a).
    pub fn from_name(name: &[u8]) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Key(h)
    }

    /// The key's 64-bit representation.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{:016x}", self.0)
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A globally unique, totally ordered version timestamp.
///
/// Per the paper (§3.2), "each proxy constructs a globally unique timestamp
/// by concatenating the time from the loosely synchronized local clock with
/// its own unique identifier". Ordering is lexicographic on
/// `(clock, proxy)`, so concurrent puts at different proxies are ordered
/// deterministically and never collide.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    /// Microseconds read from the proxy's loosely synchronized clock.
    clock: u64,
    /// The proxy's unique identifier (tie-breaker).
    proxy: u32,
}

impl Timestamp {
    /// The smallest timestamp; `ObjectVersion::new(key, Timestamp::MIN)`
    /// lower-bounds every version of `key` in ordered scans.
    pub const MIN: Timestamp = Timestamp { clock: 0, proxy: 0 };

    /// The largest timestamp; upper bound for per-key ordered scans.
    pub const MAX: Timestamp = Timestamp {
        clock: u64::MAX,
        proxy: u32::MAX,
    };

    /// Builds a timestamp from a proxy clock reading and proxy id.
    pub fn new(clock: SimTime, proxy: u32) -> Self {
        Timestamp {
            clock: clock.as_micros(),
            proxy,
        }
    }

    /// The clock component in microseconds.
    pub const fn clock_micros(self) -> u64 {
        self.clock
    }

    /// The proxy-id component.
    pub const fn proxy(self) -> u32 {
        self.proxy
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts({}us@p{})", self.clock, self.proxy)
    }
}

/// An object version: a `(key, timestamp)` pair, the unit that put, get and
/// convergence all operate on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectVersion {
    /// The object's key.
    pub key: Key,
    /// The version's unique timestamp.
    pub ts: Timestamp,
}

impl ObjectVersion {
    /// Pairs a key with a timestamp.
    pub const fn new(key: Key, ts: Timestamp) -> Self {
        ObjectVersion { key, ts }
    }
}

impl fmt::Debug for ObjectVersion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{:?}", self.key, self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimDuration;

    #[test]
    fn key_fingerprint_is_deterministic_and_spread() {
        assert_eq!(Key::from_name(b"photo"), Key::from_name(b"photo"));
        assert_ne!(Key::from_name(b"photo"), Key::from_name(b"photos"));
        assert_eq!(Key::from_u64(7).as_u64(), 7);
    }

    #[test]
    fn timestamp_min_max_bound_every_value() {
        let t = Timestamp::new(SimTime::from_micros(123), 9);
        assert!(Timestamp::MIN <= t && t <= Timestamp::MAX);
        let k = Key::from_u64(5);
        assert!(ObjectVersion::new(k, Timestamp::MIN) <= ObjectVersion::new(k, t));
        assert!(ObjectVersion::new(k, t) <= ObjectVersion::new(k, Timestamp::MAX));
    }

    #[test]
    fn timestamps_order_by_clock_then_proxy() {
        let t0 = SimTime::ZERO;
        let t1 = SimTime::ZERO + SimDuration::from_micros(1);
        assert!(Timestamp::new(t0, 9) < Timestamp::new(t1, 0));
        assert!(Timestamp::new(t0, 0) < Timestamp::new(t0, 1));
        assert_eq!(Timestamp::new(t0, 1), Timestamp::new(t0, 1));
    }

    #[test]
    fn concurrent_puts_at_distinct_proxies_never_collide() {
        let t = SimTime::ZERO + SimDuration::from_secs(5);
        assert_ne!(Timestamp::new(t, 1), Timestamp::new(t, 2));
    }

    #[test]
    fn object_version_identity() {
        let k = Key::from_name(b"a");
        let ts = Timestamp::new(SimTime::ZERO, 0);
        let ov = ObjectVersion::new(k, ts);
        assert_eq!(ov.key, k);
        assert_eq!(ov.ts, ts);
        let ov2 = ObjectVersion::new(k, Timestamp::new(SimTime::ZERO, 1));
        assert_ne!(ov, ov2);
        assert!(ov < ov2);
    }

    #[test]
    fn debug_formats() {
        let ov = ObjectVersion::new(
            Key::from_u64(0xabc),
            Timestamp::new(SimTime::from_micros(12), 3),
        );
        let s = format!("{ov:?}");
        assert!(s.contains("k0000000000000abc"), "{s}");
        assert!(s.contains("12us@p3"), "{s}");
    }
}
