//! Workload generation.
//!
//! The paper targets "binary large objects such as pictures, audio files
//! or movies of moderate size (~100 × 2¹⁰ B to 100 × 2²⁰ B)" (§2). This
//! module builds deterministic, seed-driven put scripts over that range:
//! fixed-size (the evaluation's 100 × 100 KiB workload), uniform, and a
//! heavy-tailed media mix.

use bytes::Bytes;

use crate::client::{Client, ClientOp};
use crate::policy::Policy;
use crate::types::Key;

/// Object-size distribution for generated workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDistribution {
    /// Every object has the same size (the paper's evaluation workload).
    Fixed(usize),
    /// Sizes uniform in `[min, max]`.
    Uniform {
        /// Smallest object size.
        min: usize,
        /// Largest object size (inclusive).
        max: usize,
    },
    /// A media-archive mixture over the paper's stated range: 70 %
    /// thumbnails/photos (100 KiB–1 MiB), 25 % audio (1–10 MiB, scaled
    /// down 10× to keep simulations snappy), 5 % "movies" (top of the
    /// range, scaled likewise).
    MediaMix,
}

/// A deterministic workload builder.
///
/// ```
/// use pahoehoe::workload::{SizeDistribution, Workload};
///
/// let ops = Workload::new(10)
///     .sizes(SizeDistribution::Uniform { min: 1024, max: 8192 })
///     .seed(7)
///     .build();
/// assert_eq!(ops.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    count: usize,
    sizes: SizeDistribution,
    policy: Policy,
    key_prefix: String,
    seed: u64,
}

impl Workload {
    /// A workload of `count` puts with the paper's defaults
    /// (100 KiB fixed-size objects, default policy).
    pub fn new(count: usize) -> Self {
        Workload {
            count,
            sizes: SizeDistribution::Fixed(100 * 1024),
            policy: Policy::paper_default(),
            key_prefix: "obj".to_string(),
            seed: 0,
        }
    }

    /// Sets the size distribution.
    pub fn sizes(mut self, sizes: SizeDistribution) -> Self {
        self.sizes = sizes;
        self
    }

    /// Sets the durability policy for every put.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the key-name prefix (keys are `"<prefix>/<index>"`).
    pub fn key_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.key_prefix = prefix.into();
        self
    }

    /// Sets the generator seed (contents and sampled sizes derive from
    /// it deterministically).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The key of the `i`-th object of this workload.
    pub fn key(&self, i: usize) -> Key {
        Key::from_name(format!("{}/{}", self.key_prefix, i).as_bytes())
    }

    fn sample_size(&self, rng: &mut SplitMix) -> usize {
        match &self.sizes {
            SizeDistribution::Fixed(s) => *s,
            SizeDistribution::Uniform { min, max } => {
                assert!(min <= max, "uniform range inverted");
                min + (rng.next() as usize) % (max - min + 1)
            }
            SizeDistribution::MediaMix => {
                let roll = rng.next() % 100;
                let (lo, hi) = if roll < 70 {
                    (100 * 1024, 1024 * 1024) // photos
                } else if roll < 95 {
                    (1024 * 1024 / 10, 10 * 1024 * 1024 / 10) // audio /10
                } else {
                    (10 * 1024 * 1024 / 10, 100 * 1024 * 1024 / 100) // movies /100
                };
                lo + (rng.next() as usize) % (hi - lo + 1)
            }
        }
    }

    /// Generates the put script.
    pub fn build(&self) -> Vec<ClientOp> {
        let mut rng = SplitMix(self.seed ^ 0x5851_f42d_4c95_7f2d);
        (0..self.count)
            .map(|i| {
                let size = self.sample_size(&mut rng);
                ClientOp::Put {
                    key: self.key(i),
                    value: Client::synthetic_value(self.seed.wrapping_add(i as u64), size),
                    policy: self.policy,
                }
            })
            .collect()
    }

    /// Total bytes the workload will store (sum of value sizes).
    pub fn total_bytes(&self) -> usize {
        self.build()
            .iter()
            .map(|op| match op {
                ClientOp::Put { value, .. } => value.len(),
                ClientOp::Get { .. } => 0,
            })
            .sum()
    }

    /// Expected value for key `i` (for read-back verification).
    pub fn expected_value(&self, i: usize) -> Bytes {
        match &self.build()[i] {
            ClientOp::Put { value, .. } => value.clone(),
            ClientOp::Get { .. } => unreachable!("workloads are puts"),
        }
    }
}

/// Tiny deterministic generator (splitmix64).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Stateless splitmix64 finalizer: a high-quality 64-bit mix of `x`.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Key-popularity distribution for [`StreamingWorkload`]s.
///
/// Real key-value traffic is heavily skewed — a few hot keys take most of
/// the writes — which is exactly the regime where superseded-version
/// residue dominates fragment-server memory. Every distribution here maps
/// a put index to a *popularity rank* in `1..=key_space` with O(1) work
/// and no per-key state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Put `i` writes rank `i % key_space + 1`: every key exactly once
    /// when `puts == key_space` (the insert-only scale shape).
    Sequential,
    /// Ranks uniform in `1..=key_space`.
    Uniform,
    /// Zipf-distributed ranks: rank `r` is written proportionally to
    /// `r^-exponent`, sampled in O(1) by inverting the continuous
    /// approximation of the Zipf CDF.
    Zipf {
        /// The skew exponent `s > 0` (web caches are typically ~0.9–1.1).
        exponent: f64,
    },
    /// `hot_permille`/1000 of the puts hit one of the first `hot_keys`
    /// ranks uniformly; the rest spread uniformly over the whole space.
    HotKey {
        /// Size of the hot set.
        hot_keys: u64,
        /// Fraction of puts (in 1/1000) aimed at the hot set.
        hot_permille: u16,
    },
}

/// A constant-memory workload stream: `op_at(i)` synthesizes the `i`-th
/// put from `(seed, i)` alone, so a million-key workload costs no more
/// resident memory than a ten-key one — no key vector, no value table.
///
/// Keys are fingerprints of the sampled popularity rank, so key
/// popularity follows the configured distribution while the key *values*
/// spread uniformly over the 64-bit space (shard-friendly). Values follow
/// the standard-workload convention — the blob for key `k` is
/// [`Client::synthetic_value`]`(k - 1, value_len)` — so the durability
/// invariants can reconstruct any expected blob from the key alone.
///
/// ```
/// use pahoehoe::workload::{KeyDistribution, StreamingWorkload};
///
/// let wl = StreamingWorkload {
///     puts: 1_000_000,
///     key_space: 1_000_000,
///     value_len: 64,
///     policy: pahoehoe::Policy::paper_default(),
///     seed: 42,
///     dist: KeyDistribution::Zipf { exponent: 0.99 },
///     overwrite_delta_permille: 0,
/// };
/// assert_eq!(wl.key_at(7), wl.key_at(7)); // pure function of (seed, index)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingWorkload {
    /// Total number of puts in the stream.
    pub puts: u64,
    /// Number of distinct keys the stream draws from.
    pub key_space: u64,
    /// Value length of every put.
    pub value_len: usize,
    /// Durability policy of every put.
    pub policy: Policy,
    /// Stream seed: ranks, and therefore keys, derive from `(seed, i)`.
    pub seed: u64,
    /// Key-popularity shape.
    pub dist: KeyDistribution,
    /// Overwrite correlation: the fraction of bytes (in 1/1000) each put
    /// rewrites inside a fixed per-key window, with contents that vary by
    /// put index. `0` keeps the standard key-derived blobs — required
    /// whenever byte-level durability checks are installed, since those
    /// reconstruct the expected blob from the key alone. Nonzero values
    /// model the ≤1 %-changed overwrite streams the delta-coding benches
    /// measure: successive puts to the same key differ only within the
    /// window.
    pub overwrite_delta_permille: u16,
}

impl StreamingWorkload {
    /// The popularity rank (`1..=key_space`) put `i` writes.
    pub fn rank_at(&self, i: u64) -> u64 {
        let n = self.key_space.max(1);
        let draw = mix64(self.seed ^ mix64(i));
        match self.dist {
            KeyDistribution::Sequential => i % n + 1,
            KeyDistribution::Uniform => draw % n + 1,
            KeyDistribution::Zipf { exponent } => {
                // Invert the continuous Zipf CDF: for s != 1 the mass below
                // rank x is ~ (x^(1-s) - 1) / (N^(1-s) - 1); for s = 1 it
                // is ~ ln(x) / ln(N). Deterministic for a fixed build.
                let u = (draw >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                let nf = n as f64;
                let s = exponent;
                let x = if (s - 1.0).abs() < 1e-9 {
                    nf.powf(u)
                } else {
                    (1.0 + u * (nf.powf(1.0 - s) - 1.0)).powf(1.0 / (1.0 - s))
                };
                (x as u64).clamp(1, n)
            }
            KeyDistribution::HotKey {
                hot_keys,
                hot_permille,
            } => {
                let hot = hot_keys.clamp(1, n);
                if draw % 1000 < u64::from(hot_permille) {
                    mix64(draw) % hot + 1
                } else {
                    mix64(draw) % n + 1
                }
            }
        }
    }

    /// The key put `i` writes: a 64-bit fingerprint of its rank (uniform
    /// over the key space regardless of the popularity shape).
    pub fn key_at(&self, i: u64) -> Key {
        Key::from_u64(mix64(self.seed ^ self.rank_at(i)) | 1)
    }

    /// Synthesizes put `i` — value bytes included — in O(`value_len`).
    pub fn op_at(&self, i: u64) -> ClientOp {
        let key = self.key_at(i);
        let mut value = Client::synthetic_value(key.as_u64().wrapping_sub(1), self.value_len);
        if self.overwrite_delta_permille > 0 && self.value_len > 0 {
            let len = self.value_len;
            let w = (len * usize::from(self.overwrite_delta_permille) / 1000).clamp(1, len);
            let off = (mix64(key.as_u64()) % (len - w + 1) as u64) as usize;
            let mut buf = value.to_vec();
            let mut state = mix64(key.as_u64() ^ mix64(i)) | 1;
            for b in &mut buf[off..off + w] {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *b = state as u8;
            }
            value = Bytes::from(buf);
        }
        ClientOp::Put {
            key,
            value,
            policy: self.policy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_sizes_are_fixed() {
        let ops = Workload::new(5).build();
        for op in &ops {
            let ClientOp::Put { value, .. } = op else {
                panic!("put")
            };
            assert_eq!(value.len(), 100 * 1024);
        }
    }

    #[test]
    fn uniform_sizes_stay_in_range_and_vary() {
        let w = Workload::new(200)
            .sizes(SizeDistribution::Uniform { min: 10, max: 20 })
            .seed(3);
        let mut seen = std::collections::BTreeSet::new();
        for op in w.build() {
            let ClientOp::Put { value, .. } = op else {
                panic!("put")
            };
            assert!((10..=20).contains(&value.len()));
            seen.insert(value.len());
        }
        assert!(seen.len() > 5, "uniform should hit most sizes: {seen:?}");
    }

    #[test]
    fn media_mix_spans_the_papers_range() {
        let w = Workload::new(300).sizes(SizeDistribution::MediaMix).seed(5);
        let sizes: Vec<usize> = w
            .build()
            .iter()
            .map(|op| match op {
                ClientOp::Put { value, .. } => value.len(),
                _ => 0,
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min >= 100 * 1024, "min {min}");
        assert!(max > 500 * 1024, "max {max}");
        // Photos dominate.
        let photos = sizes.iter().filter(|&&s| s <= 1024 * 1024).count() as f64;
        assert!(photos / sizes.len() as f64 > 0.55);
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let a = Workload::new(10).sizes(SizeDistribution::MediaMix).seed(9);
        let b = Workload::new(10).sizes(SizeDistribution::MediaMix).seed(9);
        let c = Workload::new(10).sizes(SizeDistribution::MediaMix).seed(10);
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_ne!(a.total_bytes(), c.total_bytes());
        assert_eq!(a.expected_value(3), b.expected_value(3));
    }

    #[test]
    fn keys_are_distinct_and_prefixed() {
        let w = Workload::new(4).key_prefix("photos");
        let keys: std::collections::BTreeSet<Key> = (0..4).map(|i| w.key(i)).collect();
        assert_eq!(keys.len(), 4);
        assert_eq!(w.key(0), Key::from_name(b"photos/0"));
    }

    #[test]
    #[should_panic(expected = "range inverted")]
    fn inverted_uniform_panics() {
        let _ = Workload::new(1)
            .sizes(SizeDistribution::Uniform { min: 5, max: 1 })
            .build();
    }

    fn stream(dist: KeyDistribution) -> StreamingWorkload {
        StreamingWorkload {
            puts: 10_000,
            key_space: 1_000,
            value_len: 32,
            policy: Policy::paper_default(),
            seed: 42,
            dist,
            overwrite_delta_permille: 0,
        }
    }

    #[test]
    fn streaming_ops_are_pure_functions_of_seed_and_index() {
        let wl = stream(KeyDistribution::Zipf { exponent: 0.99 });
        for i in [0, 1, 7, 9_999] {
            assert_eq!(wl.key_at(i), wl.key_at(i));
        }
        let mut other = wl.clone();
        other.seed = 43;
        let same = (0..100)
            .filter(|&i| wl.key_at(i) == other.key_at(i))
            .count();
        assert!(same < 100, "different seeds must reshuffle keys");
    }

    #[test]
    fn streaming_values_follow_the_standard_convention() {
        let wl = stream(KeyDistribution::Uniform);
        let ClientOp::Put { key, value, .. } = wl.op_at(5) else {
            panic!("streams are puts")
        };
        assert_eq!(
            value,
            Client::synthetic_value(key.as_u64().wrapping_sub(1), 32),
            "durability invariants reconstruct blobs from the key alone"
        );
    }

    #[test]
    fn sequential_stream_covers_the_key_space_exactly() {
        let mut wl = stream(KeyDistribution::Sequential);
        wl.puts = wl.key_space;
        let keys: std::collections::BTreeSet<Key> = (0..wl.puts).map(|i| wl.key_at(i)).collect();
        assert_eq!(keys.len() as u64, wl.key_space);
    }

    #[test]
    fn zipf_stream_is_head_heavy() {
        let wl = stream(KeyDistribution::Zipf { exponent: 0.99 });
        let mut hits = vec![0u64; 1_001];
        for i in 0..wl.puts {
            hits[wl.rank_at(i) as usize] += 1;
        }
        let head: u64 = hits[1..=10].iter().sum();
        assert!(
            head * 5 > wl.puts,
            "top-10 ranks should take >20% of a Zipf(0.99) stream, got {head}"
        );
        assert!(hits[1] > hits[500], "rank 1 beats the tail");
    }

    #[test]
    fn hot_key_stream_respects_the_hot_fraction() {
        let wl = stream(KeyDistribution::HotKey {
            hot_keys: 10,
            hot_permille: 900,
        });
        let hot = (0..wl.puts).filter(|&i| wl.rank_at(i) <= 10).count() as f64;
        let frac = hot / wl.puts as f64;
        assert!((0.85..=0.95).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn overwrite_knob_rewrites_one_fixed_window_per_key() {
        let mut wl = stream(KeyDistribution::Sequential);
        wl.value_len = 4096;
        wl.overwrite_delta_permille = 10; // ~1 % of bytes per overwrite
                                          // Sequential ranks repeat every `key_space` puts, so puts i and
                                          // i + key_space overwrite the same key.
        let (i, j) = (3, 3 + wl.key_space);
        let ClientOp::Put {
            key: ka, value: va, ..
        } = wl.op_at(i)
        else {
            panic!("put")
        };
        let ClientOp::Put {
            key: kb, value: vb, ..
        } = wl.op_at(j)
        else {
            panic!("put")
        };
        assert_eq!(ka, kb, "sequential stream must revisit the key");
        let changed: Vec<usize> = (0..va.len()).filter(|&p| va[p] != vb[p]).collect();
        assert!(!changed.is_empty(), "overwrites must differ");
        let span = changed.last().unwrap() - changed.first().unwrap() + 1;
        let w = 4096 * 10 / 1000;
        assert!(span <= w, "diff span {span} exceeds the {w}-byte window");
        // The window position is a function of the key alone: diffs from
        // another overwrite of the same key land in the same window.
        let ClientOp::Put { value: vc, .. } = wl.op_at(j + wl.key_space) else {
            panic!("put")
        };
        let changed2: Vec<usize> = (0..vb.len()).filter(|&p| vb[p] != vc[p]).collect();
        let lo = (*changed.first().unwrap()).min(*changed2.first().unwrap());
        let hi = (*changed.last().unwrap()).max(*changed2.last().unwrap());
        assert!(hi - lo < w, "both diffs share one {w}-byte window");
        // Zero keeps the standard key-derived convention byte-for-byte.
        wl.overwrite_delta_permille = 0;
        let ClientOp::Put { value: plain, .. } = wl.op_at(i) else {
            panic!("put")
        };
        assert_eq!(
            plain,
            Client::synthetic_value(ka.as_u64().wrapping_sub(1), 4096)
        );
    }

    #[test]
    fn streaming_ranks_stay_in_range() {
        for dist in [
            KeyDistribution::Sequential,
            KeyDistribution::Uniform,
            KeyDistribution::Zipf { exponent: 1.0 },
            KeyDistribution::Zipf { exponent: 1.2 },
            KeyDistribution::HotKey {
                hot_keys: 3,
                hot_permille: 500,
            },
        ] {
            let wl = stream(dist);
            for i in 0..2_000 {
                let r = wl.rank_at(i);
                assert!((1..=wl.key_space).contains(&r), "{dist:?}: rank {r}");
            }
        }
    }
}
