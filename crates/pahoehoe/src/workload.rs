//! Workload generation.
//!
//! The paper targets "binary large objects such as pictures, audio files
//! or movies of moderate size (~100 × 2¹⁰ B to 100 × 2²⁰ B)" (§2). This
//! module builds deterministic, seed-driven put scripts over that range:
//! fixed-size (the evaluation's 100 × 100 KiB workload), uniform, and a
//! heavy-tailed media mix.

use bytes::Bytes;

use crate::client::{Client, ClientOp};
use crate::policy::Policy;
use crate::types::Key;

/// Object-size distribution for generated workloads.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDistribution {
    /// Every object has the same size (the paper's evaluation workload).
    Fixed(usize),
    /// Sizes uniform in `[min, max]`.
    Uniform {
        /// Smallest object size.
        min: usize,
        /// Largest object size (inclusive).
        max: usize,
    },
    /// A media-archive mixture over the paper's stated range: 70 %
    /// thumbnails/photos (100 KiB–1 MiB), 25 % audio (1–10 MiB, scaled
    /// down 10× to keep simulations snappy), 5 % "movies" (top of the
    /// range, scaled likewise).
    MediaMix,
}

/// A deterministic workload builder.
///
/// ```
/// use pahoehoe::workload::{SizeDistribution, Workload};
///
/// let ops = Workload::new(10)
///     .sizes(SizeDistribution::Uniform { min: 1024, max: 8192 })
///     .seed(7)
///     .build();
/// assert_eq!(ops.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct Workload {
    count: usize,
    sizes: SizeDistribution,
    policy: Policy,
    key_prefix: String,
    seed: u64,
}

impl Workload {
    /// A workload of `count` puts with the paper's defaults
    /// (100 KiB fixed-size objects, default policy).
    pub fn new(count: usize) -> Self {
        Workload {
            count,
            sizes: SizeDistribution::Fixed(100 * 1024),
            policy: Policy::paper_default(),
            key_prefix: "obj".to_string(),
            seed: 0,
        }
    }

    /// Sets the size distribution.
    pub fn sizes(mut self, sizes: SizeDistribution) -> Self {
        self.sizes = sizes;
        self
    }

    /// Sets the durability policy for every put.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the key-name prefix (keys are `"<prefix>/<index>"`).
    pub fn key_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.key_prefix = prefix.into();
        self
    }

    /// Sets the generator seed (contents and sampled sizes derive from
    /// it deterministically).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The key of the `i`-th object of this workload.
    pub fn key(&self, i: usize) -> Key {
        Key::from_name(format!("{}/{}", self.key_prefix, i).as_bytes())
    }

    fn sample_size(&self, rng: &mut SplitMix) -> usize {
        match &self.sizes {
            SizeDistribution::Fixed(s) => *s,
            SizeDistribution::Uniform { min, max } => {
                assert!(min <= max, "uniform range inverted");
                min + (rng.next() as usize) % (max - min + 1)
            }
            SizeDistribution::MediaMix => {
                let roll = rng.next() % 100;
                let (lo, hi) = if roll < 70 {
                    (100 * 1024, 1024 * 1024) // photos
                } else if roll < 95 {
                    (1024 * 1024 / 10, 10 * 1024 * 1024 / 10) // audio /10
                } else {
                    (10 * 1024 * 1024 / 10, 100 * 1024 * 1024 / 100) // movies /100
                };
                lo + (rng.next() as usize) % (hi - lo + 1)
            }
        }
    }

    /// Generates the put script.
    pub fn build(&self) -> Vec<ClientOp> {
        let mut rng = SplitMix(self.seed ^ 0x5851_f42d_4c95_7f2d);
        (0..self.count)
            .map(|i| {
                let size = self.sample_size(&mut rng);
                ClientOp::Put {
                    key: self.key(i),
                    value: Client::synthetic_value(self.seed.wrapping_add(i as u64), size),
                    policy: self.policy,
                }
            })
            .collect()
    }

    /// Total bytes the workload will store (sum of value sizes).
    pub fn total_bytes(&self) -> usize {
        self.build()
            .iter()
            .map(|op| match op {
                ClientOp::Put { value, .. } => value.len(),
                ClientOp::Get { .. } => 0,
            })
            .sum()
    }

    /// Expected value for key `i` (for read-back verification).
    pub fn expected_value(&self, i: usize) -> Bytes {
        match &self.build()[i] {
            ClientOp::Put { value, .. } => value.clone(),
            ClientOp::Get { .. } => unreachable!("workloads are puts"),
        }
    }
}

/// Tiny deterministic generator (splitmix64).
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_sizes_are_fixed() {
        let ops = Workload::new(5).build();
        for op in &ops {
            let ClientOp::Put { value, .. } = op else {
                panic!("put")
            };
            assert_eq!(value.len(), 100 * 1024);
        }
    }

    #[test]
    fn uniform_sizes_stay_in_range_and_vary() {
        let w = Workload::new(200)
            .sizes(SizeDistribution::Uniform { min: 10, max: 20 })
            .seed(3);
        let mut seen = std::collections::BTreeSet::new();
        for op in w.build() {
            let ClientOp::Put { value, .. } = op else {
                panic!("put")
            };
            assert!((10..=20).contains(&value.len()));
            seen.insert(value.len());
        }
        assert!(seen.len() > 5, "uniform should hit most sizes: {seen:?}");
    }

    #[test]
    fn media_mix_spans_the_papers_range() {
        let w = Workload::new(300).sizes(SizeDistribution::MediaMix).seed(5);
        let sizes: Vec<usize> = w
            .build()
            .iter()
            .map(|op| match op {
                ClientOp::Put { value, .. } => value.len(),
                _ => 0,
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min >= 100 * 1024, "min {min}");
        assert!(max > 500 * 1024, "max {max}");
        // Photos dominate.
        let photos = sizes.iter().filter(|&&s| s <= 1024 * 1024).count() as f64;
        assert!(photos / sizes.len() as f64 > 0.55);
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let a = Workload::new(10).sizes(SizeDistribution::MediaMix).seed(9);
        let b = Workload::new(10).sizes(SizeDistribution::MediaMix).seed(9);
        let c = Workload::new(10).sizes(SizeDistribution::MediaMix).seed(10);
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_ne!(a.total_bytes(), c.total_bytes());
        assert_eq!(a.expected_value(3), b.expected_value(3));
    }

    #[test]
    fn keys_are_distinct_and_prefixed() {
        let w = Workload::new(4).key_prefix("photos");
        let keys: std::collections::BTreeSet<Key> = (0..4).map(|i| w.key(i)).collect();
        assert_eq!(keys.len(), 4);
        assert_eq!(w.key(0), Key::from_name(b"photos/0"));
    }

    #[test]
    #[should_panic(expected = "range inverted")]
    fn inverted_uniform_panics() {
        let _ = Workload::new(1)
            .sizes(SizeDistribution::Uniform { min: 5, max: 1 })
            .build();
    }
}
