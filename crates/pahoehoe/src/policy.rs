//! Durability policies.

use std::fmt;

/// A durability policy attached to each put (§2 of the paper).
///
/// The default policy is a `(k = 4, n = 12)` erasure code with up to two
/// fragments per fragment server, six fragments per data center, and all
/// four data fragments in the same (home) data center. It has the storage
/// overhead of triple replication but tolerates up to eight simultaneous
/// disk failures, or a WAN partition combined with two disk failures.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Policy {
    /// Data fragments (`k`): any `k` fragments recover the value.
    pub k: u8,
    /// Total fragments (`n = k + m`).
    pub n: u8,
    /// Maximum sibling fragments collocated on one fragment server.
    pub max_frags_per_fs: u8,
    /// Fragments placed in each data center.
    pub frags_per_dc: u8,
    /// Number of distinct successfully stored fragments at which the proxy
    /// may report success to the client ("enough, specified by the
    /// policy", §3.2). The paper does not pin the default numerically, but
    /// its availability goal — "even if a proxy can only reach a minority
    /// of KLSs and FSs, a put … may complete successfully" — and the FS-
    /// failure experiments (§5.3, where four of six FSs are unreachable
    /// yet the 100-put workload completes) require the minimum durable
    /// set, so the default is `k`: the value is recoverable, and
    /// convergence will restore full redundancy. Experiments can raise it.
    pub put_success_threshold: u8,
}

impl Policy {
    /// The paper's default policy: `(4, 12)`, ≤2 per FS, 6 per DC.
    pub fn paper_default() -> Self {
        Policy {
            k: 4,
            n: 12,
            max_frags_per_fs: 2,
            frags_per_dc: 6,
            put_success_threshold: 4,
        }
    }

    /// Creates a policy for a cluster with `dcs` data centers, spreading
    /// fragments evenly.
    ///
    /// # Panics
    ///
    /// Panics if the shape is inconsistent (see [`Policy::validate`]).
    pub fn new(k: u8, n: u8, dcs: u8, max_frags_per_fs: u8) -> Self {
        assert!(
            dcs > 0 && n.is_multiple_of(dcs),
            "n must divide evenly across DCs"
        );
        let frags_per_dc = n / dcs;
        let p = Policy {
            k,
            n,
            max_frags_per_fs,
            frags_per_dc,
            put_success_threshold: k,
        };
        p.validate();
        p
    }

    /// Number of parity fragments (`m = n - k`).
    pub fn parity(&self) -> u8 {
        self.n - self.k
    }

    /// Number of data centers the policy spreads across.
    pub fn data_centers(&self) -> u8 {
        self.n / self.frags_per_dc
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`, `k > n`, the per-DC count does not divide `n`,
    /// the success threshold is not within `[k, n]`, or the data fragments
    /// do not fit in one data center (the paper's default policy keeps all
    /// `k` data fragments in the home DC).
    pub fn validate(&self) {
        assert!(self.k > 0 && self.k <= self.n, "need 0 < k <= n");
        assert!(
            self.frags_per_dc > 0 && self.n.is_multiple_of(self.frags_per_dc),
            "fragments must divide evenly across data centers"
        );
        assert!(
            self.k <= self.frags_per_dc,
            "data fragments must fit in the home data center"
        );
        assert!(
            self.put_success_threshold >= self.k && self.put_success_threshold <= self.n,
            "success threshold must lie in [k, n]"
        );
        assert!(
            self.max_frags_per_fs > 0,
            "need at least one fragment per FS"
        );
    }

    /// Fragment indices assigned to data center slot `dc_slot`
    /// (0 = the home DC holding the data fragments).
    ///
    /// Slot `s` covers indices `s * frags_per_dc .. (s+1) * frags_per_dc`.
    pub fn fragment_range(&self, dc_slot: u8) -> std::ops::Range<u8> {
        let base = dc_slot * self.frags_per_dc;
        base..base + self.frags_per_dc
    }
}

impl Default for Policy {
    fn default() -> Self {
        Policy::paper_default()
    }
}

impl fmt::Debug for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Policy(k={}, n={}, {}per_fs, {}per_dc, ok@{})",
            self.k, self.n, self.max_frags_per_fs, self.frags_per_dc, self.put_success_threshold
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_shape() {
        let p = Policy::paper_default();
        p.validate();
        assert_eq!(p.k, 4);
        assert_eq!(p.n, 12);
        assert_eq!(p.parity(), 8);
        assert_eq!(p.data_centers(), 2);
        assert_eq!(
            p.put_success_threshold, p.k,
            "puts succeed once the value is durably recoverable"
        );
    }

    #[test]
    fn fragment_ranges_partition_the_code_word() {
        let p = Policy::paper_default();
        assert_eq!(p.fragment_range(0), 0..6);
        assert_eq!(p.fragment_range(1), 6..12);
        // Data fragments 0..4 are inside the home DC's range.
        assert!(p.fragment_range(0).contains(&(p.k - 1)));
    }

    #[test]
    fn constructor_derives_threshold() {
        let p = Policy::new(2, 6, 2, 2);
        assert_eq!(p.frags_per_dc, 3);
        assert_eq!(p.put_success_threshold, 2);
        assert_eq!(p.data_centers(), 2);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_dc_split_panics() {
        let _ = Policy::new(2, 7, 2, 2);
    }

    #[test]
    #[should_panic(expected = "data fragments must fit")]
    fn data_fragments_must_fit_home_dc() {
        Policy {
            k: 4,
            n: 12,
            max_frags_per_fs: 2,
            frags_per_dc: 3,
            put_success_threshold: 8,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "success threshold")]
    fn threshold_below_k_panics() {
        Policy {
            put_success_threshold: 3,
            ..Policy::paper_default()
        }
        .validate();
    }
}
