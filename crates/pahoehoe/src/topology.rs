//! Cluster topology: data centers, key-lookup servers, fragment servers.

use std::fmt;
use std::sync::Arc;

use simnet::NodeId;

/// Identifies a data center.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataCenterId(u8);

impl DataCenterId {
    /// Creates a data-center id from its index.
    pub const fn new(index: u8) -> Self {
        DataCenterId(index)
    }

    /// The data center's index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// This data center's *slot* in the fragment layout of an object whose
    /// home data center is `home`: the home DC (holding the data
    /// fragments) is slot 0 and the remaining DCs take slots 1.. in index
    /// order. Pure function of the two ids, so every server computes the
    /// same layout.
    pub const fn slot(self, home: DataCenterId) -> u8 {
        if self.0 == home.0 {
            0
        } else if self.0 < home.0 {
            self.0 + 1
        } else {
            self.0
        }
    }

    /// Inverse of [`slot`](Self::slot).
    pub const fn from_slot(slot: u8, home: DataCenterId) -> DataCenterId {
        if slot == 0 {
            home
        } else if slot <= home.0 {
            DataCenterId(slot - 1)
        } else {
            DataCenterId(slot)
        }
    }
}

impl fmt::Debug for DataCenterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dc{}", self.0)
    }
}

impl fmt::Display for DataCenterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The static membership map every proxy, KLS and FS knows (the paper
/// assumes "the set of all KLSs is known by every proxy and FS"; fragment
/// servers likewise know their peers).
///
/// Cheap to share: actors hold an [`Arc<Topology>`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    dcs: Vec<DcMembers>,
    /// Failure domains below the DC. `None` means racks are unmodeled
    /// (the pre-rack topology); `Some(r)` partitions each DC's fragment
    /// servers into `r` racks by position (see [`rack_of`](Self::rack_of)).
    racks_per_dc: Option<usize>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct DcMembers {
    klss: Vec<NodeId>,
    fss: Vec<NodeId>,
}

impl Topology {
    /// Builds a topology from per-DC member lists.
    ///
    /// # Panics
    ///
    /// Panics if there are no data centers or any DC lacks a KLS or FS.
    pub fn new(dcs: Vec<(Vec<NodeId>, Vec<NodeId>)>) -> Arc<Self> {
        Self::build(dcs, None)
    }

    /// Like [`new`](Self::new) but partitions each DC's fragment servers
    /// into `racks` failure domains. Placement becomes rack-aware (see
    /// `Kls::which_locs`) and repair donor selection avoids the failing
    /// rack.
    ///
    /// # Panics
    ///
    /// Panics if `racks` is zero, on top of [`new`](Self::new)'s checks.
    pub fn with_racks(dcs: Vec<(Vec<NodeId>, Vec<NodeId>)>, racks: usize) -> Arc<Self> {
        assert!(racks > 0, "need at least one rack per DC");
        Self::build(dcs, Some(racks))
    }

    fn build(dcs: Vec<(Vec<NodeId>, Vec<NodeId>)>, racks_per_dc: Option<usize>) -> Arc<Self> {
        assert!(!dcs.is_empty(), "need at least one data center");
        let dcs: Vec<DcMembers> = dcs
            .into_iter()
            .map(|(klss, fss)| {
                assert!(!klss.is_empty(), "every DC needs a KLS");
                assert!(!fss.is_empty(), "every DC needs an FS");
                DcMembers { klss, fss }
            })
            .collect();
        Arc::new(Topology { dcs, racks_per_dc })
    }

    /// Whether racks are modeled (placement and donor selection are
    /// failure-domain-aware).
    pub fn rack_aware(&self) -> bool {
        self.racks_per_dc.is_some()
    }

    /// Number of racks in `dc`: the configured count, capped at the DC's
    /// FS count (an FS is never split across racks). 1 when racks are
    /// unmodeled.
    pub fn racks_in(&self, dc: DataCenterId) -> usize {
        self.racks_per_dc
            .map_or(1, |r| r.min(self.dcs[dc.index()].fss.len()))
    }

    /// The rack hosting fragment server `fs` inside `dc`: its position in
    /// the DC's FS list modulo the rack count. A pure function of the
    /// static membership, so every server computes the same assignment.
    /// Returns `None` when `fs` is not an FS of `dc`.
    pub fn rack_of(&self, dc: DataCenterId, fs: NodeId) -> Option<usize> {
        let pos = self.dcs[dc.index()].fss.iter().position(|&n| n == fs)?;
        Some(pos % self.racks_in(dc))
    }

    /// Number of data centers.
    pub fn data_centers(&self) -> usize {
        self.dcs.len()
    }

    /// All data-center ids in index order.
    pub fn dc_ids(&self) -> impl Iterator<Item = DataCenterId> + '_ {
        (0..self.dcs.len() as u8).map(DataCenterId::new)
    }

    /// Key lookup servers in one data center, in fixed probe order.
    pub fn klss_in(&self, dc: DataCenterId) -> &[NodeId] {
        &self.dcs[dc.index()].klss
    }

    /// Fragment servers in one data center.
    pub fn fss_in(&self, dc: DataCenterId) -> &[NodeId] {
        &self.dcs[dc.index()].fss
    }

    /// Every KLS in the system.
    pub fn all_klss(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dcs.iter().flat_map(|d| d.klss.iter().copied())
    }

    /// Every FS in the system.
    pub fn all_fss(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dcs.iter().flat_map(|d| d.fss.iter().copied())
    }

    /// Whether `node` is a key lookup server.
    pub fn is_kls(&self, node: NodeId) -> bool {
        self.dcs.iter().any(|d| d.klss.contains(&node))
    }

    /// The data center containing `node`, if it is a KLS or FS.
    pub fn dc_of(&self, node: NodeId) -> Option<DataCenterId> {
        self.dcs.iter().enumerate().find_map(|(i, d)| {
            (d.klss.contains(&node) || d.fss.contains(&node)).then(|| DataCenterId::new(i as u8))
        })
    }

    /// Maps a data center to its *slot* in an object version's fragment
    /// layout; see [`DataCenterId::slot`].
    pub fn dc_slot(&self, dc: DataCenterId, home: DataCenterId) -> u8 {
        dc.slot(home)
    }

    /// Inverse of [`dc_slot`](Self::dc_slot).
    pub fn slot_dc(&self, slot: u8, home: DataCenterId) -> DataCenterId {
        DataCenterId::from_slot(slot, home)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Arc<Topology> {
        // DC0: klss n0,n1 / fss n2,n3,n4 ; DC1: klss n5,n6 / fss n7,n8,n9.
        Topology::new(vec![
            (
                vec![NodeId::new(0), NodeId::new(1)],
                vec![NodeId::new(2), NodeId::new(3), NodeId::new(4)],
            ),
            (
                vec![NodeId::new(5), NodeId::new(6)],
                vec![NodeId::new(7), NodeId::new(8), NodeId::new(9)],
            ),
        ])
    }

    #[test]
    fn membership_queries() {
        let t = topo();
        assert_eq!(t.data_centers(), 2);
        assert_eq!(t.all_klss().count(), 4);
        assert_eq!(t.all_fss().count(), 6);
        assert_eq!(
            t.klss_in(DataCenterId::new(1)),
            &[NodeId::new(5), NodeId::new(6)]
        );
        assert_eq!(t.dc_of(NodeId::new(3)), Some(DataCenterId::new(0)));
        assert_eq!(t.dc_of(NodeId::new(9)), Some(DataCenterId::new(1)));
        assert_eq!(t.dc_of(NodeId::new(42)), None);
    }

    #[test]
    fn dc_slots_roundtrip() {
        let t = topo();
        for home in t.dc_ids() {
            for dc in t.dc_ids() {
                let slot = t.dc_slot(dc, home);
                assert_eq!(t.slot_dc(slot, home), dc, "home={home} dc={dc}");
            }
            assert_eq!(t.dc_slot(home, home), 0, "home DC is slot 0");
        }
    }

    #[test]
    fn slots_are_a_permutation() {
        // Three DCs: verify slots {0,1,2} exactly once per home choice.
        let t = Topology::new(vec![
            (vec![NodeId::new(0)], vec![NodeId::new(1)]),
            (vec![NodeId::new(2)], vec![NodeId::new(3)]),
            (vec![NodeId::new(4)], vec![NodeId::new(5)]),
        ]);
        for home in t.dc_ids() {
            let mut slots: Vec<u8> = t.dc_ids().map(|dc| t.dc_slot(dc, home)).collect();
            slots.sort_unstable();
            assert_eq!(slots, vec![0, 1, 2]);
        }
    }

    #[test]
    #[should_panic(expected = "every DC needs a KLS")]
    fn empty_kls_list_panics() {
        let _ = Topology::new(vec![(vec![], vec![NodeId::new(0)])]);
    }

    #[test]
    fn racks_partition_fss_by_position() {
        let t = Topology::with_racks(
            vec![(
                vec![NodeId::new(0)],
                vec![
                    NodeId::new(1),
                    NodeId::new(2),
                    NodeId::new(3),
                    NodeId::new(4),
                    NodeId::new(5),
                ],
            )],
            3,
        );
        let dc = DataCenterId::new(0);
        assert!(t.rack_aware());
        assert_eq!(t.racks_in(dc), 3);
        let racks: Vec<usize> = t
            .fss_in(dc)
            .iter()
            .map(|&fs| t.rack_of(dc, fs).unwrap())
            .collect();
        assert_eq!(racks, vec![0, 1, 2, 0, 1]);
        assert_eq!(t.rack_of(dc, NodeId::new(0)), None, "KLS has no rack");
    }

    #[test]
    fn rack_count_caps_at_fs_count_and_legacy_is_one_rack() {
        let t = Topology::with_racks(
            vec![(vec![NodeId::new(0)], vec![NodeId::new(1), NodeId::new(2)])],
            8,
        );
        assert_eq!(t.racks_in(DataCenterId::new(0)), 2);
        let legacy = topo();
        assert!(!legacy.rack_aware());
        assert_eq!(legacy.racks_in(DataCenterId::new(0)), 1);
        assert_eq!(
            legacy.rack_of(DataCenterId::new(0), NodeId::new(3)),
            Some(0)
        );
    }
}
