//! The Fragment Server (FS) and the convergence protocol.
//!
//! An FS stores erasure-coded fragments together with the metadata needed
//! to verify redundancy, and runs **convergence** (§3.4): in periodic
//! rounds, it performs a *convergence step* for every object version it
//! has not yet verified to be at maximum redundancy (AMR). A step does the
//! first applicable of:
//!
//! 1. **metadata repair** — if its metadata is incomplete, probe a KLS per
//!    missing data center (in a fixed order, §3.5) with
//!    [`Message::FsDecideLocs`];
//! 2. **fragment recovery** — if an assigned sibling fragment is missing,
//!    retrieve `k` fragments and regenerate it (optionally regenerating
//!    *all* missing sibling fragments on behalf of the siblings — the
//!    sibling-fragment-recovery optimization, §4.2);
//! 3. **verification** — otherwise probe every KLS and sibling FS with
//!    converge messages; if all verify, the version is AMR and is removed
//!    from the convergence store (optionally broadcasting an AMR
//!    indication to the siblings, §4.1).
//!
//! Steps for a version back off exponentially while they keep failing
//! (§3.5) and reset when new information arrives. Round scheduling,
//! indications and sibling recovery are all governed by
//! [`ConvergenceOptions`].

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use erasure::{Checksum, Codec, Fragment, FragmentIndex};
use simnet::{Actor, Context, NodeId, SimTime, TimerId};

use crate::convergence::{ConvergenceOptions, RoundSchedule};
use crate::messages::{Message, OpId, EV_DELTAS_RESOLVED, EV_DELTA_UNRESOLVABLE};
use crate::metadata::Metadata;
use crate::protocol::{FragMask, ProtocolMode};
use crate::topology::{DataCenterId, Topology};
use crate::types::{Key, ObjectVersion, Timestamp};

/// Timer tags (upper byte selects the kind, low bits carry an op id).
const TAG_ROUND: u64 = 1 << 56;
const TAG_RECOVERY_WAIT: u64 = 2 << 56;
const TAG_RECOVERY_TIMEOUT: u64 = 3 << 56;
const TAG_SCRUB: u64 = 4 << 56;
const TAG_REPAIR_REPORT: u64 = 5 << 56;
const TAG_MASK: u64 = 0xff << 56;

/// Timer tag a harness may schedule on an FS (via
/// [`Simulation::schedule_timer`](simnet::Simulation::schedule_timer)) to
/// wake its convergence loop after mutating state externally — e.g. after
/// [`Fs::destroy_disk`] or [`Fs::corrupt_fragment`].
pub const WAKE_TIMER_TAG: u64 = TAG_ROUND;

/// Stored fragments plus the metadata snapshot for one object version.
#[derive(Debug, Clone)]
pub struct FragEntry {
    /// Best-known metadata (shared by refcount in optimized mode; see
    /// [`ProtocolMode`]).
    pub meta: Arc<Metadata>,
    /// The sibling fragments this server holds, by fragment index.
    pub fragments: BTreeMap<FragmentIndex, Fragment>,
    /// Content hash recorded when each fragment was durably stored; the
    /// scrubber and the read path verify against it to "detect disk
    /// corruption using hashes" (§3.1).
    pub checksums: BTreeMap<FragmentIndex, Checksum>,
}

/// Convergence bookkeeping for one not-yet-AMR object version.
#[derive(Debug)]
struct ConvWork {
    /// When this FS first learned of the version (drives `min_age` and
    /// `give_up_age`).
    created: SimTime,
    /// Unsuccessful steps so far (drives exponential backoff).
    attempts: u32,
    /// Next time a step may run.
    next_eligible: SimTime,
    /// KLSs that verified during the current step.
    kls_ok: BTreeSet<NodeId>,
    /// Sibling FSs that verified during the current step.
    fs_ok: BTreeSet<NodeId>,
    /// Whether a verification step is awaiting replies.
    step_open: bool,
    /// In-flight fragment recovery, if any.
    recovery: Option<Recovery>,
}

impl ConvWork {
    fn new(created: SimTime) -> Self {
        ConvWork {
            created,
            attempts: 0,
            next_eligible: created,
            kls_ok: BTreeSet::new(),
            fs_ok: BTreeSet::new(),
            step_open: false,
            recovery: None,
        }
    }
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum RecoveryPhase {
    /// Sibling mode: waiting for need-reports from siblings.
    AwaitingReports,
    /// Fetching fragments.
    Fetching,
}

#[derive(Debug)]
struct Recovery {
    op: OpId,
    phase: RecoveryPhase,
    /// Sibling need-reports: fs → (has, missing).
    reports: BTreeMap<NodeId, (Vec<FragmentIndex>, Vec<FragmentIndex>)>,
    /// Fragments fetched so far.
    collected: BTreeMap<FragmentIndex, Fragment>,
    wait_timer: Option<TimerId>,
    timeout_timer: TimerId,
}

/// Lifecycle state of one stored object version. Exactly one of these
/// holds at any time (a stored version is being converged, settled AMR,
/// or abandoned), which is what lets the dense store keep it as a single
/// tagged field instead of the seed's three side tables.
#[derive(Debug)]
enum VersionState {
    /// Still being converged.
    Pending(Box<ConvWork>),
    /// Verified (or indicated) AMR at the recorded time.
    Amr(SimTime),
    /// Abandoned after `give_up_age`.
    GaveUp,
}

/// The storage payload of one slab slot: the full fragment entry, or the
/// O(1) residual left behind by converged-version compaction.
#[derive(Debug)]
enum SlotEntry {
    /// Fragments, checksums and metadata are all retained.
    Full(FragEntry),
    /// Compacted: the version was settled AMR *and* superseded by a newer
    /// settled-AMR version of the same key, so its fragment bytes,
    /// checksums and metadata handle have been released. `held` records
    /// which fragment indices were stored at compaction time, which is
    /// what keeps convergence replies about this version byte-identical
    /// to the full store's (and lets the sampled invariants assert the
    /// version really was durable).
    Compacted { held: FragMask },
}

impl SlotEntry {
    fn full(&self) -> Option<&FragEntry> {
        match self {
            SlotEntry::Full(e) => Some(e),
            SlotEntry::Compacted { .. } => None,
        }
    }

    fn full_mut(&mut self) -> Option<&mut FragEntry> {
        match self {
            SlotEntry::Full(e) => Some(e),
            SlotEntry::Compacted { .. } => None,
        }
    }
}

/// One dense per-version record: fragment entry and lifecycle state side
/// by side in one slab slot.
#[derive(Debug)]
struct VersionSlot {
    ov: ObjectVersion,
    entry: SlotEntry,
    state: VersionState,
}

/// Slot hint meaning "resolve through the index".
const NO_SLOT: u32 = u32::MAX;

/// Shard count of the dense store's key-sharded `ov -> slot` index
/// (power of two; the shard is a hash of the key, so every version of a
/// key lands in the same shard and per-key range scans stay local).
const SHARD_FANOUT: usize = 64;

/// The dense store's `ov -> slot` index, split into `fanout` shards by
/// key hash. With `fanout == 1` this is exactly the flat map the scale
/// tier replaced, kept reachable via `ProtocolMode::shard_store = false`
/// as the differential oracle. Lookups touch a single shard whose size is
/// `~versions / fanout`, which keeps comparisons short and the working
/// set of a hot key's operations small at million-key scale.
#[derive(Debug)]
struct ShardIndex {
    shards: Vec<BTreeMap<ObjectVersion, u32>>,
    mask: u64,
}

impl ShardIndex {
    fn new(fanout: usize) -> Self {
        debug_assert!(fanout.is_power_of_two());
        ShardIndex {
            shards: (0..fanout).map(|_| BTreeMap::new()).collect(),
            mask: fanout as u64 - 1,
        }
    }

    /// The shard holding `key`'s versions (splitmix64 finalizer: workload
    /// keys are often sequential, so the raw bits must be mixed).
    // lint:hot
    fn shard_of(&self, key: Key) -> usize {
        let mut h = key.as_u64();
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (h & self.mask) as usize
    }

    // lint:hot
    fn get(&self, ov: &ObjectVersion) -> Option<u32> {
        // lint:allow(panic-path): shard_of is masked to the shard count
        self.shards[self.shard_of(ov.key)].get(ov).copied()
    }

    fn insert(&mut self, ov: ObjectVersion, s: u32) {
        let i = self.shard_of(ov.key);
        // lint:allow(panic-path): shard_of is masked to the shard count
        self.shards[i].insert(ov, s);
    }

    /// `key`'s versions strictly newer than `ov`, ascending, with slot
    /// ids.
    fn key_versions_above(
        &self,
        ov: ObjectVersion,
    ) -> impl DoubleEndedIterator<Item = (ObjectVersion, u32)> + '_ {
        let hi = ObjectVersion::new(ov.key, Timestamp::MAX);
        // lint:allow(panic-path): shard_of is masked to the shard count
        self.shards[self.shard_of(ov.key)]
            .range((std::ops::Bound::Excluded(ov), std::ops::Bound::Included(hi)))
            .map(|(&v, &s)| (v, s))
    }

    /// `key`'s versions strictly older than `ov`, ascending, with slot
    /// ids.
    fn key_versions_below(
        &self,
        ov: ObjectVersion,
    ) -> impl DoubleEndedIterator<Item = (ObjectVersion, u32)> + '_ {
        let lo = ObjectVersion::new(ov.key, Timestamp::MIN);
        // lint:allow(panic-path): shard_of is masked to the shard count
        self.shards[self.shard_of(ov.key)]
            .range(lo..ov)
            .map(|(&v, &s)| (v, s))
    }

    /// Every stored version in global object-version order (inspection
    /// only: collects and sorts across shards).
    fn keys_sorted(&self) -> Vec<ObjectVersion> {
        let mut all: Vec<ObjectVersion> =
            self.shards.iter().flat_map(|m| m.keys().copied()).collect();
        all.sort_unstable();
        all
    }
}

/// Per-version storage for an FS, behind the protocol reference switch.
///
/// The dense representation keeps every version in an append-only slab
/// (versions are never forgotten, only settled), an `ov -> slot` index,
/// and a sorted list of pending slot indices that `run_round` walks
/// without any map lookups. The reference representation reproduces the
/// seed's four separate ordered maps, so the recorded benchmark can
/// attribute the win honestly.
#[derive(Debug)]
enum VersionStore {
    Dense {
        slots: Vec<VersionSlot>,
        index: ShardIndex,
        /// Slot indices of pending versions, sorted by object version so
        /// rounds step versions in the same order as the reference maps.
        pending: Vec<u32>,
    },
    Reference {
        entries: BTreeMap<ObjectVersion, FragEntry>,
        work: BTreeMap<ObjectVersion, ConvWork>,
        amr: BTreeMap<ObjectVersion, SimTime>,
        gave_up: BTreeSet<ObjectVersion>,
    },
}

impl VersionStore {
    fn new(mode: ProtocolMode) -> Self {
        if mode.share_metadata {
            VersionStore::Dense {
                slots: Vec::new(),
                index: ShardIndex::new(if mode.shard_store { SHARD_FANOUT } else { 1 }),
                pending: Vec::new(),
            }
        } else {
            VersionStore::Reference {
                entries: BTreeMap::new(),
                work: BTreeMap::new(),
                amr: BTreeMap::new(),
                gave_up: BTreeSet::new(),
            }
        }
    }

    fn entry(&self, ov: ObjectVersion) -> Option<&FragEntry> {
        match self {
            VersionStore::Dense { slots, index, .. } => {
                // lint:allow(panic-path): index map entries always point at live slots
                index.get(&ov).and_then(|s| slots[s as usize].entry.full())
            }
            VersionStore::Reference { entries, .. } => entries.get(&ov),
        }
    }

    fn entry_mut(&mut self, ov: ObjectVersion) -> Option<&mut FragEntry> {
        match self {
            VersionStore::Dense { slots, index, .. } => {
                let s = index.get(&ov)?;
                // lint:allow(panic-path): index map entries always point at live slots
                slots[s as usize].entry.full_mut()
            }
            VersionStore::Reference { entries, .. } => entries.get_mut(&ov),
        }
    }

    /// Entry access with a slot hint from `collect_pending`/`collect_known`
    /// (skips the index walk in dense mode).
    // lint:hot
    fn entry_at(&self, ov: ObjectVersion, hint: u32) -> Option<&FragEntry> {
        match self {
            VersionStore::Dense { slots, .. } if hint != NO_SLOT => {
                // lint:allow(panic-path): hint from a collect_* listing is a live slot (ov debug-asserted)
                let slot = &slots[hint as usize];
                debug_assert_eq!(slot.ov, ov);
                slot.entry.full()
            }
            _ => self.entry(ov),
        }
    }

    /// Mutable variant of [`VersionStore::entry_at`].
    // lint:hot
    fn entry_at_mut(&mut self, ov: ObjectVersion, hint: u32) -> Option<&mut FragEntry> {
        if hint != NO_SLOT {
            if let VersionStore::Dense { slots, .. } = self {
                // lint:allow(panic-path): hint from a collect_* listing is a live slot (ov debug-asserted)
                let slot = &mut slots[hint as usize];
                debug_assert_eq!(slot.ov, ov);
                return slot.entry.full_mut();
            }
        }
        self.entry_mut(ov)
    }

    /// The convergence work for `ov`, if it is pending.
    fn work(&self, ov: ObjectVersion) -> Option<&ConvWork> {
        match self {
            VersionStore::Dense { slots, index, .. } => {
                // lint:allow(panic-path): index map entries always point at live slots
                match &slots[index.get(&ov)? as usize].state {
                    VersionState::Pending(w) => Some(w),
                    _ => None,
                }
            }
            VersionStore::Reference { work, .. } => work.get(&ov),
        }
    }

    fn work_mut(&mut self, ov: ObjectVersion) -> Option<&mut ConvWork> {
        match self {
            VersionStore::Dense { slots, index, .. } => {
                // lint:allow(panic-path): index map entries always point at live slots
                match &mut slots[index.get(&ov)? as usize].state {
                    VersionState::Pending(w) => Some(w),
                    _ => None,
                }
            }
            VersionStore::Reference { work, .. } => work.get_mut(&ov),
        }
    }

    /// Work access with a slot hint (see `entry_at_mut`).
    // lint:hot
    fn work_at(&self, ov: ObjectVersion, hint: u32) -> Option<&ConvWork> {
        match self {
            VersionStore::Dense { slots, .. } if hint != NO_SLOT => {
                // lint:allow(panic-path): hint from a collect_* listing is a live slot (ov debug-asserted)
                let slot = &slots[hint as usize];
                debug_assert_eq!(slot.ov, ov);
                match &slot.state {
                    VersionState::Pending(w) => Some(w),
                    _ => None,
                }
            }
            _ => self.work(ov),
        }
    }

    /// Mutable variant of [`VersionStore::work_at`].
    // lint:hot
    fn work_at_mut(&mut self, ov: ObjectVersion, hint: u32) -> Option<&mut ConvWork> {
        if hint != NO_SLOT {
            if let VersionStore::Dense { slots, .. } = self {
                // lint:allow(panic-path): hint from a collect_* listing is a live slot (ov debug-asserted)
                let slot = &mut slots[hint as usize];
                debug_assert_eq!(slot.ov, ov);
                return match &mut slot.state {
                    VersionState::Pending(w) => Some(w),
                    _ => None,
                };
            }
        }
        self.work_mut(ov)
    }

    /// Whether `ov` is settled (AMR or given up).
    fn is_settled(&self, ov: ObjectVersion) -> bool {
        match self {
            VersionStore::Dense { slots, index, .. } => index
                .get(&ov)
                // lint:allow(panic-path): index map entries always point at live slots
                .is_some_and(|s| !matches!(slots[s as usize].state, VersionState::Pending(_))),
            VersionStore::Reference { amr, gave_up, .. } => {
                amr.contains_key(&ov) || gave_up.contains(&ov)
            }
        }
    }

    fn amr_at(&self, ov: ObjectVersion) -> Option<SimTime> {
        match self {
            VersionStore::Dense { slots, index, .. } => {
                // lint:allow(panic-path): index map entries always point at live slots
                match slots[index.get(&ov)? as usize].state {
                    VersionState::Amr(at) => Some(at),
                    _ => None,
                }
            }
            VersionStore::Reference { amr, .. } => amr.get(&ov).copied(),
        }
    }

    /// The compaction residual for `ov`: the fragment-index mask recorded
    /// when the version's entry was released, if it has been compacted.
    fn residual(&self, ov: ObjectVersion) -> Option<FragMask> {
        match self {
            VersionStore::Dense { slots, index, .. } => {
                // lint:allow(panic-path): index map entries always point at live slots
                match slots[index.get(&ov)? as usize].entry {
                    SlotEntry::Compacted { held } => Some(held),
                    SlotEntry::Full(_) => None,
                }
            }
            VersionStore::Reference { .. } => None,
        }
    }

    /// Number of compacted residual records in the slab.
    fn compacted_count(&self) -> usize {
        match self {
            VersionStore::Dense { slots, .. } => slots
                .iter()
                .filter(|s| matches!(s.entry, SlotEntry::Compacted { .. }))
                .count(),
            VersionStore::Reference { .. } => 0,
        }
    }

    /// Incremental compaction run on the *first* settle of `ov`:
    /// compacts `ov` itself when a strictly newer settled-AMR version of
    /// its key exists, and every settled-AMR version strictly older than
    /// `ov` — fragments, checksums and the metadata handle collapse to a
    /// [`SlotEntry::Compacted`] residual. Dense-store only (the
    /// reference maps model the seed, which never compacted). Returns
    /// how many versions were compacted.
    ///
    /// Running this on every first settle maintains the invariant that
    /// *every settled version superseded by a newer settled version is
    /// compacted*, which is what lets the downward walk stop at the
    /// first already-compacted slot: anything older is superseded by
    /// that (settled) slot and was therefore compacted when the
    /// invariant last held. Each version is compacted exactly once and
    /// the walks only re-visit the bounded window of still-unsettled
    /// interleaved versions, so the amortized cost per settle is O(1) —
    /// the earlier whole-key rescan made a hot key's settles quadratic
    /// in its version count.
    fn compact_superseded(&mut self, ov: ObjectVersion) -> usize {
        let VersionStore::Dense { slots, index, .. } = self else {
            return 0;
        };
        let mut compacted = 0;
        // `ov` is superseded iff any strictly newer version of its key
        // has settled (newer unsettled versions are the in-flight
        // window; scan past them).
        let superseded = index
            .key_versions_above(ov)
            // lint:allow(panic-path): index map entries always point at live slots
            .any(|(_, s)| matches!(slots[s as usize].state, VersionState::Amr(_)));
        if superseded {
            if let Some(s) = index.get(&ov) {
                // lint:allow(panic-path): index map entries always point at live slots
                compacted += Self::compact_slot(&mut slots[s as usize]);
            }
        }
        // Everything strictly older than the just-settled `ov` is
        // superseded; walk down until the first already-compacted slot.
        for (_, s) in index.key_versions_below(ov).rev() {
            // lint:allow(panic-path): index map entries always point at live slots
            let slot = &mut slots[s as usize];
            if matches!(slot.entry, SlotEntry::Compacted { .. }) {
                break;
            }
            if matches!(slot.state, VersionState::Amr(_)) {
                compacted += Self::compact_slot(slot);
            }
        }
        compacted
    }

    /// Collapses a settled slot's full entry to its residual record.
    /// Returns 1 if the slot was compacted (0 if already a residual).
    fn compact_slot(slot: &mut VersionSlot) -> usize {
        if let SlotEntry::Full(e) = &slot.entry {
            let mut held = FragMask::new();
            for &idx in e.fragments.keys() {
                held.insert(idx);
            }
            slot.entry = SlotEntry::Compacted { held };
            1
        } else {
            0
        }
    }

    fn pending_is_empty(&self) -> bool {
        match self {
            VersionStore::Dense { pending, .. } => pending.is_empty(),
            VersionStore::Reference { work, .. } => work.is_empty(),
        }
    }

    /// Fills `out` with the pending versions in object-version order plus
    /// slot hints, reusing `out`'s capacity.
    // lint:hot
    fn collect_pending(&self, out: &mut Vec<(ObjectVersion, u32)>) {
        out.clear();
        match self {
            VersionStore::Dense { slots, pending, .. } => {
                // lint:allow(panic-path): the pending list holds live slot ids
                out.extend(pending.iter().map(|&s| (slots[s as usize].ov, s)));
            }
            VersionStore::Reference { work, .. } => {
                out.extend(work.keys().map(|&ov| (ov, NO_SLOT)));
            }
        }
    }

    /// Fills `out` with every stored version plus slot hints (dense mode
    /// iterates the slab linearly; the scrubber does not care about
    /// order).
    // lint:hot
    fn collect_known(&self, out: &mut Vec<(ObjectVersion, u32)>) {
        out.clear();
        match self {
            VersionStore::Dense { slots, .. } => {
                out.extend(
                    slots
                        .iter()
                        .enumerate()
                        .map(|(i, slot)| (slot.ov, i as u32)),
                );
            }
            VersionStore::Reference { entries, .. } => {
                out.extend(entries.keys().map(|&ov| (ov, NO_SLOT)));
            }
        }
    }

    fn pending_versions(&self) -> Box<dyn Iterator<Item = ObjectVersion> + '_> {
        match self {
            VersionStore::Dense { slots, pending, .. } => {
                Box::new(pending.iter().map(move |&s| slots[s as usize].ov))
            }
            VersionStore::Reference { work, .. } => Box::new(work.keys().copied()),
        }
    }

    /// Stored versions matching `keep`, in global object-version order
    /// (collected and sorted across shards; inspection paths only).
    fn sorted_versions_where(
        slots: &[VersionSlot],
        index: &ShardIndex,
        keep: impl Fn(&VersionSlot) -> bool,
    ) -> Vec<ObjectVersion> {
        let mut out: Vec<ObjectVersion> = index
            .shards
            .iter()
            .flat_map(|m| m.iter())
            // lint:allow(panic-path): index map entries always point at live slots
            .filter(|(_, &s)| keep(&slots[s as usize]))
            .map(|(&ov, _)| ov)
            .collect();
        out.sort_unstable();
        out
    }

    fn amr_versions(&self) -> Box<dyn Iterator<Item = ObjectVersion> + '_> {
        match self {
            VersionStore::Dense { slots, index, .. } => Box::new(
                Self::sorted_versions_where(slots, index, |slot| {
                    matches!(slot.state, VersionState::Amr(_))
                })
                .into_iter(),
            ),
            VersionStore::Reference { amr, .. } => Box::new(amr.keys().copied()),
        }
    }

    fn gave_up_versions(&self) -> Box<dyn Iterator<Item = ObjectVersion> + '_> {
        match self {
            VersionStore::Dense { slots, index, .. } => Box::new(
                Self::sorted_versions_where(slots, index, |slot| {
                    matches!(slot.state, VersionState::GaveUp)
                })
                .into_iter(),
            ),
            VersionStore::Reference { gave_up, .. } => Box::new(gave_up.iter().copied()),
        }
    }

    fn known_versions(&self) -> Box<dyn Iterator<Item = ObjectVersion> + '_> {
        match self {
            VersionStore::Dense { index, .. } => Box::new(index.keys_sorted().into_iter()),
            VersionStore::Reference { entries, .. } => Box::new(entries.keys().copied()),
        }
    }

    /// Versions collapsed to compaction residuals, in object-version
    /// order.
    fn compacted_versions(&self) -> Box<dyn Iterator<Item = ObjectVersion> + '_> {
        match self {
            VersionStore::Dense { slots, index, .. } => Box::new(
                Self::sorted_versions_where(slots, index, |slot| {
                    matches!(slot.entry, SlotEntry::Compacted { .. })
                })
                .into_iter(),
            ),
            VersionStore::Reference { .. } => Box::new(std::iter::empty()),
        }
    }

    /// Entry for `ov`, inserting a fresh one (which always starts
    /// pending) built by `make` if absent. Returns the entry and whether
    /// it was inserted — or `None` if the version is a compacted
    /// residual, which must never be resurrected into a full entry.
    fn entry_or_insert_with(
        &mut self,
        ov: ObjectVersion,
        now: SimTime,
        make: impl FnOnce() -> FragEntry,
    ) -> Option<(&mut FragEntry, bool)> {
        match self {
            VersionStore::Dense {
                slots,
                index,
                pending,
            } => {
                if let Some(s) = index.get(&ov) {
                    // lint:allow(panic-path): index map entries always point at live slots
                    return slots[s as usize].entry.full_mut().map(|e| (e, false));
                }
                let s = slots.len() as u32;
                slots.push(VersionSlot {
                    ov,
                    entry: SlotEntry::Full(make()),
                    state: VersionState::Pending(Box::new(ConvWork::new(now))),
                });
                index.insert(ov, s);
                Self::pending_insert(slots, pending, s);
                // lint:allow(panic-path): slot s was pushed two statements above
                slots[s as usize].entry.full_mut().map(|e| (e, true))
            }
            VersionStore::Reference { entries, work, .. } => {
                let mut inserted = false;
                let entry = entries.entry(ov).or_insert_with(|| {
                    inserted = true;
                    make()
                });
                if inserted {
                    work.insert(ov, ConvWork::new(now));
                }
                Some((entry, inserted))
            }
        }
    }

    /// Settles `ov` as AMR at `at` (overwriting an earlier AMR time, as
    /// the seed did), returning the pending work it displaced, if any.
    fn settle_amr(&mut self, ov: ObjectVersion, at: SimTime) -> Option<ConvWork> {
        match self {
            VersionStore::Dense {
                slots,
                index,
                pending,
            } => {
                let s = index.get(&ov)?;
                Self::pending_remove(slots, pending, ov);
                // lint:allow(panic-path): index map entries always point at live slots
                match std::mem::replace(&mut slots[s as usize].state, VersionState::Amr(at)) {
                    VersionState::Pending(w) => Some(*w),
                    _ => None,
                }
            }
            VersionStore::Reference {
                work, amr, gave_up, ..
            } => {
                gave_up.remove(&ov);
                amr.insert(ov, at);
                work.remove(&ov)
            }
        }
    }

    /// Abandons `ov` (give-up age exceeded), returning its pending work.
    fn settle_gave_up(&mut self, ov: ObjectVersion) -> Option<ConvWork> {
        match self {
            VersionStore::Dense {
                slots,
                index,
                pending,
            } => {
                let s = index.get(&ov)?;
                Self::pending_remove(slots, pending, ov);
                // lint:allow(panic-path): index map entries always point at live slots
                match std::mem::replace(&mut slots[s as usize].state, VersionState::GaveUp) {
                    VersionState::Pending(w) => Some(*w),
                    _ => None,
                }
            }
            VersionStore::Reference { work, gave_up, .. } => {
                gave_up.insert(ov);
                work.remove(&ov)
            }
        }
    }

    /// Re-enters a stored version for convergence (after corruption or
    /// disk loss), clearing any AMR/give-up mark; the returned work is
    /// fresh or the still-pending one.
    fn reopen(&mut self, ov: ObjectVersion, now: SimTime) -> &mut ConvWork {
        match self {
            VersionStore::Dense {
                slots,
                index,
                pending,
            } => {
                // lint:allow(panic-path): callers reopen only versions already present in the store
                let s = index.get(&ov).expect("reopened version is stored");
                debug_assert!(
                    // lint:allow(panic-path): index map entries always point at live slots
                    matches!(slots[s as usize].entry, SlotEntry::Full(_)),
                    "compacted versions hold no bytes and never re-enter convergence"
                );
                // lint:allow(panic-path): index map entries always point at live slots
                if !matches!(slots[s as usize].state, VersionState::Pending(_)) {
                    // lint:allow(panic-path): index map entries always point at live slots
                    slots[s as usize].state = VersionState::Pending(Box::new(ConvWork::new(now)));
                    Self::pending_insert(slots, pending, s);
                }
                // lint:allow(panic-path): index map entries always point at live slots
                match &mut slots[s as usize].state {
                    VersionState::Pending(w) => w,
                    _ => unreachable!("just made pending"),
                }
            }
            VersionStore::Reference {
                work, amr, gave_up, ..
            } => {
                amr.remove(&ov);
                gave_up.remove(&ov);
                work.entry(ov).or_insert_with(|| ConvWork::new(now))
            }
        }
    }

    /// The version whose in-flight recovery carries `op`, if any.
    fn find_recovery(&self, op: OpId) -> Option<ObjectVersion> {
        match self {
            VersionStore::Dense { slots, pending, .. } => pending.iter().find_map(|&s| {
                // lint:allow(panic-path): the pending list holds live slot ids
                let slot = &slots[s as usize];
                match &slot.state {
                    VersionState::Pending(w) if w.recovery.as_ref().is_some_and(|r| r.op == op) => {
                        Some(slot.ov)
                    }
                    _ => None,
                }
            }),
            VersionStore::Reference { work, .. } => work
                .iter()
                .find_map(|(&ov, w)| w.recovery.as_ref().filter(|r| r.op == op).map(|_| ov)),
        }
    }

    fn pending_insert(slots: &[VersionSlot], pending: &mut Vec<u32>, s: u32) {
        // lint:allow(panic-path): the pending list holds live slot ids
        let ov = slots[s as usize].ov;
        // lint:allow(panic-path): the pending list holds live slot ids
        if let Err(pos) = pending.binary_search_by(|&p| slots[p as usize].ov.cmp(&ov)) {
            pending.insert(pos, s);
        }
    }

    fn pending_remove(slots: &[VersionSlot], pending: &mut Vec<u32>, ov: ObjectVersion) {
        // lint:allow(panic-path): the pending list holds live slot ids
        if let Ok(pos) = pending.binary_search_by(|&p| slots[p as usize].ov.cmp(&ov)) {
            pending.remove(pos);
        }
    }
}

/// Per-destination coalescing buffers for one batched convergence round
/// (see [`ProtocolMode::batch_rounds`]). Entries accumulate while the
/// round's parts are delivered individually; `flush_round_batch` then
/// records one multi-entry message per destination and kind.
#[derive(Default)]
struct RoundBatch {
    kls: BTreeMap<NodeId, Vec<(ObjectVersion, Arc<Metadata>)>>,
    fs: BTreeMap<NodeId, Vec<(ObjectVersion, Arc<Metadata>, bool)>>,
    amr: BTreeMap<NodeId, Vec<(ObjectVersion, Arc<Metadata>)>>,
}

/// A fragment server actor.
pub struct Fs {
    topo: Arc<Topology>,
    my_dc: DataCenterId,
    opts: ConvergenceOptions,
    /// Own node id, captured at `on_start` (actors learn their id from the
    /// context).
    self_id: Option<NodeId>,
    /// Protocol hot-path switches, captured at construction.
    mode: ProtocolMode,
    /// Cached `topo.all_klss().count()` for the verification check.
    total_klss: usize,
    /// Every version this FS knows, with its fragments, metadata and
    /// convergence state.
    store: VersionStore,
    /// Coalescing buffers, `Some` only while a batched round is running.
    batch: Option<RoundBatch>,
    round_scheduled: bool,
    next_op: OpId,
    /// Convergence steps executed (for tests and ablations).
    steps_run: u64,
    /// Recoveries completed locally (for tests and ablations).
    recoveries_done: u64,
    /// Corrupted fragments detected (by the scrubber or the read path).
    corruption_detected: u64,
    /// Codecs by `(k, n)`, built once per policy shape: constructing a
    /// codec runs a Gaussian elimination, far too costly per recovery.
    codecs: BTreeMap<(u8, u8), Codec>,
    /// Reusable fragment-list scratch for the recovery path.
    recover_scratch: Vec<Fragment>,
    /// Reusable `(version, slot hint)` list for `run_round` and `scrub`,
    /// so steady-state rounds do not allocate a version list each tick.
    version_scratch: Vec<(ObjectVersion, u32)>,
    /// This DC's repair actor, set by the cluster builder when the
    /// repair engine is enabled; inventory reports go here.
    repair_target: Option<NodeId>,
    /// First version the next scrub tick scans (`None`: start a fresh
    /// pass). Scrub walks the store in version order, a
    /// [`ConvergenceOptions::scrub_chunk_bytes`] budget at a time.
    scrub_cursor: Option<ObjectVersion>,
}

impl Fs {
    /// Creates the FS for data center `my_dc` with the given convergence
    /// configuration, using the process-global [`ProtocolMode`].
    pub fn new(topo: Arc<Topology>, my_dc: DataCenterId, opts: ConvergenceOptions) -> Self {
        Self::with_mode(topo, my_dc, opts, ProtocolMode::current())
    }

    /// Creates the FS with an explicit [`ProtocolMode`].
    pub fn with_mode(
        topo: Arc<Topology>,
        my_dc: DataCenterId,
        opts: ConvergenceOptions,
        mode: ProtocolMode,
    ) -> Self {
        let total_klss = topo.all_klss().count();
        Fs {
            topo,
            my_dc,
            opts,
            self_id: None,
            mode,
            total_klss,
            store: VersionStore::new(mode),
            batch: None,
            round_scheduled: false,
            next_op: 1,
            steps_run: 0,
            recoveries_done: 0,
            corruption_detected: 0,
            codecs: BTreeMap::new(),
            recover_scratch: Vec::new(),
            version_scratch: Vec::new(),
            repair_target: None,
            scrub_cursor: None,
        }
    }

    /// Points this FS's periodic inventory reports at its DC's repair
    /// actor (cluster builder API; reports only flow when
    /// [`ConvergenceOptions`] enables the repair engine).
    pub fn set_repair_target(&mut self, target: NodeId) {
        self.repair_target = Some(target);
    }

    fn codec(&mut self, k: u8, n: u8) -> &Codec {
        self.codecs.entry((k, n)).or_insert_with(|| {
            // lint:allow(panic-path): (k, n) validated when the policy was accepted
            Codec::new(usize::from(k), usize::from(n)).expect("policy validated at put time")
        })
    }

    // ---- state inspection ----

    /// The data center this FS lives in.
    pub fn dc(&self) -> DataCenterId {
        self.my_dc
    }

    /// The stored entry for `ov`, if any.
    pub fn entry(&self, ov: ObjectVersion) -> Option<&FragEntry> {
        self.store.entry(ov)
    }

    /// Whether this FS holds every fragment assigned to it by `ov`'s
    /// metadata and that metadata is complete (the per-FS half of the AMR
    /// condition; the paper's `verify(storefrag[ov])`). A compacted
    /// residual reports `true`: compaction requires the version to have
    /// been settled AMR, which implies it verified (so replies about it
    /// stay byte-identical to the full store's).
    pub fn verified(&self, ov: ObjectVersion) -> bool {
        if self.store.residual(ov).is_some() {
            return true;
        }
        self.store.entry(ov).is_some_and(|e| {
            e.meta.is_complete()
                && e.meta
                    .assigned_to(self.self_node())
                    .all(|idx| e.fragments.contains_key(&idx))
        })
    }

    /// Versions still being converged.
    pub fn pending_versions(&self) -> impl Iterator<Item = ObjectVersion> + '_ {
        self.store.pending_versions()
    }

    /// Versions this FS considers AMR.
    pub fn amr_versions(&self) -> impl Iterator<Item = ObjectVersion> + '_ {
        self.store.amr_versions()
    }

    /// When this FS settled `ov` as AMR (verified it, or received an AMR
    /// indication), if it has.
    pub fn amr_settled_at(&self, ov: ObjectVersion) -> Option<SimTime> {
        self.store.amr_at(ov)
    }

    /// Every version present in the fragment store.
    pub fn known_versions(&self) -> impl Iterator<Item = ObjectVersion> + '_ {
        self.store.known_versions()
    }

    /// Versions abandoned after exceeding the give-up age.
    pub fn gave_up_versions(&self) -> impl Iterator<Item = ObjectVersion> + '_ {
        self.store.gave_up_versions()
    }

    /// Total convergence steps this FS has executed.
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }

    /// Fragment recoveries this FS completed.
    pub fn recoveries_done(&self) -> u64 {
        self.recoveries_done
    }

    /// Corrupted fragments detected so far (scrubber + read path).
    pub fn corruption_detected(&self) -> u64 {
        self.corruption_detected
    }

    /// The compaction residual for `ov` — the fragment indices this FS
    /// held when the superseded, settled-AMR version was collapsed to an
    /// O(1) record — if `ov` has been compacted.
    pub fn compacted_residual(&self, ov: ObjectVersion) -> Option<FragMask> {
        self.store.residual(ov)
    }

    /// Number of versions this FS has compacted to residual records.
    pub fn compacted_count(&self) -> usize {
        self.store.compacted_count()
    }

    /// Versions this FS has compacted, in object-version order.
    pub fn compacted_versions(&self) -> impl Iterator<Item = ObjectVersion> + '_ {
        self.store.compacted_versions()
    }

    // ---- fault injection (harness API) ----

    /// Silently corrupts a stored fragment by flipping one payload byte
    /// without touching its recorded checksum — simulating bit rot on
    /// disk. Returns `false` if the fragment is not stored (or empty).
    /// Wake the FS with [`WAKE_TIMER_TAG`] afterwards if you want the
    /// scrubber disabled and detection to happen on the next read
    /// instead.
    pub fn corrupt_fragment(&mut self, ov: ObjectVersion, idx: FragmentIndex) -> bool {
        let Some(entry) = self.store.entry_mut(ov) else {
            return false;
        };
        let Some(frag) = entry.fragments.get_mut(&idx) else {
            return false;
        };
        if frag.is_empty() {
            return false;
        }
        let mut bytes = frag.data().to_vec();
        bytes[0] ^= 0xFF;
        *frag = Fragment::new(idx, bytes);
        true
    }

    /// Destroys one disk: every fragment this server stores on `disk`
    /// (per each version's metadata) is dropped, and the affected
    /// versions re-enter the convergence store so their fragments get
    /// rebuilt (§3.1's "rebuild destroyed disks"). Returns the number of
    /// fragments lost. Wake the FS with [`WAKE_TIMER_TAG`] afterwards.
    pub fn destroy_disk(&mut self, disk: u8, now: SimTime) -> usize {
        let me = match self.self_id {
            Some(id) => id,
            None => return 0, // never ran; stores nothing
        };
        let mut lost = 0;
        let versions: Vec<ObjectVersion> = self.store.known_versions().collect();
        for ov in versions {
            let doomed: Vec<FragmentIndex> = {
                // Compacted residuals hold no bytes, so a dead disk
                // cannot lose them.
                let Some(entry) = self.store.entry(ov) else {
                    continue;
                };
                entry
                    .meta
                    .assignments()
                    .filter(|(idx, loc)| {
                        loc.fs == me && loc.disk == disk && entry.fragments.contains_key(idx)
                    })
                    .map(|(idx, _)| idx)
                    .collect()
            };
            if doomed.is_empty() {
                continue;
            }
            let entry = self.store.entry_mut(ov).expect("present");
            for idx in &doomed {
                entry.fragments.remove(idx);
                entry.checksums.remove(idx);
                lost += 1;
            }
            self.re_pend(ov, now);
        }
        lost
    }

    /// Re-enters a version into the convergence store (after corruption
    /// or disk loss), clearing any AMR/give-up status.
    fn re_pend(&mut self, ov: ObjectVersion, now: SimTime) {
        let work = self.store.reopen(ov, now);
        work.attempts = 0;
        work.next_eligible = now;
    }

    /// One scrub tick: verifies stored fragments against their recorded
    /// checksums, at most [`ConvergenceOptions::scrub_chunk_bytes`] of
    /// payload per tick (a persistent cursor resumes the walk on the next
    /// tick, so the cost of one event is proportional to the bytes it
    /// scanned, not to the whole store). Corrupted fragments are dropped
    /// and their versions re-entered for convergence (which regenerates
    /// them from the siblings). Returns the number of corrupted fragments
    /// found this tick.
    // lint:hot
    fn scrub(&mut self, ctx: &mut Context<'_, Message>) -> usize {
        let now = ctx.now();
        let budget = self.opts.scrub_chunk_bytes.max(1);
        let mut scanned = 0usize;
        let mut found = 0;
        let mut versions = std::mem::take(&mut self.version_scratch);
        self.store.collect_known(&mut versions);
        // The dense store yields versions in slot order; sort so the
        // cursor walk is stable across store layouts.
        versions.sort_unstable_by_key(|&(ov, _)| ov);
        let resume = self.scrub_cursor.take();
        for &(ov, hint) in &versions {
            if resume.is_some_and(|cur| ov < cur) {
                continue;
            }
            if scanned >= budget {
                // Out of budget: resume from this version next tick.
                self.scrub_cursor = Some(ov);
                break;
            }
            // Corrupted fragment indices as a mask: no per-version list
            // allocation on the (usually clean) scrub walk.
            let mut bad = FragMask::new();
            {
                // Compacted residuals hold no fragments to verify.
                let Some(entry) = self.store.entry_at_mut(ov, hint) else {
                    continue;
                };
                for (&idx, frag) in &entry.fragments {
                    scanned += frag.len();
                    if !entry
                        .checksums
                        .get(&idx)
                        .is_some_and(|sum| sum.verify(frag.data()))
                    {
                        bad.insert(idx);
                    }
                }
                if bad.is_empty() {
                    continue;
                }
                for idx in bad.iter() {
                    entry.fragments.remove(&idx);
                    entry.checksums.remove(&idx);
                    found += 1;
                }
            }
            self.re_pend(ov, now);
        }
        versions.clear();
        self.version_scratch = versions;
        self.corruption_detected += found as u64;
        if found > 0 {
            self.ensure_round(ctx);
        }
        found
    }

    /// Sends this FS's fragment inventory — every known version with its
    /// metadata and held fragment indices — to the DC's repair actor. An
    /// empty store still reports (the actor waits for every FS before
    /// judging redundancy).
    fn send_repair_report(&mut self, ctx: &mut Context<'_, Message>) {
        let Some(target) = self.repair_target else {
            return;
        };
        let mut versions = std::mem::take(&mut self.version_scratch);
        self.store.collect_known(&mut versions);
        versions.sort_unstable_by_key(|&(ov, _)| ov);
        let mut entries = Vec::with_capacity(versions.len());
        for &(ov, _) in &versions {
            let Some(entry) = self.store.entry(ov) else {
                continue;
            };
            entries.push((
                ov,
                Arc::clone(&entry.meta),
                entry.fragments.keys().copied().collect(),
            ));
        }
        versions.clear();
        self.version_scratch = versions;
        ctx.send(target, Message::RepairReport { entries });
    }

    // ---- internals ----

    /// This FS's own node id. Valid only while processing an event, so we
    /// thread it through from the context; stored here for inspection
    /// methods we keep a copy the first time an event runs.
    fn self_node(&self) -> NodeId {
        // lint:allow(panic-path): self_id is recorded the first time an event runs
        self.self_id.expect("FS has processed at least one event")
    }

    fn ensure_round(&mut self, ctx: &mut Context<'_, Message>) {
        if self.round_scheduled || self.store.pending_is_empty() {
            return;
        }
        let delay = match self.opts.schedule {
            RoundSchedule::Unsynchronized => {
                let lo = self.opts.round_min.as_micros();
                let hi = self.opts.round_max.as_micros();
                simnet::SimDuration::from_micros(rand::Rng::random_range(ctx.rng(), lo..=hi))
            }
            RoundSchedule::Synchronized => {
                // Fire at the next global multiple of the period.
                let period = self.opts.sync_period.as_micros();
                let now = ctx.now().as_micros();
                let next = (now / period + 1) * period;
                simnet::SimDuration::from_micros(next - now)
            }
        };
        ctx.schedule_timer(delay, TAG_ROUND);
        self.round_scheduled = true;
    }

    /// New information arrived for `ov`: reset its backoff so convergence
    /// reacts promptly, and make sure a round is coming.
    fn note_progress(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        if let Some(work) = self.store.work_mut(ov) {
            work.attempts = 0;
            work.next_eligible = ctx.now();
        }
        self.ensure_round(ctx);
    }

    /// Ensures the store tracks `ov` (pending unless it is already
    /// settled) and merges `meta` in. Returns `true` if the metadata
    /// gained locations.
    // lint:hot
    fn adopt(
        &mut self,
        ctx: &mut Context<'_, Message>,
        ov: ObjectVersion,
        meta: &Arc<Metadata>,
    ) -> bool {
        let now = ctx.now();
        let mode = self.mode;
        let Some((entry, _inserted)) = self.store.entry_or_insert_with(ov, now, || FragEntry {
            meta: mode.share(meta),
            fragments: BTreeMap::new(),
            checksums: BTreeMap::new(),
        }) else {
            // Compacted: the version is settled AMR with complete
            // metadata, so a full store's merge would be a no-op and
            // the settled branch below would skip scheduling anyway.
            return false;
        };
        let changed = if mode.share_metadata {
            Metadata::merge_shared(&mut entry.meta, meta)
        } else {
            // Reference cost model: the seed's unconditional merge walk.
            Arc::make_mut(&mut entry.meta).merge(meta)
        };
        if !self.store.is_settled(ov) {
            if changed {
                self.note_progress(ctx, ov);
            } else {
                self.ensure_round(ctx);
            }
        }
        changed
    }

    /// Marks `ov` AMR: drop convergence work, optionally broadcast FS AMR
    /// indications.
    fn finalize_amr(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion, indicate: bool) {
        let newly_settled = self.store.amr_at(ov).is_none();
        if let Some(work) = self.store.settle_amr(ov, ctx.now()) {
            if let Some(rec) = work.recovery {
                self.cancel_recovery_timers(ctx, &rec);
            }
        }
        if indicate && self.opts.fs_amr_indication {
            let me = ctx.self_id();
            let meta = Arc::clone(
                &self
                    .store
                    .entry(ov)
                    // lint:allow(panic-path): settled versions stay stored
                    .expect("settled versions are stored")
                    .meta,
            );
            for fs in meta.sibling_fss() {
                if fs != me {
                    let share = self.mode.share(&meta);
                    self.send_amr_indication(ctx, fs, ov, share);
                }
            }
        }
        // A newly settled AMR version supersedes every older settled
        // version of the same key: collapse those to residual records.
        // Pure local bookkeeping — no messages, timers, or RNG draws —
        // so replay digests are unchanged. Gated on the first settle
        // (re-indications re-stamp the AMR time but open no new
        // compaction opportunity), which with the incremental walk in
        // [`VersionStore::compact_superseded`] keeps hot-key settles
        // amortized O(1).
        if self.mode.compact_converged && newly_settled {
            self.store.compact_superseded(ov);
        }
    }

    // ---- batched-round send helpers ----
    //
    // Inside a batched round (`self.batch` is `Some`) these deliver each
    // message individually through the simulated channel — drawing exactly
    // the RNG an unbatched send would, so behavior is bit-identical — but
    // defer the metric record: the flush below accounts one multi-entry
    // message per destination and kind instead. Outside a round they are
    // plain sends.

    // lint:hot
    fn send_converge_kls(
        &mut self,
        ctx: &mut Context<'_, Message>,
        to: NodeId,
        ov: ObjectVersion,
        meta: Arc<Metadata>,
    ) {
        match &mut self.batch {
            Some(batch) => {
                ctx.send_coalesced_part(
                    to,
                    Message::ConvergeKls {
                        ov,
                        meta: Arc::clone(&meta),
                    },
                );
                batch.kls.entry(to).or_default().push((ov, meta));
            }
            None => ctx.send(to, Message::ConvergeKls { ov, meta }),
        }
    }

    // lint:hot
    fn send_converge_fs(
        &mut self,
        ctx: &mut Context<'_, Message>,
        to: NodeId,
        ov: ObjectVersion,
        meta: Arc<Metadata>,
        recovery_intent: bool,
    ) {
        match &mut self.batch {
            Some(batch) => {
                ctx.send_coalesced_part(
                    to,
                    Message::ConvergeFs {
                        ov,
                        meta: Arc::clone(&meta),
                        recovery_intent,
                    },
                );
                batch
                    .fs
                    .entry(to)
                    .or_default()
                    .push((ov, meta, recovery_intent));
            }
            None => ctx.send(
                to,
                Message::ConvergeFs {
                    ov,
                    meta,
                    recovery_intent,
                },
            ),
        }
    }

    // lint:hot
    fn send_amr_indication(
        &mut self,
        ctx: &mut Context<'_, Message>,
        to: NodeId,
        ov: ObjectVersion,
        meta: Arc<Metadata>,
    ) {
        match &mut self.batch {
            Some(batch) => {
                ctx.send_coalesced_part(
                    to,
                    Message::AmrIndication {
                        ov,
                        meta: Arc::clone(&meta),
                    },
                );
                batch.amr.entry(to).or_default().push((ov, meta));
            }
            None => ctx.send(to, Message::AmrIndication { ov, meta }),
        }
    }

    /// Records the round's coalesced traffic: one multi-entry message per
    /// destination and kind (one shared header, per-entry bodies).
    fn flush_round_batch(&mut self, ctx: &mut Context<'_, Message>) {
        let Some(batch) = self.batch.take() else {
            return;
        };
        for (_, entries) in batch.kls {
            let n = entries.len() as u64;
            let msg = Message::ConvergeKlsBatch { entries };
            ctx.record_coalesced(&msg, n);
        }
        for (_, entries) in batch.fs {
            let n = entries.len() as u64;
            let msg = Message::ConvergeFsBatch { entries };
            ctx.record_coalesced(&msg, n);
        }
        for (_, entries) in batch.amr {
            let n = entries.len() as u64;
            let msg = Message::AmrIndicationBatch { entries };
            ctx.record_coalesced(&msg, n);
        }
    }

    fn cancel_recovery_timers(&self, ctx: &mut Context<'_, Message>, rec: &Recovery) {
        if let Some(t) = rec.wait_timer {
            ctx.cancel_timer(t);
        }
        ctx.cancel_timer(rec.timeout_timer);
    }

    /// Abandons an in-flight recovery (backoff already set by the step
    /// that started it).
    fn abort_recovery(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        if let Some(work) = self.store.work_mut(ov) {
            if let Some(rec) = work.recovery.take() {
                let rec_timers = rec;
                self.cancel_recovery_timers(ctx, &rec_timers);
            }
        }
    }

    /// Runs one convergence round (the paper's `start_round`).
    // lint:hot
    fn run_round(&mut self, ctx: &mut Context<'_, Message>) {
        let now = ctx.now();
        if self.mode.batch_rounds {
            self.batch = Some(RoundBatch::default());
        }
        let mut versions = std::mem::take(&mut self.version_scratch);
        self.store.collect_pending(&mut versions);
        for &(ov, hint) in &versions {
            let Some(work) = self.store.work_at(ov, hint) else {
                continue;
            };
            if work.recovery.is_some() || now < work.next_eligible {
                continue;
            }
            if now.duration_since(work.created) < self.opts.min_age {
                continue;
            }
            if let Some(limit) = self.opts.give_up_age {
                if now.duration_since(work.created) > limit {
                    self.store.settle_gave_up(ov);
                    continue;
                }
            }
            self.step(ctx, ov, hint);
        }
        versions.clear();
        self.version_scratch = versions;
        self.flush_round_batch(ctx);
        self.ensure_round(ctx);
    }

    /// One convergence step for one object version.
    // lint:hot
    fn step(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion, hint: u32) {
        self.steps_run += 1;
        let me = ctx.self_id();
        let entry = self
            .store
            .entry_at(ov, hint)
            // lint:allow(panic-path): step runs only over the pending listing
            .expect("pending implies stored");
        let meta = Arc::clone(&entry.meta);
        let missing = Self::missing_mask(entry, me);

        // Charge the backoff up front; any new information resets it.
        let attempt = {
            // lint:allow(panic-path): step already verified the version is pending
            let work = self.store.work_at_mut(ov, hint).expect("checked by caller");
            work.attempts += 1;
            let delay = self.opts.backoff_delay(work.attempts);
            work.next_eligible = ctx.now() + delay;
            work.step_open = false;
            work.attempts as usize
        };

        if !meta.is_complete() {
            // 1. Metadata repair: probe one KLS per missing DC, rotating
            // through the DC's KLSs across attempts (§3.5 fixed order).
            // Repair probes are rare and never batched.
            for dc in self.topo.dc_ids() {
                if meta.has_dc(dc) {
                    continue;
                }
                let klss = self.topo.klss_in(dc);
                // lint:allow(panic-path): every DC has at least one KLS (topology invariant)
                let kls = klss[(attempt - 1) % klss.len()];
                ctx.send(
                    kls,
                    Message::FsDecideLocs {
                        ov,
                        meta: self.mode.share(&meta),
                    },
                );
            }
        } else if !missing.is_empty() {
            // 2. Fragment recovery.
            self.start_recovery(ctx, ov);
        } else {
            // 3. Verification: probe all KLSs and sibling FSs.
            {
                // lint:allow(panic-path): step already verified the version is pending
                let work = self.store.work_at_mut(ov, hint).expect("present");
                work.kls_ok.clear();
                work.fs_ok.clear();
                work.step_open = true;
            }
            let klss: Vec<NodeId> = self.topo.all_klss().collect();
            for kls in klss {
                let share = self.mode.share(&meta);
                self.send_converge_kls(ctx, kls, ov, share);
            }
            for fs in meta.sibling_fss() {
                if fs != me {
                    let share = self.mode.share(&meta);
                    self.send_converge_fs(ctx, fs, ov, share, false);
                }
            }
            self.check_amr(ctx, ov);
        }
    }

    /// Fragment indices assigned to `me` that are not in the store.
    // lint:hot
    fn missing_mask(entry: &FragEntry, me: NodeId) -> FragMask {
        let mut mask = FragMask::new();
        for idx in entry.meta.assigned_to(me) {
            if !entry.fragments.contains_key(&idx) {
                mask.insert(idx);
            }
        }
        mask
    }

    fn start_recovery(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        let me = ctx.self_id();
        let op = self.next_op;
        self.next_op += 1;
        // lint:allow(panic-path): recovery starts only for pending (hence stored) versions
        let meta = Arc::clone(&self.store.entry(ov).expect("pending implies stored").meta);
        let timeout_timer =
            ctx.schedule_timer(self.opts.recovery_timeout, TAG_RECOVERY_TIMEOUT | op);

        if self.opts.sibling_recovery {
            // Probe siblings with the recovery-intent flag; their replies
            // report what they need; we fetch after a short accumulation
            // window. The probes are convergence traffic emitted by a
            // round, so a batching FS coalesces them too.
            for fs in meta.sibling_fss() {
                if fs != me {
                    let share = self.mode.share(&meta);
                    self.send_converge_fs(ctx, fs, ov, share, true);
                }
            }
            let wait_timer = ctx.schedule_timer(self.opts.recovery_wait, TAG_RECOVERY_WAIT | op);
            // lint:allow(panic-path): recovery starts only for pending versions
            let work = self.store.work_mut(ov).expect("present");
            work.recovery = Some(Recovery {
                op,
                phase: RecoveryPhase::AwaitingReports,
                reports: BTreeMap::new(),
                collected: BTreeMap::new(),
                wait_timer: Some(wait_timer),
                timeout_timer,
            });
        } else {
            // Naïve recovery: a get of this object version — request every
            // remotely assigned fragment (§3.4 `recover_fragment`).
            for (idx, loc) in meta.assignments() {
                if loc.fs != me {
                    ctx.send(
                        loc.fs,
                        Message::RetrieveFrag {
                            op,
                            ov,
                            fragment: idx,
                        },
                    );
                }
            }
            // lint:allow(panic-path): recovery starts only for pending versions
            let work = self.store.work_mut(ov).expect("present");
            work.recovery = Some(Recovery {
                op,
                phase: RecoveryPhase::Fetching,
                reports: BTreeMap::new(),
                collected: BTreeMap::new(),
                wait_timer: None,
                timeout_timer,
            });
        }
    }

    /// The recovery-wait window closed: pick fragments to fetch based on
    /// the siblings' reports.
    fn recovery_wait_elapsed(&mut self, ctx: &mut Context<'_, Message>, op: OpId) {
        let Some(ov) = self.store.find_recovery(op) else {
            return;
        };
        let me = ctx.self_id();
        let (local, k) = {
            // lint:allow(panic-path): find_recovery returned this ov, so it is stored
            let entry = self.store.entry(ov).expect("recovering implies stored");
            let local: BTreeSet<FragmentIndex> = entry.fragments.keys().copied().collect();
            (local, usize::from(entry.meta.policy().k))
        };

        // Plan fetches: iterate reports in id order, taking fragments we
        // neither hold nor already planned, until k total are available.
        let mut plan: Vec<(NodeId, FragmentIndex)> = Vec::new();
        let mut planned: BTreeSet<FragmentIndex> = local.clone();
        {
            // lint:allow(panic-path): find_recovery returned this ov, so it is pending
            let work = self.store.work_mut(ov).expect("recovering");
            // lint:allow(panic-path): find_recovery guarantees an in-flight recovery
            let rec = work.recovery.as_mut().expect("recovering");
            rec.phase = RecoveryPhase::Fetching;
            rec.wait_timer = None;
            for (&fs, (have, _)) in &rec.reports {
                for &idx in have {
                    if planned.len() >= k {
                        break;
                    }
                    if !planned.contains(&idx) {
                        planned.insert(idx);
                        plan.push((fs, idx));
                    }
                }
            }
        }
        if planned.len() < k {
            // Not enough fragments reachable right now; retry at a later
            // round (backoff was charged when the step started).
            self.abort_recovery(ctx, ov);
            return;
        }
        debug_assert!(!plan.iter().any(|(fs, _)| *fs == me));
        for (fs, idx) in plan {
            ctx.send(
                fs,
                Message::RetrieveFrag {
                    op,
                    ov,
                    fragment: idx,
                },
            );
        }
        // If we already hold k fragments locally (possible when only our
        // *other* disk's fragment is missing), finish immediately.
        if local.len() >= k {
            self.try_finish_recovery(ctx, ov);
        }
    }

    /// Completes the recovery if enough fragments are on hand: regenerate
    /// our missing fragments (and, in sibling mode, everything the
    /// siblings reported missing) and push the siblings' shares to them.
    fn try_finish_recovery(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        let me = ctx.self_id();
        let (policy, value_len, meta, my_mask, pool, sibling_needs) = {
            // lint:allow(panic-path): recovery in flight implies stored
            let entry = self.store.entry(ov).expect("recovering implies stored");
            // lint:allow(panic-path): recovery in flight implies pending
            let work = self.store.work(ov).expect("recovering");
            // lint:allow(panic-path): callers reach here only with a recovery in flight
            let rec = work.recovery.as_ref().expect("recovery in flight");
            let mut pool: BTreeMap<FragmentIndex, Fragment> = entry.fragments.clone();
            for (idx, frag) in &rec.collected {
                pool.entry(*idx).or_insert_with(|| frag.clone());
            }
            let mut sibling_needs: Vec<(NodeId, Vec<FragmentIndex>)> = Vec::new();
            if self.opts.sibling_recovery {
                for (&fs, (_, missing)) in &rec.reports {
                    if !missing.is_empty() {
                        sibling_needs.push((fs, missing.clone()));
                    }
                }
            }
            (
                *entry.meta.policy(),
                entry.meta.value_len(),
                Arc::clone(&entry.meta),
                Self::missing_mask(entry, me),
                pool,
                sibling_needs,
            )
        };
        let k = usize::from(policy.k);
        if pool.len() < k {
            return; // keep waiting for more RetrieveFragReply
        }

        // Regeneration targets: our own missing fragments plus everything
        // the siblings reported missing, deduplicated by the mask.
        let mut target_mask = my_mask;
        for (_, needs) in &sibling_needs {
            for &idx in needs {
                target_mask.insert(idx);
            }
        }
        let targets: Vec<FragmentIndex> = target_mask.iter().collect();

        let sources: Vec<Fragment> = pool.values().cloned().collect();
        let mut recovered = std::mem::take(&mut self.recover_scratch);
        self.codec(policy.k, policy.n)
            .recover_into(&sources, &targets, value_len, &mut recovered)
            // lint:allow(panic-path): pool.len() >= k checked above
            .expect("k fragments suffice");
        let by_idx: BTreeMap<FragmentIndex, Fragment> =
            recovered.drain(..).map(|f| (f.index(), f)).collect();
        self.recover_scratch = recovered;

        // Store our own missing fragments.
        {
            // lint:allow(panic-path): recovering versions stay stored
            let entry = self.store.entry_mut(ov).expect("present");
            for idx in my_mask.iter() {
                // lint:allow(panic-path): recover_into returns a fragment for every requested target
                let frag = by_idx[&idx].clone();
                entry.checksums.insert(idx, Checksum::of(frag.data()));
                entry.fragments.insert(idx, frag);
            }
        }
        // Push the siblings' recovered fragments to them (§4.2).
        for (fs, needs) in sibling_needs {
            for idx in needs {
                let share = self.mode.share(&meta);
                ctx.send(
                    fs,
                    Message::SiblingStore {
                        ov,
                        meta: share,
                        // lint:allow(panic-path): recover_into returns a fragment for every requested target
                        fragment: by_idx[&idx].clone(),
                    },
                );
            }
        }

        self.recoveries_done += 1;
        // lint:allow(panic-path): recovering versions stay pending until settled here
        let work = self.store.work_mut(ov).expect("present");
        // lint:allow(panic-path): recovery was in flight until taken here
        let rec = work.recovery.take().expect("recovery in flight");
        self.cancel_recovery_timers(ctx, &rec);
        self.note_progress(ctx, ov);
    }

    /// Records a verification-step reply and finalizes AMR when everyone
    /// verified (the paper's `is_amr`).
    fn check_amr(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        let me = ctx.self_id();
        let Some(work) = self.store.work(ov) else {
            return;
        };
        if !work.step_open {
            return;
        }
        // `kls_ok` only ever holds KLSs that replied verified, so reaching
        // the cluster's KLS count is the seed's superset-of-all-KLSs test
        // without rebuilding that set per reply.
        if work.kls_ok.len() < self.total_klss {
            return;
        }
        // lint:allow(panic-path): pending versions are always stored
        let meta = &self.store.entry(ov).expect("pending implies stored").meta;
        let all_siblings_ok = meta
            .sibling_fss()
            .into_iter()
            .filter(|&fs| fs != me)
            .all(|fs| work.fs_ok.contains(&fs));
        if all_siblings_ok && self.verified(ov) {
            self.finalize_amr(ctx, ov, true);
        }
    }

    /// Store a fragment (from a proxy put, or a sibling push).
    ///
    /// Windowed delta fragments (§8.8) are eagerly resolved against the
    /// base version's dense same-index fragment before storing — stored
    /// state is always dense, so gets, checksums, recovery and compaction
    /// stay delta-oblivious and single-step (chains never accumulate on
    /// disk). Returns whether the fragment is durably stored; `false`
    /// only for a delta whose base this server no longer holds (e.g.
    /// compacted), in which case the caller withholds the acknowledgment
    /// and the proxy's timeout/retry path re-anchors with a full encode.
    fn store_fragment(
        &mut self,
        ctx: &mut Context<'_, Message>,
        ov: ObjectVersion,
        meta: &Arc<Metadata>,
        fragment: Fragment,
    ) -> bool {
        // Resolve deltas *before* adopting the new version's metadata:
        // adoption supersedes the base, and a compacting store releases a
        // settled superseded base's fragments in the same breath — the
        // window where the delta is still applicable is exactly now.
        let was_delta = fragment.is_delta();
        let fragment = if was_delta {
            let base = meta
                .delta_base()
                .map(|ts| ObjectVersion::new(ov.key, ts))
                .and_then(|base_ov| self.store.entry(base_ov))
                .and_then(|e| e.fragments.get(&fragment.index()))
                .cloned();
            match base.as_ref().and_then(|b| fragment.apply_delta(b)) {
                Some(resolved) => resolved,
                None => {
                    // Base fragment gone (compacted, or never stored
                    // here): unresolvable, so nothing durable to ack.
                    ctx.record_event(EV_DELTA_UNRESOLVABLE, 1);
                    self.adopt(ctx, ov, meta);
                    self.note_progress(ctx, ov);
                    return false;
                }
            }
        } else {
            fragment
        };
        self.adopt(ctx, ov, meta);
        if was_delta {
            ctx.record_event(EV_DELTAS_RESOLVED, 1);
        }
        // Compacted versions accept no bytes; a full store would treat
        // this as a duplicate of a fragment it already holds — in both
        // cases the store is unchanged and note_progress still runs.
        if let Some(entry) = self.store.entry_mut(ov) {
            let idx = fragment.index();
            if !entry.fragments.contains_key(&idx) {
                entry.checksums.insert(idx, Checksum::of(fragment.data()));
                entry.fragments.insert(idx, fragment);
            }
        }
        self.note_progress(ctx, ov);
        true
    }

    /// Handles one FS convergence probe — the singular message or one
    /// entry of a coalesced batch (replies are per entry either way).
    fn on_converge_fs(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        ov: ObjectVersion,
        meta: &Arc<Metadata>,
        recovery_intent: bool,
    ) {
        let me = ctx.self_id();
        self.adopt(ctx, ov, meta);
        // Sibling-recovery contention: both of us are recovering — the FS
        // with the *lower* id backs off (§4.2).
        if recovery_intent && self.opts.sibling_recovery && me < from {
            let ours = self
                .store
                .work(ov)
                .and_then(|w| w.recovery.as_ref())
                .map(|r| r.op);
            if let Some(op) = ours {
                self.recovery_cancelled(ctx, ov, op);
            }
        }
        let (have, missing): (Vec<FragmentIndex>, Vec<FragmentIndex>) = match self.store.entry(ov) {
            Some(entry) => {
                let have = entry.fragments.keys().copied().collect();
                let missing = if entry.meta.is_complete() {
                    Self::missing_mask(entry, me).iter().collect()
                } else {
                    Vec::new()
                };
                (have, missing)
            }
            None => {
                // Compacted: the residual mask is exactly the fragment
                // set the full store would report, and a verified AMR
                // version misses nothing — the reply is byte-identical.
                // lint:allow(panic-path): adopt stores any non-compacted version
                let held = self.store.residual(ov).expect("compacted");
                (held.iter().collect(), Vec::new())
            }
        };
        let verified = self.verified(ov);
        let recovering = self.store.work(ov).is_some_and(|w| w.recovery.is_some());
        ctx.send(
            from,
            Message::ConvergeFsReply {
                ov,
                verified,
                have,
                missing,
                recovering,
            },
        );
    }

    /// Self id captured from the first processed event (actors do not know
    /// their id before that).
    fn remember_self(&mut self, ctx: &Context<'_, Message>) {
        if self.self_id.is_none() {
            self.self_id = Some(ctx.self_id());
        }
    }
}

impl Actor<Message> for Fs {
    fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
        self.self_id = Some(ctx.self_id());
        if let Some(interval) = self.opts.scrub_interval {
            ctx.schedule_timer(interval, TAG_SCRUB);
        }
        if let Some(repair) = self.opts.repair.as_ref() {
            ctx.schedule_timer(repair.report_interval, TAG_REPAIR_REPORT);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: Message) {
        self.remember_self(ctx);
        let me = ctx.self_id();
        match msg {
            Message::StoreFragment { ov, meta, fragment } => {
                let idx = fragment.index();
                if self.store_fragment(ctx, ov, &meta, fragment) {
                    ctx.send(from, Message::StoreFragmentReply { ov, fragment: idx });
                }
            }

            Message::StoreMetadata { ov, meta } => {
                // Proxy location update for a fragment we already hold
                // (second wave of the put, §5.2).
                self.adopt(ctx, ov, &meta);
                // Compacted versions settled with complete metadata.
                let complete = self.store.entry(ov).is_none_or(|e| e.meta.is_complete());
                ctx.send(from, Message::StoreMetadataReply { ov, complete });
            }

            Message::SiblingStore { ov, meta, fragment } => {
                // Recovered fragment pushed by a sibling; unacknowledged
                // (and always dense — recovery regenerates full rows).
                let _ = self.store_fragment(ctx, ov, &meta, fragment);
            }

            Message::LocsIndication { ov, meta } => {
                self.adopt(ctx, ov, &meta);
            }

            Message::AmrIndication { ov, meta } => {
                // Complete our metadata and stop all convergence work
                // (cancelling recovery timers), without re-indicating.
                self.adopt(ctx, ov, &meta);
                self.finalize_amr(ctx, ov, false);
            }

            Message::AmrIndicationBatch { entries } => {
                for (ov, meta) in entries {
                    self.adopt(ctx, ov, &meta);
                    self.finalize_amr(ctx, ov, false);
                }
            }

            Message::ConvergeFs {
                ov,
                meta,
                recovery_intent,
            } => {
                self.on_converge_fs(ctx, from, ov, &meta, recovery_intent);
            }

            Message::ConvergeFsBatch { entries } => {
                for (ov, meta, recovery_intent) in entries {
                    self.on_converge_fs(ctx, from, ov, &meta, recovery_intent);
                }
            }

            Message::ConvergeFsReply {
                ov,
                verified,
                have,
                missing,
                recovering,
            } => {
                let Some(work) = self.store.work_mut(ov) else {
                    return;
                };
                // Verification bookkeeping.
                if verified {
                    work.fs_ok.insert(from);
                }
                // Recovery bookkeeping.
                let mut backed_off = None;
                if let Some(rec) = work.recovery.as_mut() {
                    if rec.phase == RecoveryPhase::AwaitingReports {
                        rec.reports.insert(from, (have, missing));
                    }
                    // Contention observed from the reply side: the sender
                    // (higher id) is also recovering — we back off if our
                    // id is lower.
                    if recovering && me < from {
                        backed_off = Some(rec.op);
                    }
                }
                if let Some(op) = backed_off {
                    self.recovery_cancelled(ctx, ov, op);
                    return;
                }
                self.check_amr(ctx, ov);
            }

            Message::ConvergeKlsReply { ov, verified } => {
                if let Some(work) = self.store.work_mut(ov) {
                    if verified {
                        work.kls_ok.insert(from);
                    }
                }
                self.check_amr(ctx, ov);
            }

            Message::DecideLocsReply { ov, dc, locations } => {
                // Reply to our FsDecideLocs probe.
                if let Some(entry) = self.store.entry_mut(ov) {
                    if !entry.meta.has_dc(dc) {
                        Arc::make_mut(&mut entry.meta).add_dc_locations(dc, locations);
                        self.note_progress(ctx, ov);
                    }
                }
            }

            Message::RetrieveFrag { op, ov, fragment } => {
                // Verify before serving: a fragment that fails its hash
                // is corrupt — drop it, answer ⊥, and let convergence
                // regenerate it (§3.1).
                let mut data = None;
                if let Some(entry) = self.store.entry(ov) {
                    if let Some(frag) = entry.fragments.get(&fragment) {
                        let ok = entry
                            .checksums
                            .get(&fragment)
                            .is_some_and(|sum| sum.verify(frag.data()));
                        if ok {
                            data = Some(frag.clone());
                        }
                    }
                }
                if data.is_none()
                    && self
                        .store
                        .entry(ov)
                        .is_some_and(|e| e.fragments.contains_key(&fragment))
                {
                    // Present but corrupt.
                    let now = ctx.now();
                    // lint:allow(panic-path): the entry was checked present just above
                    let entry = self.store.entry_mut(ov).expect("present");
                    entry.fragments.remove(&fragment);
                    entry.checksums.remove(&fragment);
                    self.corruption_detected += 1;
                    self.re_pend(ov, now);
                    self.ensure_round(ctx);
                }
                ctx.send(
                    from,
                    Message::RetrieveFragReply {
                        op,
                        ov,
                        fragment,
                        data,
                    },
                );
            }

            Message::RetrieveFragReply { op, ov, data, .. } => {
                let Some(work) = self.store.work_mut(ov) else {
                    return;
                };
                let Some(rec) = work.recovery.as_mut() else {
                    return;
                };
                if rec.op != op || rec.phase != RecoveryPhase::Fetching {
                    return;
                }
                if let Some(frag) = data {
                    rec.collected.insert(frag.index(), frag);
                }
                self.try_finish_recovery(ctx, ov);
            }

            other => {
                debug_assert!(false, "FS received unexpected {:?}", other);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, tag: u64) {
        self.remember_self(ctx);
        let op = tag & !TAG_MASK;
        match tag & TAG_MASK {
            TAG_ROUND => {
                self.round_scheduled = false;
                self.run_round(ctx);
            }
            TAG_RECOVERY_WAIT => self.recovery_wait_elapsed(ctx, op),
            TAG_RECOVERY_TIMEOUT => {
                if let Some(ov) = self.store.find_recovery(op) {
                    self.abort_recovery(ctx, ov);
                    self.ensure_round(ctx);
                }
            }
            TAG_SCRUB => {
                self.scrub(ctx);
                if let Some(interval) = self.opts.scrub_interval {
                    ctx.schedule_timer(interval, TAG_SCRUB);
                }
            }
            TAG_REPAIR_REPORT => {
                self.send_repair_report(ctx);
                if let Some(repair) = self.opts.repair.as_ref() {
                    ctx.schedule_timer(repair.report_interval, TAG_REPAIR_REPORT);
                }
            }
            _ => debug_assert!(false, "unknown FS timer tag {tag:#x}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Fs {
    /// Cancels the in-flight recovery identified by `op` for `ov`.
    fn recovery_cancelled(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion, op: OpId) {
        if let Some(work) = self.store.work_mut(ov) {
            if let Some(rec) = work.recovery.take() {
                debug_assert_eq!(rec.op, op);
                self.cancel_recovery_timers(ctx, &rec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kls::Kls;
    use crate::metadata::Location;
    use crate::policy::Policy;
    use crate::types::{Key, Timestamp};
    use simnet::{SimDuration, Simulation};

    /// Tiny world: 2 DCs x (1 KLS + 1 FS), policy (k=2, n=4), 2 frags
    /// per FS. Node ids: kls0=0, fs0=1, kls1=2, fs1=3, driver=4.
    fn tiny_topo() -> Arc<Topology> {
        Topology::new(vec![
            (vec![NodeId::new(0)], vec![NodeId::new(1)]),
            (vec![NodeId::new(2)], vec![NodeId::new(3)]),
        ])
    }

    fn tiny_policy() -> Policy {
        Policy::new(2, 4, 2, 2)
    }

    fn ov() -> ObjectVersion {
        ObjectVersion::new(Key::from_u64(9), Timestamp::new(SimTime::from_micros(5), 0))
    }

    fn full_meta(value_len: usize) -> Arc<Metadata> {
        let mut meta = Metadata::new(tiny_policy(), DataCenterId::new(0), value_len);
        meta.add_dc_locations(
            DataCenterId::new(0),
            vec![
                Location {
                    fs: NodeId::new(1),
                    disk: 0,
                },
                Location {
                    fs: NodeId::new(1),
                    disk: 1,
                },
            ],
        );
        meta.add_dc_locations(
            DataCenterId::new(1),
            vec![
                Location {
                    fs: NodeId::new(3),
                    disk: 0,
                },
                Location {
                    fs: NodeId::new(3),
                    disk: 1,
                },
            ],
        );
        Arc::new(meta)
    }

    /// A driver that injects a fixed script of messages at start and
    /// records everything it receives.
    struct Driver {
        script: Vec<(NodeId, Message)>,
        received: Vec<(NodeId, &'static str)>,
    }
    impl Actor<Message> for Driver {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            for (to, msg) in self.script.drain(..) {
                ctx.send(to, msg);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Message>, from: NodeId, msg: Message) {
            self.received.push((from, simnet::Payload::kind(&msg)));
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Message>, _tag: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Builds the tiny world with the given convergence options and a
    /// driver script; returns the simulation and the node ids.
    fn tiny_world(
        opts: ConvergenceOptions,
        script: Vec<(NodeId, Message)>,
    ) -> (Simulation<Message>, NodeId, NodeId, NodeId) {
        let topo = tiny_topo();
        let mut sim = Simulation::new(7);
        sim.add_actor(Kls::new(topo.clone(), DataCenterId::new(0)));
        let fs0 = sim.add_actor(Fs::new(topo.clone(), DataCenterId::new(0), opts.clone()));
        sim.add_actor(Kls::new(topo.clone(), DataCenterId::new(1)));
        let fs1 = sim.add_actor(Fs::new(topo.clone(), DataCenterId::new(1), opts));
        let driver = sim.add_actor(Driver {
            script,
            received: Vec::new(),
        });
        (sim, fs0, fs1, driver)
    }

    fn frags(value_len: usize) -> Vec<Fragment> {
        let codec = Codec::new(2, 4).unwrap();
        codec.encode(&vec![0xEE; value_len])
    }

    #[test]
    fn store_fragment_is_acknowledged_and_tracked() {
        let meta = full_meta(100);
        let fs_node = NodeId::new(1);
        let (mut sim, fs0, _, driver) = tiny_world(
            ConvergenceOptions::all(),
            vec![(
                fs_node,
                Message::StoreFragment {
                    ov: ov(),
                    meta: meta.clone(),
                    fragment: frags(100)[0].clone(),
                },
            )],
        );
        sim.run_until_time(SimTime::from_micros(200_000));
        let fs: &Fs = sim.actor(fs0);
        assert_eq!(fs.known_versions().count(), 1);
        assert_eq!(fs.pending_versions().count(), 1, "convergence pending");
        assert!(!fs.verified(ov()), "second fragment still missing");
        let d: &Driver = sim.actor(driver);
        assert_eq!(d.received, vec![(fs_node, "StoreFragmentRep")]);
    }

    #[test]
    fn verified_requires_complete_meta_and_all_fragments() {
        let meta = full_meta(100);
        let f = frags(100);
        let fs_node = NodeId::new(1);
        let (mut sim, fs0, _, _) = tiny_world(
            ConvergenceOptions::all(),
            vec![
                (
                    fs_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: meta.clone(),
                        fragment: f[0].clone(),
                    },
                ),
                (
                    fs_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: meta.clone(),
                        fragment: f[1].clone(),
                    },
                ),
            ],
        );
        sim.run_until_time(SimTime::from_micros(200_000));
        let fs: &Fs = sim.actor(fs0);
        assert!(fs.verified(ov()), "both assigned fragments present");
        assert_eq!(fs.dc(), DataCenterId::new(0));
    }

    #[test]
    fn amr_indication_stops_convergence_and_completes_meta() {
        // Deliver a fragment with *partial* metadata, then an AMR
        // indication carrying the complete metadata: the FS must drop the
        // version from its convergence store and still answer converge
        // probes positively afterwards.
        let mut partial = Metadata::new(tiny_policy(), DataCenterId::new(0), 100);
        partial.add_dc_locations(
            DataCenterId::new(0),
            vec![
                Location {
                    fs: NodeId::new(1),
                    disk: 0,
                },
                Location {
                    fs: NodeId::new(1),
                    disk: 1,
                },
            ],
        );
        let partial = Arc::new(partial);
        let f = frags(100);
        let fs_node = NodeId::new(1);
        let (mut sim, fs0, _, _) = tiny_world(
            ConvergenceOptions::all(),
            vec![
                (
                    fs_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: partial.clone(),
                        fragment: f[0].clone(),
                    },
                ),
                (
                    fs_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: partial,
                        fragment: f[1].clone(),
                    },
                ),
                (
                    fs_node,
                    Message::AmrIndication {
                        ov: ov(),
                        meta: full_meta(100),
                    },
                ),
            ],
        );
        sim.run_until_time(SimTime::from_micros(200_000));
        let fs: &Fs = sim.actor(fs0);
        assert_eq!(fs.pending_versions().count(), 0);
        assert_eq!(fs.amr_versions().count(), 1);
        assert!(fs.verified(ov()), "indication completed the metadata");
        assert_eq!(fs.steps_run(), 0, "no convergence work was done");
    }

    #[test]
    fn converge_probe_on_unknown_version_adopts_it() {
        // Fig. 4 lines 17-18: an FS receiving converge for an unknown
        // version adopts the metadata with a ⊥ fragment and schedules
        // convergence work of its own (which will recover the fragment).
        let fs1_node = NodeId::new(3);
        let (mut sim, _, fs1, driver) = tiny_world(
            ConvergenceOptions::all(),
            vec![(
                fs1_node,
                Message::ConvergeFs {
                    ov: ov(),
                    meta: full_meta(100),
                    recovery_intent: false,
                },
            )],
        );
        sim.run_until_time(SimTime::from_micros(100_000));
        let fs: &Fs = sim.actor(fs1);
        assert_eq!(fs.known_versions().count(), 1);
        assert_eq!(fs.pending_versions().count(), 1);
        assert!(!fs.verified(ov()), "no fragments yet");
        let d: &Driver = sim.actor(driver);
        assert_eq!(d.received, vec![(fs1_node, "FSConvergeRep")]);
    }

    #[test]
    fn full_convergence_from_one_fs_to_amr() {
        // Only FS0 receives fragments + complete metadata; convergence
        // alone must propagate fragments to FS1 and metadata to both
        // KLSs, ending with the version AMR everywhere and no further
        // pending work. This is naïve convergence doing a real repair.
        let meta = full_meta(64);
        let f = frags(64);
        let fs0_node = NodeId::new(1);
        let mut opts = ConvergenceOptions::naive();
        opts.sibling_recovery = true; // exercise the recovery push path
        opts.schedule = RoundSchedule::Unsynchronized;
        let (mut sim, fs0, fs1, _) = tiny_world(
            opts,
            vec![
                (
                    fs0_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: meta.clone(),
                        fragment: f[0].clone(),
                    },
                ),
                (
                    fs0_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta,
                        fragment: f[1].clone(),
                    },
                ),
            ],
        );
        // Give convergence a few rounds.
        sim.run_until_time(SimTime::ZERO + SimDuration::from_secs(1200));
        let a: &Fs = sim.actor(fs0);
        let b: &Fs = sim.actor(fs1);
        assert!(a.verified(ov()));
        assert!(b.verified(ov()), "FS1's fragments were regenerated");
        assert_eq!(a.pending_versions().count(), 0);
        assert_eq!(b.pending_versions().count(), 0);
        assert!(b.recoveries_done() + a.recoveries_done() >= 1);
        let kls0: &Kls = sim.actor(NodeId::new(0));
        let kls1: &Kls = sim.actor(NodeId::new(2));
        assert!(kls0.has_complete_meta(ov()));
        assert!(kls1.has_complete_meta(ov()));
    }

    #[test]
    fn simultaneous_recoveries_resolve_by_server_id() {
        // Both FSs hold complete metadata but each misses one of its two
        // assigned fragments; with synchronized rounds both attempt
        // sibling fragment recovery at the same instant. §4.2's rule —
        // "an FS only backs off if its unique server id is lower than the
        // other sibling FS's unique id" — must leave exactly one of them
        // doing the work, and both end up whole.
        let meta = full_meta(64);
        let f = frags(64);
        let fs0_node = NodeId::new(1); // assigned fragments 0, 1
        let fs1_node = NodeId::new(3); // assigned fragments 2, 3
        let mut opts = ConvergenceOptions::all();
        opts.schedule = RoundSchedule::Synchronized;
        opts.put_amr_indication = false;
        opts.min_age = SimDuration::ZERO;
        let (mut sim, fs0, fs1, _) = tiny_world(
            opts,
            vec![
                (
                    fs0_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: meta.clone(),
                        fragment: f[0].clone(),
                    },
                ),
                (
                    fs1_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: meta.clone(),
                        fragment: f[2].clone(),
                    },
                ),
            ],
        );
        sim.run_until_time(SimTime::ZERO + SimDuration::from_secs(600));
        let a: &Fs = sim.actor(fs0);
        let b: &Fs = sim.actor(fs1);
        assert!(a.verified(ov()), "fs0 has fragments 0 and 1");
        assert!(b.verified(ov()), "fs1 has fragments 2 and 3");
        // Exactly one FS performed the recovery; the contention rule
        // favors the higher id (fs1).
        assert_eq!(a.recoveries_done(), 0, "lower id backed off");
        assert_eq!(b.recoveries_done(), 1, "higher id recovered for both");
        // And the amortization shows on the wire: the recovered sibling
        // fragment traveled via SiblingStoreReq.
        assert!(sim.metrics().kind("SiblingStoreReq").count >= 1);
    }

    #[test]
    fn retrieve_unknown_fragment_answers_bottom() {
        let fs_node = NodeId::new(1);
        let (mut sim, _, _, driver) = tiny_world(
            ConvergenceOptions::all(),
            vec![(
                fs_node,
                Message::RetrieveFrag {
                    op: 1,
                    ov: ov(),
                    fragment: 0,
                },
            )],
        );
        sim.run_until_time(SimTime::from_micros(100_000));
        let d: &Driver = sim.actor(driver);
        assert_eq!(d.received, vec![(fs_node, "RetrieveFragRep")]);
    }
}
