//! The Fragment Server (FS) and the convergence protocol.
//!
//! An FS stores erasure-coded fragments together with the metadata needed
//! to verify redundancy, and runs **convergence** (§3.4): in periodic
//! rounds, it performs a *convergence step* for every object version it
//! has not yet verified to be at maximum redundancy (AMR). A step does the
//! first applicable of:
//!
//! 1. **metadata repair** — if its metadata is incomplete, probe a KLS per
//!    missing data center (in a fixed order, §3.5) with
//!    [`Message::FsDecideLocs`];
//! 2. **fragment recovery** — if an assigned sibling fragment is missing,
//!    retrieve `k` fragments and regenerate it (optionally regenerating
//!    *all* missing sibling fragments on behalf of the siblings — the
//!    sibling-fragment-recovery optimization, §4.2);
//! 3. **verification** — otherwise probe every KLS and sibling FS with
//!    converge messages; if all verify, the version is AMR and is removed
//!    from the convergence store (optionally broadcasting an AMR
//!    indication to the siblings, §4.1).
//!
//! Steps for a version back off exponentially while they keep failing
//! (§3.5) and reset when new information arrives. Round scheduling,
//! indications and sibling recovery are all governed by
//! [`ConvergenceOptions`].

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use erasure::{Checksum, Codec, Fragment, FragmentIndex};
use simnet::{Actor, Context, NodeId, SimTime, TimerId};

use crate::convergence::{ConvergenceOptions, RoundSchedule};
use crate::messages::{Message, OpId};
use crate::metadata::Metadata;
use crate::topology::{DataCenterId, Topology};
use crate::types::ObjectVersion;

/// Timer tags (upper byte selects the kind, low bits carry an op id).
const TAG_ROUND: u64 = 1 << 56;
const TAG_RECOVERY_WAIT: u64 = 2 << 56;
const TAG_RECOVERY_TIMEOUT: u64 = 3 << 56;
const TAG_SCRUB: u64 = 4 << 56;
const TAG_MASK: u64 = 0xff << 56;

/// Timer tag a harness may schedule on an FS (via
/// [`Simulation::schedule_timer`](simnet::Simulation::schedule_timer)) to
/// wake its convergence loop after mutating state externally — e.g. after
/// [`Fs::destroy_disk`] or [`Fs::corrupt_fragment`].
pub const WAKE_TIMER_TAG: u64 = TAG_ROUND;

/// Stored fragments plus the metadata snapshot for one object version.
#[derive(Debug, Clone)]
pub struct FragEntry {
    /// Best-known metadata.
    pub meta: Metadata,
    /// The sibling fragments this server holds, by fragment index.
    pub fragments: BTreeMap<FragmentIndex, Fragment>,
    /// Content hash recorded when each fragment was durably stored; the
    /// scrubber and the read path verify against it to "detect disk
    /// corruption using hashes" (§3.1).
    pub checksums: BTreeMap<FragmentIndex, Checksum>,
}

/// Convergence bookkeeping for one not-yet-AMR object version.
#[derive(Debug)]
struct ConvWork {
    /// When this FS first learned of the version (drives `min_age` and
    /// `give_up_age`).
    created: SimTime,
    /// Unsuccessful steps so far (drives exponential backoff).
    attempts: u32,
    /// Next time a step may run.
    next_eligible: SimTime,
    /// KLSs that verified during the current step.
    kls_ok: BTreeSet<NodeId>,
    /// Sibling FSs that verified during the current step.
    fs_ok: BTreeSet<NodeId>,
    /// Whether a verification step is awaiting replies.
    step_open: bool,
    /// In-flight fragment recovery, if any.
    recovery: Option<Recovery>,
}

impl ConvWork {
    fn new(created: SimTime) -> Self {
        ConvWork {
            created,
            attempts: 0,
            next_eligible: created,
            kls_ok: BTreeSet::new(),
            fs_ok: BTreeSet::new(),
            step_open: false,
            recovery: None,
        }
    }
}

#[derive(Debug, PartialEq, Eq, Clone, Copy)]
enum RecoveryPhase {
    /// Sibling mode: waiting for need-reports from siblings.
    AwaitingReports,
    /// Fetching fragments.
    Fetching,
}

#[derive(Debug)]
struct Recovery {
    op: OpId,
    phase: RecoveryPhase,
    /// Sibling need-reports: fs → (has, missing).
    reports: BTreeMap<NodeId, (Vec<FragmentIndex>, Vec<FragmentIndex>)>,
    /// Fragments fetched so far.
    collected: BTreeMap<FragmentIndex, Fragment>,
    wait_timer: Option<TimerId>,
    timeout_timer: TimerId,
}

/// A fragment server actor.
pub struct Fs {
    topo: Arc<Topology>,
    my_dc: DataCenterId,
    opts: ConvergenceOptions,
    /// Own node id, captured at `on_start` (actors learn their id from the
    /// context).
    self_id: Option<NodeId>,
    storefrag: BTreeMap<ObjectVersion, FragEntry>,
    storemeta: BTreeMap<ObjectVersion, ConvWork>,
    /// Versions verified (or indicated) AMR (with when this FS settled
    /// them); no further convergence work.
    amr_done: BTreeMap<ObjectVersion, SimTime>,
    /// Versions abandoned after `give_up_age`.
    gave_up: BTreeSet<ObjectVersion>,
    round_scheduled: bool,
    next_op: OpId,
    /// Convergence steps executed (for tests and ablations).
    steps_run: u64,
    /// Recoveries completed locally (for tests and ablations).
    recoveries_done: u64,
    /// Corrupted fragments detected (by the scrubber or the read path).
    corruption_detected: u64,
    /// Codecs by `(k, n)`, built once per policy shape: constructing a
    /// codec runs a Gaussian elimination, far too costly per recovery.
    codecs: BTreeMap<(u8, u8), Codec>,
    /// Reusable fragment-list scratch for the recovery path.
    recover_scratch: Vec<Fragment>,
}

impl Fs {
    /// Creates the FS for data center `my_dc` with the given convergence
    /// configuration.
    pub fn new(topo: Arc<Topology>, my_dc: DataCenterId, opts: ConvergenceOptions) -> Self {
        Fs {
            topo,
            my_dc,
            opts,
            self_id: None,
            storefrag: BTreeMap::new(),
            storemeta: BTreeMap::new(),
            amr_done: BTreeMap::new(),
            gave_up: BTreeSet::new(),
            round_scheduled: false,
            next_op: 1,
            steps_run: 0,
            recoveries_done: 0,
            corruption_detected: 0,
            codecs: BTreeMap::new(),
            recover_scratch: Vec::new(),
        }
    }

    fn codec(&mut self, k: u8, n: u8) -> &Codec {
        self.codecs.entry((k, n)).or_insert_with(|| {
            Codec::new(usize::from(k), usize::from(n)).expect("policy validated at put time")
        })
    }

    // ---- state inspection ----

    /// The data center this FS lives in.
    pub fn dc(&self) -> DataCenterId {
        self.my_dc
    }

    /// The stored entry for `ov`, if any.
    pub fn entry(&self, ov: ObjectVersion) -> Option<&FragEntry> {
        self.storefrag.get(&ov)
    }

    /// Whether this FS holds every fragment assigned to it by `ov`'s
    /// metadata and that metadata is complete (the per-FS half of the AMR
    /// condition; the paper's `verify(storefrag[ov])`).
    pub fn verified(&self, ov: ObjectVersion) -> bool {
        self.storefrag.get(&ov).is_some_and(|e| {
            e.meta.is_complete()
                && e.meta
                    .fragments_of(self.self_node())
                    .iter()
                    .all(|idx| e.fragments.contains_key(idx))
        })
    }

    /// Versions still being converged.
    pub fn pending_versions(&self) -> impl Iterator<Item = ObjectVersion> + '_ {
        self.storemeta.keys().copied()
    }

    /// Versions this FS considers AMR.
    pub fn amr_versions(&self) -> impl Iterator<Item = ObjectVersion> + '_ {
        self.amr_done.keys().copied()
    }

    /// When this FS settled `ov` as AMR (verified it, or received an AMR
    /// indication), if it has.
    pub fn amr_settled_at(&self, ov: ObjectVersion) -> Option<SimTime> {
        self.amr_done.get(&ov).copied()
    }

    /// Every version present in the fragment store.
    pub fn known_versions(&self) -> impl Iterator<Item = ObjectVersion> + '_ {
        self.storefrag.keys().copied()
    }

    /// Versions abandoned after exceeding the give-up age.
    pub fn gave_up_versions(&self) -> impl Iterator<Item = ObjectVersion> + '_ {
        self.gave_up.iter().copied()
    }

    /// Total convergence steps this FS has executed.
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }

    /// Fragment recoveries this FS completed.
    pub fn recoveries_done(&self) -> u64 {
        self.recoveries_done
    }

    /// Corrupted fragments detected so far (scrubber + read path).
    pub fn corruption_detected(&self) -> u64 {
        self.corruption_detected
    }

    // ---- fault injection (harness API) ----

    /// Silently corrupts a stored fragment by flipping one payload byte
    /// without touching its recorded checksum — simulating bit rot on
    /// disk. Returns `false` if the fragment is not stored (or empty).
    /// Wake the FS with [`WAKE_TIMER_TAG`] afterwards if you want the
    /// scrubber disabled and detection to happen on the next read
    /// instead.
    pub fn corrupt_fragment(&mut self, ov: ObjectVersion, idx: FragmentIndex) -> bool {
        let Some(entry) = self.storefrag.get_mut(&ov) else {
            return false;
        };
        let Some(frag) = entry.fragments.get_mut(&idx) else {
            return false;
        };
        if frag.is_empty() {
            return false;
        }
        let mut bytes = frag.data().to_vec();
        bytes[0] ^= 0xFF;
        *frag = Fragment::new(idx, bytes);
        true
    }

    /// Destroys one disk: every fragment this server stores on `disk`
    /// (per each version's metadata) is dropped, and the affected
    /// versions re-enter the convergence store so their fragments get
    /// rebuilt (§3.1's "rebuild destroyed disks"). Returns the number of
    /// fragments lost. Wake the FS with [`WAKE_TIMER_TAG`] afterwards.
    pub fn destroy_disk(&mut self, disk: u8, now: SimTime) -> usize {
        let me = match self.self_id {
            Some(id) => id,
            None => return 0, // never ran; stores nothing
        };
        let mut lost = 0;
        let versions: Vec<ObjectVersion> = self.storefrag.keys().copied().collect();
        for ov in versions {
            let doomed: Vec<FragmentIndex> = {
                let entry = &self.storefrag[&ov];
                entry
                    .meta
                    .assignments()
                    .filter(|(idx, loc)| {
                        loc.fs == me && loc.disk == disk && entry.fragments.contains_key(idx)
                    })
                    .map(|(idx, _)| idx)
                    .collect()
            };
            if doomed.is_empty() {
                continue;
            }
            let entry = self.storefrag.get_mut(&ov).expect("present");
            for idx in &doomed {
                entry.fragments.remove(idx);
                entry.checksums.remove(idx);
                lost += 1;
            }
            self.re_pend(ov, now);
        }
        lost
    }

    /// Re-enters a version into the convergence store (after corruption
    /// or disk loss), clearing any AMR/give-up status.
    fn re_pend(&mut self, ov: ObjectVersion, now: SimTime) {
        self.amr_done.remove(&ov);
        self.gave_up.remove(&ov);
        let work = self
            .storemeta
            .entry(ov)
            .or_insert_with(|| ConvWork::new(now));
        work.attempts = 0;
        work.next_eligible = now;
    }

    /// Verifies every stored fragment against its recorded checksum;
    /// corrupted fragments are dropped and their versions re-entered for
    /// convergence (which regenerates them from the siblings). Returns
    /// the number of corrupted fragments found.
    fn scrub(&mut self, ctx: &mut Context<'_, Message>) -> usize {
        let now = ctx.now();
        let mut found = 0;
        let versions: Vec<ObjectVersion> = self.storefrag.keys().copied().collect();
        for ov in versions {
            let bad: Vec<FragmentIndex> = {
                let entry = &self.storefrag[&ov];
                entry
                    .fragments
                    .iter()
                    .filter(|(idx, frag)| {
                        !entry
                            .checksums
                            .get(idx)
                            .is_some_and(|sum| sum.verify(frag.data()))
                    })
                    .map(|(&idx, _)| idx)
                    .collect()
            };
            if bad.is_empty() {
                continue;
            }
            let entry = self.storefrag.get_mut(&ov).expect("present");
            for idx in &bad {
                entry.fragments.remove(idx);
                entry.checksums.remove(idx);
                found += 1;
            }
            self.re_pend(ov, now);
        }
        self.corruption_detected += found as u64;
        if found > 0 {
            self.ensure_round(ctx);
        }
        found
    }

    // ---- internals ----

    /// This FS's own node id. Valid only while processing an event, so we
    /// thread it through from the context; stored here for inspection
    /// methods we keep a copy the first time an event runs.
    fn self_node(&self) -> NodeId {
        self.self_id.expect("FS has processed at least one event")
    }

    fn ensure_round(&mut self, ctx: &mut Context<'_, Message>) {
        if self.round_scheduled || self.storemeta.is_empty() {
            return;
        }
        let delay = match self.opts.schedule {
            RoundSchedule::Unsynchronized => {
                let lo = self.opts.round_min.as_micros();
                let hi = self.opts.round_max.as_micros();
                simnet::SimDuration::from_micros(rand::Rng::random_range(ctx.rng(), lo..=hi))
            }
            RoundSchedule::Synchronized => {
                // Fire at the next global multiple of the period.
                let period = self.opts.sync_period.as_micros();
                let now = ctx.now().as_micros();
                let next = (now / period + 1) * period;
                simnet::SimDuration::from_micros(next - now)
            }
        };
        ctx.schedule_timer(delay, TAG_ROUND);
        self.round_scheduled = true;
    }

    /// New information arrived for `ov`: reset its backoff so convergence
    /// reacts promptly, and make sure a round is coming.
    fn note_progress(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        if let Some(work) = self.storemeta.get_mut(&ov) {
            work.attempts = 0;
            work.next_eligible = ctx.now();
        }
        self.ensure_round(ctx);
    }

    /// Ensures both stores track `ov` (unless it is already AMR) and
    /// merges `meta` in. Returns `true` if the metadata gained locations.
    fn adopt(
        &mut self,
        ctx: &mut Context<'_, Message>,
        ov: ObjectVersion,
        meta: &Metadata,
    ) -> bool {
        let entry = self.storefrag.entry(ov).or_insert_with(|| FragEntry {
            meta: meta.clone(),
            fragments: BTreeMap::new(),
            checksums: BTreeMap::new(),
        });
        let changed = entry.meta.merge(meta);
        if !self.amr_done.contains_key(&ov) && !self.gave_up.contains(&ov) {
            let now = ctx.now();
            self.storemeta
                .entry(ov)
                .or_insert_with(|| ConvWork::new(now));
            if changed {
                self.note_progress(ctx, ov);
            } else {
                self.ensure_round(ctx);
            }
        }
        changed
    }

    /// Marks `ov` AMR: drop convergence work, optionally broadcast FS AMR
    /// indications.
    fn finalize_amr(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion, indicate: bool) {
        if let Some(work) = self.storemeta.remove(&ov) {
            if let Some(rec) = work.recovery {
                self.cancel_recovery_timers(ctx, &rec);
            }
        }
        self.amr_done.insert(ov, ctx.now());
        if indicate && self.opts.fs_amr_indication {
            let me = ctx.self_id();
            let meta = self.storefrag[&ov].meta.clone();
            for fs in meta.sibling_fss() {
                if fs != me {
                    ctx.send(
                        fs,
                        Message::AmrIndication {
                            ov,
                            meta: meta.clone(),
                        },
                    );
                }
            }
        }
    }

    fn cancel_recovery_timers(&self, ctx: &mut Context<'_, Message>, rec: &Recovery) {
        if let Some(t) = rec.wait_timer {
            ctx.cancel_timer(t);
        }
        ctx.cancel_timer(rec.timeout_timer);
    }

    /// Abandons an in-flight recovery (backoff already set by the step
    /// that started it).
    fn abort_recovery(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        if let Some(work) = self.storemeta.get_mut(&ov) {
            if let Some(rec) = work.recovery.take() {
                let rec_timers = rec;
                self.cancel_recovery_timers(ctx, &rec_timers);
            }
        }
    }

    /// Runs one convergence round (the paper's `start_round`).
    fn run_round(&mut self, ctx: &mut Context<'_, Message>) {
        let now = ctx.now();
        let versions: Vec<ObjectVersion> = self.storemeta.keys().copied().collect();
        for ov in versions {
            let work = &self.storemeta[&ov];
            if work.recovery.is_some() || now < work.next_eligible {
                continue;
            }
            if now.duration_since(work.created) < self.opts.min_age {
                continue;
            }
            if let Some(limit) = self.opts.give_up_age {
                if now.duration_since(work.created) > limit {
                    self.storemeta.remove(&ov);
                    self.gave_up.insert(ov);
                    continue;
                }
            }
            self.step(ctx, ov);
        }
        self.ensure_round(ctx);
    }

    /// One convergence step for one object version.
    fn step(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        self.steps_run += 1;
        let me = ctx.self_id();
        let entry = self
            .storefrag
            .get(&ov)
            .expect("storemeta implies storefrag");
        let meta = entry.meta.clone();
        let missing = self.missing_fragments(me, &ov);

        // Charge the backoff up front; any new information resets it.
        {
            let work = self.storemeta.get_mut(&ov).expect("checked by caller");
            work.attempts += 1;
            let delay = self.opts.backoff_delay(work.attempts);
            work.next_eligible = ctx.now() + delay;
            work.step_open = false;
        }

        if !meta.is_complete() {
            // 1. Metadata repair: probe one KLS per missing DC, rotating
            // through the DC's KLSs across attempts (§3.5 fixed order).
            let attempt = self.storemeta[&ov].attempts as usize;
            for dc in self.topo.dc_ids() {
                if meta.has_dc(dc) {
                    continue;
                }
                let klss = self.topo.klss_in(dc);
                let kls = klss[(attempt - 1) % klss.len()];
                ctx.send(
                    kls,
                    Message::FsDecideLocs {
                        ov,
                        meta: meta.clone(),
                    },
                );
            }
        } else if !missing.is_empty() {
            // 2. Fragment recovery.
            self.start_recovery(ctx, ov);
        } else {
            // 3. Verification: probe all KLSs and sibling FSs.
            let work = self.storemeta.get_mut(&ov).expect("present");
            work.kls_ok.clear();
            work.fs_ok.clear();
            work.step_open = true;
            let klss: Vec<NodeId> = self.topo.all_klss().collect();
            for kls in klss {
                ctx.send(
                    kls,
                    Message::ConvergeKls {
                        ov,
                        meta: meta.clone(),
                    },
                );
            }
            for fs in meta.sibling_fss() {
                if fs != me {
                    ctx.send(
                        fs,
                        Message::ConvergeFs {
                            ov,
                            meta: meta.clone(),
                            recovery_intent: false,
                        },
                    );
                }
            }
            self.check_amr(ctx, ov);
        }
    }

    /// Fragment indices assigned to `me` that are not in the store.
    fn missing_fragments(&self, me: NodeId, ov: &ObjectVersion) -> Vec<FragmentIndex> {
        let entry = &self.storefrag[ov];
        entry
            .meta
            .fragments_of(me)
            .into_iter()
            .filter(|idx| !entry.fragments.contains_key(idx))
            .collect()
    }

    fn start_recovery(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        let me = ctx.self_id();
        let op = self.next_op;
        self.next_op += 1;
        let meta = self.storefrag[&ov].meta.clone();
        let timeout_timer =
            ctx.schedule_timer(self.opts.recovery_timeout, TAG_RECOVERY_TIMEOUT | op);

        if self.opts.sibling_recovery {
            // Probe siblings with the recovery-intent flag; their replies
            // report what they need; we fetch after a short accumulation
            // window.
            for fs in meta.sibling_fss() {
                if fs != me {
                    ctx.send(
                        fs,
                        Message::ConvergeFs {
                            ov,
                            meta: meta.clone(),
                            recovery_intent: true,
                        },
                    );
                }
            }
            let wait_timer = ctx.schedule_timer(self.opts.recovery_wait, TAG_RECOVERY_WAIT | op);
            let work = self.storemeta.get_mut(&ov).expect("present");
            work.recovery = Some(Recovery {
                op,
                phase: RecoveryPhase::AwaitingReports,
                reports: BTreeMap::new(),
                collected: BTreeMap::new(),
                wait_timer: Some(wait_timer),
                timeout_timer,
            });
        } else {
            // Naïve recovery: a get of this object version — request every
            // remotely assigned fragment (§3.4 `recover_fragment`).
            for (idx, loc) in meta.assignments() {
                if loc.fs != me {
                    ctx.send(
                        loc.fs,
                        Message::RetrieveFrag {
                            op,
                            ov,
                            fragment: idx,
                        },
                    );
                }
            }
            let work = self.storemeta.get_mut(&ov).expect("present");
            work.recovery = Some(Recovery {
                op,
                phase: RecoveryPhase::Fetching,
                reports: BTreeMap::new(),
                collected: BTreeMap::new(),
                wait_timer: None,
                timeout_timer,
            });
        }
    }

    /// The recovery-wait window closed: pick fragments to fetch based on
    /// the siblings' reports.
    fn recovery_wait_elapsed(&mut self, ctx: &mut Context<'_, Message>, op: OpId) {
        let Some((ov, _)) = self.find_recovery(op) else {
            return;
        };
        let me = ctx.self_id();
        let local: BTreeSet<FragmentIndex> =
            self.storefrag[&ov].fragments.keys().copied().collect();
        let k = usize::from(self.storefrag[&ov].meta.policy().k);

        // Plan fetches: iterate reports in id order, taking fragments we
        // neither hold nor already planned, until k total are available.
        let mut plan: Vec<(NodeId, FragmentIndex)> = Vec::new();
        let mut planned: BTreeSet<FragmentIndex> = local.clone();
        {
            let work = self.storemeta.get_mut(&ov).expect("recovering");
            let rec = work.recovery.as_mut().expect("recovering");
            rec.phase = RecoveryPhase::Fetching;
            rec.wait_timer = None;
            for (&fs, (have, _)) in &rec.reports {
                for &idx in have {
                    if planned.len() >= k {
                        break;
                    }
                    if !planned.contains(&idx) {
                        planned.insert(idx);
                        plan.push((fs, idx));
                    }
                }
            }
        }
        if planned.len() < k {
            // Not enough fragments reachable right now; retry at a later
            // round (backoff was charged when the step started).
            self.abort_recovery(ctx, ov);
            return;
        }
        debug_assert!(!plan.iter().any(|(fs, _)| *fs == me));
        for (fs, idx) in plan {
            let op = self.storemeta[&ov]
                .recovery
                .as_ref()
                .expect("recovering")
                .op;
            ctx.send(
                fs,
                Message::RetrieveFrag {
                    op,
                    ov,
                    fragment: idx,
                },
            );
        }
        // If we already hold k fragments locally (possible when only our
        // *other* disk's fragment is missing), finish immediately.
        if local.len() >= k {
            self.try_finish_recovery(ctx, ov);
        }
    }

    fn find_recovery(&self, op: OpId) -> Option<(ObjectVersion, &Recovery)> {
        self.storemeta
            .iter()
            .find_map(|(ov, w)| w.recovery.as_ref().filter(|r| r.op == op).map(|r| (*ov, r)))
    }

    /// Completes the recovery if enough fragments are on hand: regenerate
    /// our missing fragments (and, in sibling mode, everything the
    /// siblings reported missing) and push the siblings' shares to them.
    fn try_finish_recovery(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        let me = ctx.self_id();
        let entry = &self.storefrag[&ov];
        let policy = *entry.meta.policy();
        let k = usize::from(policy.k);
        let value_len = entry.meta.value_len();

        let work = &self.storemeta[&ov];
        let rec = work.recovery.as_ref().expect("recovery in flight");
        let mut pool: BTreeMap<FragmentIndex, Fragment> = entry.fragments.clone();
        for (idx, frag) in &rec.collected {
            pool.entry(*idx).or_insert_with(|| frag.clone());
        }
        if pool.len() < k {
            return; // keep waiting for more RetrieveFragReply
        }

        let mut targets: Vec<FragmentIndex> = self.missing_fragments(me, &ov);
        let mut sibling_needs: Vec<(NodeId, Vec<FragmentIndex>)> = Vec::new();
        if self.opts.sibling_recovery {
            for (&fs, (_, missing)) in &rec.reports {
                if !missing.is_empty() {
                    sibling_needs.push((fs, missing.clone()));
                    targets.extend(missing.iter().copied());
                }
            }
        }
        targets.sort_unstable();
        targets.dedup();

        let sources: Vec<Fragment> = pool.values().cloned().collect();
        let mut recovered = std::mem::take(&mut self.recover_scratch);
        self.codec(policy.k, policy.n)
            .recover_into(&sources, &targets, value_len, &mut recovered)
            .expect("k fragments suffice");
        let by_idx: BTreeMap<FragmentIndex, Fragment> =
            recovered.drain(..).map(|f| (f.index(), f)).collect();
        self.recover_scratch = recovered;

        // Store our own missing fragments.
        let my_missing = self.missing_fragments(me, &ov);
        let meta = self.storefrag[&ov].meta.clone();
        {
            let entry = self.storefrag.get_mut(&ov).expect("present");
            for idx in my_missing {
                let frag = by_idx[&idx].clone();
                entry.checksums.insert(idx, Checksum::of(frag.data()));
                entry.fragments.insert(idx, frag);
            }
        }
        // Push the siblings' recovered fragments to them (§4.2).
        for (fs, needs) in sibling_needs {
            for idx in needs {
                ctx.send(
                    fs,
                    Message::SiblingStore {
                        ov,
                        meta: meta.clone(),
                        fragment: by_idx[&idx].clone(),
                    },
                );
            }
        }

        self.recoveries_done += 1;
        let work = self.storemeta.get_mut(&ov).expect("present");
        let rec = work.recovery.take().expect("recovery in flight");
        self.cancel_recovery_timers(ctx, &rec);
        self.note_progress(ctx, ov);
    }

    /// Records a verification-step reply and finalizes AMR when everyone
    /// verified (the paper's `is_amr`).
    fn check_amr(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        let me = ctx.self_id();
        let Some(work) = self.storemeta.get(&ov) else {
            return;
        };
        if !work.step_open {
            return;
        }
        let meta = &self.storefrag[&ov].meta;
        let all_kls: BTreeSet<NodeId> = self.topo.all_klss().collect();
        let siblings: BTreeSet<NodeId> = meta
            .sibling_fss()
            .into_iter()
            .filter(|&fs| fs != me)
            .collect();
        if work.kls_ok.is_superset(&all_kls)
            && work.fs_ok.is_superset(&siblings)
            && self.verified(ov)
        {
            self.finalize_amr(ctx, ov, true);
        }
    }

    /// Store a fragment (from a proxy put, or a sibling push).
    fn store_fragment(
        &mut self,
        ctx: &mut Context<'_, Message>,
        ov: ObjectVersion,
        meta: &Metadata,
        fragment: Fragment,
    ) {
        self.adopt(ctx, ov, meta);
        let entry = self.storefrag.get_mut(&ov).expect("adopted");
        let idx = fragment.index();
        if !entry.fragments.contains_key(&idx) {
            entry.checksums.insert(idx, Checksum::of(fragment.data()));
            entry.fragments.insert(idx, fragment);
        }
        self.note_progress(ctx, ov);
    }

    /// Self id captured from the first processed event (actors do not know
    /// their id before that).
    fn remember_self(&mut self, ctx: &Context<'_, Message>) {
        if self.self_id.is_none() {
            self.self_id = Some(ctx.self_id());
        }
    }
}

impl Actor<Message> for Fs {
    fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
        self.self_id = Some(ctx.self_id());
        if let Some(interval) = self.opts.scrub_interval {
            ctx.schedule_timer(interval, TAG_SCRUB);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: Message) {
        self.remember_self(ctx);
        let me = ctx.self_id();
        match msg {
            Message::StoreFragment { ov, meta, fragment } => {
                let idx = fragment.index();
                self.store_fragment(ctx, ov, &meta, fragment);
                ctx.send(from, Message::StoreFragmentReply { ov, fragment: idx });
            }

            Message::StoreMetadata { ov, meta } => {
                // Proxy location update for a fragment we already hold
                // (second wave of the put, §5.2).
                self.adopt(ctx, ov, &meta);
                let complete = self.storefrag[&ov].meta.is_complete();
                ctx.send(from, Message::StoreMetadataReply { ov, complete });
            }

            Message::SiblingStore { ov, meta, fragment } => {
                // Recovered fragment pushed by a sibling; unacknowledged.
                self.store_fragment(ctx, ov, &meta, fragment);
            }

            Message::LocsIndication { ov, meta } => {
                self.adopt(ctx, ov, &meta);
            }

            Message::AmrIndication { ov, meta } => {
                // Complete our metadata and stop all convergence work.
                self.adopt(ctx, ov, &meta);
                if let Some(work) = self.storemeta.get(&ov) {
                    if let Some(rec) = &work.recovery {
                        let op = rec.op;
                        self.recovery_cancelled(ctx, ov, op);
                    }
                }
                self.storemeta.remove(&ov);
                self.amr_done.insert(ov, ctx.now());
            }

            Message::ConvergeFs {
                ov,
                meta,
                recovery_intent,
            } => {
                self.adopt(ctx, ov, &meta);
                // Sibling-recovery contention: both of us are recovering —
                // the FS with the *lower* id backs off (§4.2).
                if recovery_intent
                    && self.opts.sibling_recovery
                    && me < from
                    && self
                        .storemeta
                        .get(&ov)
                        .is_some_and(|w| w.recovery.is_some())
                {
                    let op = self.storemeta[&ov].recovery.as_ref().expect("checked").op;
                    self.recovery_cancelled(ctx, ov, op);
                }
                let entry = &self.storefrag[&ov];
                let have: Vec<FragmentIndex> = entry.fragments.keys().copied().collect();
                let missing = if entry.meta.is_complete() {
                    self.missing_fragments(me, &ov)
                } else {
                    Vec::new()
                };
                let verified = self.verified(ov);
                let recovering = self
                    .storemeta
                    .get(&ov)
                    .is_some_and(|w| w.recovery.is_some());
                ctx.send(
                    from,
                    Message::ConvergeFsReply {
                        ov,
                        verified,
                        have,
                        missing,
                        recovering,
                    },
                );
            }

            Message::ConvergeFsReply {
                ov,
                verified,
                have,
                missing,
                recovering,
            } => {
                let Some(work) = self.storemeta.get_mut(&ov) else {
                    return;
                };
                // Verification bookkeeping.
                if verified {
                    work.fs_ok.insert(from);
                }
                // Recovery bookkeeping.
                if let Some(rec) = work.recovery.as_mut() {
                    if rec.phase == RecoveryPhase::AwaitingReports {
                        rec.reports.insert(from, (have, missing));
                    }
                    // Contention observed from the reply side: the sender
                    // (higher id) is also recovering — we back off if our
                    // id is lower.
                    if recovering && me < from {
                        let op = rec.op;
                        self.recovery_cancelled(ctx, ov, op);
                        return;
                    }
                }
                self.check_amr(ctx, ov);
            }

            Message::ConvergeKlsReply { ov, verified } => {
                if let Some(work) = self.storemeta.get_mut(&ov) {
                    if verified {
                        work.kls_ok.insert(from);
                    }
                }
                self.check_amr(ctx, ov);
            }

            Message::DecideLocsReply { ov, dc, locations } => {
                // Reply to our FsDecideLocs probe.
                if let Some(entry) = self.storefrag.get_mut(&ov) {
                    if !entry.meta.has_dc(dc) {
                        entry.meta.add_dc_locations(dc, locations);
                        self.note_progress(ctx, ov);
                    }
                }
            }

            Message::RetrieveFrag { op, ov, fragment } => {
                // Verify before serving: a fragment that fails its hash
                // is corrupt — drop it, answer ⊥, and let convergence
                // regenerate it (§3.1).
                let mut data = None;
                if let Some(entry) = self.storefrag.get(&ov) {
                    if let Some(frag) = entry.fragments.get(&fragment) {
                        let ok = entry
                            .checksums
                            .get(&fragment)
                            .is_some_and(|sum| sum.verify(frag.data()));
                        if ok {
                            data = Some(frag.clone());
                        }
                    }
                }
                if data.is_none()
                    && self
                        .storefrag
                        .get(&ov)
                        .is_some_and(|e| e.fragments.contains_key(&fragment))
                {
                    // Present but corrupt.
                    let now = ctx.now();
                    let entry = self.storefrag.get_mut(&ov).expect("present");
                    entry.fragments.remove(&fragment);
                    entry.checksums.remove(&fragment);
                    self.corruption_detected += 1;
                    self.re_pend(ov, now);
                    self.ensure_round(ctx);
                }
                ctx.send(
                    from,
                    Message::RetrieveFragReply {
                        op,
                        ov,
                        fragment,
                        data,
                    },
                );
            }

            Message::RetrieveFragReply { op, ov, data, .. } => {
                let Some(work) = self.storemeta.get_mut(&ov) else {
                    return;
                };
                let Some(rec) = work.recovery.as_mut() else {
                    return;
                };
                if rec.op != op || rec.phase != RecoveryPhase::Fetching {
                    return;
                }
                if let Some(frag) = data {
                    rec.collected.insert(frag.index(), frag);
                }
                self.try_finish_recovery(ctx, ov);
            }

            other => {
                debug_assert!(false, "FS received unexpected {:?}", other);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, tag: u64) {
        self.remember_self(ctx);
        let op = tag & !TAG_MASK;
        match tag & TAG_MASK {
            TAG_ROUND => {
                self.round_scheduled = false;
                self.run_round(ctx);
            }
            TAG_RECOVERY_WAIT => self.recovery_wait_elapsed(ctx, op),
            TAG_RECOVERY_TIMEOUT => {
                if let Some((ov, _)) = self.find_recovery(op) {
                    self.abort_recovery(ctx, ov);
                    self.ensure_round(ctx);
                }
            }
            TAG_SCRUB => {
                self.scrub(ctx);
                if let Some(interval) = self.opts.scrub_interval {
                    ctx.schedule_timer(interval, TAG_SCRUB);
                }
            }
            _ => debug_assert!(false, "unknown FS timer tag {tag:#x}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl Fs {
    /// Cancels the in-flight recovery identified by `op` for `ov`.
    fn recovery_cancelled(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion, op: OpId) {
        if let Some(work) = self.storemeta.get_mut(&ov) {
            if let Some(rec) = work.recovery.take() {
                debug_assert_eq!(rec.op, op);
                self.cancel_recovery_timers(ctx, &rec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kls::Kls;
    use crate::metadata::Location;
    use crate::policy::Policy;
    use crate::types::{Key, Timestamp};
    use simnet::{SimDuration, Simulation};

    /// Tiny world: 2 DCs x (1 KLS + 1 FS), policy (k=2, n=4), 2 frags
    /// per FS. Node ids: kls0=0, fs0=1, kls1=2, fs1=3, driver=4.
    fn tiny_topo() -> Arc<Topology> {
        Topology::new(vec![
            (vec![NodeId::new(0)], vec![NodeId::new(1)]),
            (vec![NodeId::new(2)], vec![NodeId::new(3)]),
        ])
    }

    fn tiny_policy() -> Policy {
        Policy::new(2, 4, 2, 2)
    }

    fn ov() -> ObjectVersion {
        ObjectVersion::new(Key::from_u64(9), Timestamp::new(SimTime::from_micros(5), 0))
    }

    fn full_meta(value_len: usize) -> Metadata {
        let mut meta = Metadata::new(tiny_policy(), DataCenterId::new(0), value_len);
        meta.add_dc_locations(
            DataCenterId::new(0),
            vec![
                Location {
                    fs: NodeId::new(1),
                    disk: 0,
                },
                Location {
                    fs: NodeId::new(1),
                    disk: 1,
                },
            ],
        );
        meta.add_dc_locations(
            DataCenterId::new(1),
            vec![
                Location {
                    fs: NodeId::new(3),
                    disk: 0,
                },
                Location {
                    fs: NodeId::new(3),
                    disk: 1,
                },
            ],
        );
        meta
    }

    /// A driver that injects a fixed script of messages at start and
    /// records everything it receives.
    struct Driver {
        script: Vec<(NodeId, Message)>,
        received: Vec<(NodeId, &'static str)>,
    }
    impl Actor<Message> for Driver {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            for (to, msg) in self.script.drain(..) {
                ctx.send(to, msg);
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Message>, from: NodeId, msg: Message) {
            self.received.push((from, simnet::Payload::kind(&msg)));
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Message>, _tag: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Builds the tiny world with the given convergence options and a
    /// driver script; returns the simulation and the node ids.
    fn tiny_world(
        opts: ConvergenceOptions,
        script: Vec<(NodeId, Message)>,
    ) -> (Simulation<Message>, NodeId, NodeId, NodeId) {
        let topo = tiny_topo();
        let mut sim = Simulation::new(7);
        sim.add_actor(Kls::new(topo.clone(), DataCenterId::new(0)));
        let fs0 = sim.add_actor(Fs::new(topo.clone(), DataCenterId::new(0), opts.clone()));
        sim.add_actor(Kls::new(topo.clone(), DataCenterId::new(1)));
        let fs1 = sim.add_actor(Fs::new(topo.clone(), DataCenterId::new(1), opts));
        let driver = sim.add_actor(Driver {
            script,
            received: Vec::new(),
        });
        (sim, fs0, fs1, driver)
    }

    fn frags(value_len: usize) -> Vec<Fragment> {
        let codec = Codec::new(2, 4).unwrap();
        codec.encode(&vec![0xEE; value_len])
    }

    #[test]
    fn store_fragment_is_acknowledged_and_tracked() {
        let meta = full_meta(100);
        let fs_node = NodeId::new(1);
        let (mut sim, fs0, _, driver) = tiny_world(
            ConvergenceOptions::all(),
            vec![(
                fs_node,
                Message::StoreFragment {
                    ov: ov(),
                    meta: meta.clone(),
                    fragment: frags(100)[0].clone(),
                },
            )],
        );
        sim.run_until_time(SimTime::from_micros(200_000));
        let fs: &Fs = sim.actor(fs0);
        assert_eq!(fs.known_versions().count(), 1);
        assert_eq!(fs.pending_versions().count(), 1, "convergence pending");
        assert!(!fs.verified(ov()), "second fragment still missing");
        let d: &Driver = sim.actor(driver);
        assert_eq!(d.received, vec![(fs_node, "StoreFragmentRep")]);
    }

    #[test]
    fn verified_requires_complete_meta_and_all_fragments() {
        let meta = full_meta(100);
        let f = frags(100);
        let fs_node = NodeId::new(1);
        let (mut sim, fs0, _, _) = tiny_world(
            ConvergenceOptions::all(),
            vec![
                (
                    fs_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: meta.clone(),
                        fragment: f[0].clone(),
                    },
                ),
                (
                    fs_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: meta.clone(),
                        fragment: f[1].clone(),
                    },
                ),
            ],
        );
        sim.run_until_time(SimTime::from_micros(200_000));
        let fs: &Fs = sim.actor(fs0);
        assert!(fs.verified(ov()), "both assigned fragments present");
        assert_eq!(fs.dc(), DataCenterId::new(0));
    }

    #[test]
    fn amr_indication_stops_convergence_and_completes_meta() {
        // Deliver a fragment with *partial* metadata, then an AMR
        // indication carrying the complete metadata: the FS must drop the
        // version from its convergence store and still answer converge
        // probes positively afterwards.
        let mut partial = Metadata::new(tiny_policy(), DataCenterId::new(0), 100);
        partial.add_dc_locations(
            DataCenterId::new(0),
            vec![
                Location {
                    fs: NodeId::new(1),
                    disk: 0,
                },
                Location {
                    fs: NodeId::new(1),
                    disk: 1,
                },
            ],
        );
        let f = frags(100);
        let fs_node = NodeId::new(1);
        let (mut sim, fs0, _, _) = tiny_world(
            ConvergenceOptions::all(),
            vec![
                (
                    fs_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: partial.clone(),
                        fragment: f[0].clone(),
                    },
                ),
                (
                    fs_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: partial,
                        fragment: f[1].clone(),
                    },
                ),
                (
                    fs_node,
                    Message::AmrIndication {
                        ov: ov(),
                        meta: full_meta(100),
                    },
                ),
            ],
        );
        sim.run_until_time(SimTime::from_micros(200_000));
        let fs: &Fs = sim.actor(fs0);
        assert_eq!(fs.pending_versions().count(), 0);
        assert_eq!(fs.amr_versions().count(), 1);
        assert!(fs.verified(ov()), "indication completed the metadata");
        assert_eq!(fs.steps_run(), 0, "no convergence work was done");
    }

    #[test]
    fn converge_probe_on_unknown_version_adopts_it() {
        // Fig. 4 lines 17-18: an FS receiving converge for an unknown
        // version adopts the metadata with a ⊥ fragment and schedules
        // convergence work of its own (which will recover the fragment).
        let fs1_node = NodeId::new(3);
        let (mut sim, _, fs1, driver) = tiny_world(
            ConvergenceOptions::all(),
            vec![(
                fs1_node,
                Message::ConvergeFs {
                    ov: ov(),
                    meta: full_meta(100),
                    recovery_intent: false,
                },
            )],
        );
        sim.run_until_time(SimTime::from_micros(100_000));
        let fs: &Fs = sim.actor(fs1);
        assert_eq!(fs.known_versions().count(), 1);
        assert_eq!(fs.pending_versions().count(), 1);
        assert!(!fs.verified(ov()), "no fragments yet");
        let d: &Driver = sim.actor(driver);
        assert_eq!(d.received, vec![(fs1_node, "FSConvergeRep")]);
    }

    #[test]
    fn full_convergence_from_one_fs_to_amr() {
        // Only FS0 receives fragments + complete metadata; convergence
        // alone must propagate fragments to FS1 and metadata to both
        // KLSs, ending with the version AMR everywhere and no further
        // pending work. This is naïve convergence doing a real repair.
        let meta = full_meta(64);
        let f = frags(64);
        let fs0_node = NodeId::new(1);
        let mut opts = ConvergenceOptions::naive();
        opts.sibling_recovery = true; // exercise the recovery push path
        opts.schedule = RoundSchedule::Unsynchronized;
        let (mut sim, fs0, fs1, _) = tiny_world(
            opts,
            vec![
                (
                    fs0_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: meta.clone(),
                        fragment: f[0].clone(),
                    },
                ),
                (
                    fs0_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta,
                        fragment: f[1].clone(),
                    },
                ),
            ],
        );
        // Give convergence a few rounds.
        sim.run_until_time(SimTime::ZERO + SimDuration::from_secs(1200));
        let a: &Fs = sim.actor(fs0);
        let b: &Fs = sim.actor(fs1);
        assert!(a.verified(ov()));
        assert!(b.verified(ov()), "FS1's fragments were regenerated");
        assert_eq!(a.pending_versions().count(), 0);
        assert_eq!(b.pending_versions().count(), 0);
        assert!(b.recoveries_done() + a.recoveries_done() >= 1);
        let kls0: &Kls = sim.actor(NodeId::new(0));
        let kls1: &Kls = sim.actor(NodeId::new(2));
        assert!(kls0.has_complete_meta(ov()));
        assert!(kls1.has_complete_meta(ov()));
    }

    #[test]
    fn simultaneous_recoveries_resolve_by_server_id() {
        // Both FSs hold complete metadata but each misses one of its two
        // assigned fragments; with synchronized rounds both attempt
        // sibling fragment recovery at the same instant. §4.2's rule —
        // "an FS only backs off if its unique server id is lower than the
        // other sibling FS's unique id" — must leave exactly one of them
        // doing the work, and both end up whole.
        let meta = full_meta(64);
        let f = frags(64);
        let fs0_node = NodeId::new(1); // assigned fragments 0, 1
        let fs1_node = NodeId::new(3); // assigned fragments 2, 3
        let mut opts = ConvergenceOptions::all();
        opts.schedule = RoundSchedule::Synchronized;
        opts.put_amr_indication = false;
        opts.min_age = SimDuration::ZERO;
        let (mut sim, fs0, fs1, _) = tiny_world(
            opts,
            vec![
                (
                    fs0_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: meta.clone(),
                        fragment: f[0].clone(),
                    },
                ),
                (
                    fs1_node,
                    Message::StoreFragment {
                        ov: ov(),
                        meta: meta.clone(),
                        fragment: f[2].clone(),
                    },
                ),
            ],
        );
        sim.run_until_time(SimTime::ZERO + SimDuration::from_secs(600));
        let a: &Fs = sim.actor(fs0);
        let b: &Fs = sim.actor(fs1);
        assert!(a.verified(ov()), "fs0 has fragments 0 and 1");
        assert!(b.verified(ov()), "fs1 has fragments 2 and 3");
        // Exactly one FS performed the recovery; the contention rule
        // favors the higher id (fs1).
        assert_eq!(a.recoveries_done(), 0, "lower id backed off");
        assert_eq!(b.recoveries_done(), 1, "higher id recovered for both");
        // And the amortization shows on the wire: the recovered sibling
        // fragment traveled via SiblingStoreReq.
        assert!(sim.metrics().kind("SiblingStoreReq").count >= 1);
    }

    #[test]
    fn retrieve_unknown_fragment_answers_bottom() {
        let fs_node = NodeId::new(1);
        let (mut sim, _, _, driver) = tiny_world(
            ConvergenceOptions::all(),
            vec![(
                fs_node,
                Message::RetrieveFrag {
                    op: 1,
                    ov: ov(),
                    fragment: 0,
                },
            )],
        );
        sim.run_until_time(SimTime::from_micros(100_000));
        let d: &Driver = sim.actor(driver);
        assert_eq!(d.received, vec![(fs_node, "RetrieveFragRep")]);
    }
}
