//! Object-version metadata: policy plus fragment locations.

use std::collections::BTreeMap;
use std::sync::Arc;

use erasure::FragmentIndex;
use simnet::NodeId;

use crate::policy::Policy;
use crate::topology::DataCenterId;
use crate::types::Timestamp;

/// A fragment location: a fragment server plus a disk on that server
/// (§3.5: "a location actually identifies both an FS and a disk on that FS
/// so that multiple sibling fragments may be collocated on the same FS").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Location {
    /// The fragment server.
    pub fs: NodeId,
    /// Disk index on that server.
    pub disk: u8,
}

/// The metadata a KLS stores per object version and a proxy assembles
/// during a put: the durability policy and the decided fragment locations.
///
/// Locations are decided **per data center** (a whole DC's worth at a
/// time, by the first KLS of that DC to answer) and are immutable once
/// decided — merging is a per-DC first-writer-wins join, which is
/// commutative, associative and idempotent because every KLS in a DC
/// computes the same deterministic placement for a given object version
/// (see [`crate::kls`]). The fragment index of a location is derived from
/// its DC's slot and its position within the DC's list, so all servers
/// agree on which fragment lives where.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Metadata {
    policy: Policy,
    home_dc: DataCenterId,
    value_len: u32,
    locs: BTreeMap<DataCenterId, Vec<Location>>,
    /// Delta-coded versions record the timestamp of the base version whose
    /// stripe the proxy XOR-deltaed against (same key, same length). `None`
    /// for fully encoded versions — the only shape the default protocol
    /// produces, which keeps its wire sizes (and digests) unchanged.
    delta_base: Option<Timestamp>,
}

impl Metadata {
    /// Creates metadata with no locations decided yet.
    pub fn new(policy: Policy, home_dc: DataCenterId, value_len: usize) -> Self {
        Metadata {
            policy,
            home_dc,
            value_len: u32::try_from(value_len).expect("values larger than 4 GiB are out of scope"),
            locs: BTreeMap::new(),
            delta_base: None,
        }
    }

    /// Tags this version as an XOR-delta against `base` (the previous
    /// version of the same key, same value length). Fragment servers use
    /// the tag to pick the resolution base for incoming windowed fragments.
    pub fn set_delta_base(&mut self, base: Timestamp) {
        self.delta_base = Some(base);
    }

    /// The base version this metadata's fragments are deltas against, if
    /// the version was delta-coded.
    pub fn delta_base(&self) -> Option<Timestamp> {
        self.delta_base
    }

    /// The durability policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The home data center (slot 0; holds the data fragments).
    pub fn home_dc(&self) -> DataCenterId {
        self.home_dc
    }

    /// Original value length in bytes (needed to size fragments for
    /// decode and recovery).
    pub fn value_len(&self) -> usize {
        self.value_len as usize
    }

    /// Adds the decided locations for one data center. Returns `true` if
    /// this DC had no locations yet (first writer wins; a second,
    /// identical decision is a no-op and a conflicting one is ignored).
    ///
    /// # Panics
    ///
    /// Panics if the list length differs from the policy's per-DC count.
    pub fn add_dc_locations(&mut self, dc: DataCenterId, locations: Vec<Location>) -> bool {
        assert_eq!(
            locations.len(),
            self.policy.frags_per_dc as usize,
            "a DC decision must cover the full per-DC fragment count"
        );
        if self.locs.contains_key(&dc) {
            return false;
        }
        self.locs.insert(dc, locations);
        true
    }

    /// Merges locations from another metadata for the same object version.
    /// Returns `true` if anything was learned.
    pub fn merge(&mut self, other: &Metadata) -> bool {
        let mut changed = false;
        for (dc, locs) in &other.locs {
            if !self.locs.contains_key(dc) {
                self.locs.insert(*dc, locs.clone());
                changed = true;
            }
        }
        // Repair a placeholder value length (defensive: all senders carry
        // real metadata, but a server that first learned of a version
        // through a bare location decision would otherwise poison fragment
        // sizing for recovery).
        if self.value_len == 0 && other.value_len != 0 {
            self.value_len = other.value_len;
            changed = true;
        }
        // The delta-base tag is set once by the originating proxy, so every
        // copy that carries one agrees; learn it from whichever replica has
        // it first.
        if self.delta_base.is_none() && other.delta_base.is_some() {
            self.delta_base = other.delta_base;
            changed = true;
        }
        changed
    }

    /// Whether [`merge`](Self::merge) with `other` would learn anything —
    /// the same per-DC first-writer-wins test, without mutating. Lets the
    /// shared-metadata path skip the copy-on-write a no-op
    /// [`merge_shared`] would otherwise force.
    pub fn would_learn_from(&self, other: &Metadata) -> bool {
        other.locs.keys().any(|dc| !self.locs.contains_key(dc))
            || (self.value_len == 0 && other.value_len != 0)
            || (self.delta_base.is_none() && other.delta_base.is_some())
    }

    /// Merges `src` into the shared handle `dst`, copying-on-write only
    /// when something is actually learned. Returns `true` if `dst`
    /// changed. Equivalent to `dst.merge(src)` on owned metadata; the
    /// `Arc::ptr_eq` fast path skips even the field comparisons when both
    /// handles are the same snapshot (the common case once a version
    /// settles).
    // lint:hot
    pub fn merge_shared(dst: &mut Arc<Metadata>, src: &Arc<Metadata>) -> bool {
        if Arc::ptr_eq(dst, src) || !dst.would_learn_from(src) {
            return false;
        }
        Arc::make_mut(dst).merge(src)
    }

    /// Whether the proxy/FS knows locations for `dc` already (the paper's
    /// `useful_locs` test: locations are useful iff they are the first for
    /// their data center).
    pub fn has_dc(&self, dc: DataCenterId) -> bool {
        self.locs.contains_key(&dc)
    }

    /// The decided locations for `dc`, if any, in fragment order.
    pub fn dc_locations(&self, dc: DataCenterId) -> Option<&[Location]> {
        self.locs.get(&dc).map(Vec::as_slice)
    }

    /// Data centers with decided locations.
    pub fn decided_dcs(&self) -> impl Iterator<Item = DataCenterId> + '_ {
        self.locs.keys().copied()
    }

    /// `verify(meta)` from the paper: the metadata is complete when every
    /// data center required by the policy has decided locations.
    pub fn is_complete(&self) -> bool {
        self.locs.len() == self.policy.data_centers() as usize
    }

    /// Iterates over `(fragment index, location)` for every decided
    /// location. Fragment indices follow the DC slot layout: the home DC
    /// covers indices `0..frags_per_dc` (data fragments first), the next
    /// slot the following block, and so on.
    pub fn assignments(&self) -> impl Iterator<Item = (FragmentIndex, Location)> + '_ {
        self.locs.iter().flat_map(move |(dc, locs)| {
            let base = dc.slot(self.home_dc) * self.policy.frags_per_dc;
            locs.iter()
                .enumerate()
                .map(move |(i, &loc)| (base + i as FragmentIndex, loc))
        })
    }

    /// The data center hosting fragment index `idx` under this layout.
    pub fn dc_of_fragment(&self, idx: FragmentIndex) -> DataCenterId {
        let slot = idx / self.policy.frags_per_dc;
        DataCenterId::from_slot(slot, self.home_dc)
    }

    /// The fragment indices assigned to fragment server `fs`.
    pub fn fragments_of(&self, fs: NodeId) -> Vec<FragmentIndex> {
        self.assigned_to(fs).collect()
    }

    /// Iterates the fragment indices assigned to fragment server `fs`
    /// without allocating (the hot-path form of
    /// [`fragments_of`](Self::fragments_of)).
    pub fn assigned_to(&self, fs: NodeId) -> impl Iterator<Item = FragmentIndex> + '_ {
        self.assignments()
            .filter(move |(_, loc)| loc.fs == fs)
            .map(|(idx, _)| idx)
    }

    /// The distinct sibling fragment servers, in id order.
    pub fn sibling_fss(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.assignments().map(|(_, loc)| loc.fs).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total decided locations (equals `n` when complete).
    pub fn location_count(&self) -> usize {
        self.locs.values().map(Vec::len).sum()
    }

    /// Modeled wire size of this metadata when embedded in a message.
    pub fn wire_size(&self) -> usize {
        // policy(5) + home dc(1) + value_len(4) + per location (node 4 +
        // disk 1 + dc tag amortized 1); delta-coded versions also carry the
        // base timestamp (8 + 1 tag).
        10 + 6 * self.location_count() + if self.delta_base.is_some() { 9 } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(i: u8) -> DataCenterId {
        DataCenterId::new(i)
    }

    fn fs(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Six locations over three FSs, two fragments each.
    fn six_locs(first_fs: u32) -> Vec<Location> {
        (0..6)
            .map(|i| Location {
                fs: fs(first_fs + i / 2),
                disk: (i % 2) as u8,
            })
            .collect()
    }

    fn meta_with_both_dcs() -> Metadata {
        let mut m = Metadata::new(Policy::paper_default(), dc(0), 100 * 1024);
        assert!(m.add_dc_locations(dc(0), six_locs(10)));
        assert!(m.add_dc_locations(dc(1), six_locs(20)));
        m
    }

    #[test]
    fn completeness_tracks_decided_dcs() {
        let mut m = Metadata::new(Policy::paper_default(), dc(0), 1);
        assert!(!m.is_complete());
        m.add_dc_locations(dc(0), six_locs(10));
        assert!(!m.is_complete());
        assert!(m.has_dc(dc(0)));
        assert!(!m.has_dc(dc(1)));
        m.add_dc_locations(dc(1), six_locs(20));
        assert!(m.is_complete());
        assert_eq!(m.location_count(), 12);
    }

    #[test]
    fn first_writer_wins_per_dc() {
        let mut m = Metadata::new(Policy::paper_default(), dc(0), 1);
        assert!(m.add_dc_locations(dc(0), six_locs(10)));
        assert!(!m.add_dc_locations(dc(0), six_locs(50)), "second ignored");
        assert_eq!(m.dc_locations(dc(0)).unwrap()[0].fs, fs(10));
    }

    #[test]
    fn merge_is_idempotent_and_learns_missing_dcs() {
        let full = meta_with_both_dcs();
        let mut partial = Metadata::new(Policy::paper_default(), dc(0), 100 * 1024);
        partial.add_dc_locations(dc(0), six_locs(10));
        assert!(partial.merge(&full), "learns DC1");
        assert!(partial.is_complete());
        assert!(!partial.merge(&full), "second merge is a no-op");
        assert_eq!(partial, full);
    }

    #[test]
    fn merge_is_commutative_on_disjoint_dcs() {
        let mut a = Metadata::new(Policy::paper_default(), dc(0), 7);
        a.add_dc_locations(dc(0), six_locs(10));
        let mut b = Metadata::new(Policy::paper_default(), dc(0), 7);
        b.add_dc_locations(dc(1), six_locs(20));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn fragment_assignment_layout() {
        let m = meta_with_both_dcs();
        let assigns: Vec<_> = m.assignments().collect();
        assert_eq!(assigns.len(), 12);
        // Home DC (dc0) covers fragments 0..6; dc1 covers 6..12.
        assert_eq!(
            assigns[0],
            (
                0,
                Location {
                    fs: fs(10),
                    disk: 0
                }
            )
        );
        assert_eq!(assigns[5].0, 5);
        assert_eq!(
            assigns[6],
            (
                6,
                Location {
                    fs: fs(20),
                    disk: 0
                }
            )
        );
        assert_eq!(assigns[11].0, 11);
    }

    #[test]
    fn home_dc_slot_flips_when_home_is_dc1() {
        let mut m = Metadata::new(Policy::paper_default(), dc(1), 1);
        m.add_dc_locations(dc(0), six_locs(10));
        m.add_dc_locations(dc(1), six_locs(20));
        // dc1 is home -> slot 0 -> fragments 0..6 live on fs 20..22.
        assert_eq!(m.fragments_of(fs(20)), vec![0, 1]);
        assert_eq!(m.fragments_of(fs(10)), vec![6, 7]);
    }

    #[test]
    fn fragments_of_and_siblings() {
        let m = meta_with_both_dcs();
        assert_eq!(m.fragments_of(fs(11)), vec![2, 3]);
        assert_eq!(m.fragments_of(fs(99)), Vec::<u8>::new());
        assert_eq!(
            m.sibling_fss(),
            vec![fs(10), fs(11), fs(12), fs(20), fs(21), fs(22)]
        );
    }

    #[test]
    fn dc_of_fragment_follows_slot_layout() {
        let m = meta_with_both_dcs();
        for i in 0..6u8 {
            assert_eq!(m.dc_of_fragment(i), dc(0));
            assert_eq!(m.dc_of_fragment(6 + i), dc(1));
        }
        // With dc1 as home the mapping flips.
        let mut flipped = Metadata::new(Policy::paper_default(), dc(1), 1);
        flipped.add_dc_locations(dc(0), six_locs(10));
        flipped.add_dc_locations(dc(1), six_locs(20));
        assert_eq!(flipped.dc_of_fragment(0), dc(1));
        assert_eq!(flipped.dc_of_fragment(6), dc(0));
    }

    #[test]
    fn value_len_roundtrip() {
        let m = meta_with_both_dcs();
        assert_eq!(m.value_len(), 100 * 1024);
        assert_eq!(m.policy().k, 4);
        assert_eq!(m.home_dc(), dc(0));
    }

    #[test]
    fn merge_shared_copies_only_on_learning() {
        let full = Arc::new(meta_with_both_dcs());
        let mut partial_owned = Metadata::new(Policy::paper_default(), dc(0), 100 * 1024);
        partial_owned.add_dc_locations(dc(0), six_locs(10));
        let mut dst = Arc::new(partial_owned);
        // A second handle forces `Arc::make_mut` to actually copy.
        let observer = Arc::clone(&dst);
        let before = Arc::as_ptr(&dst);

        assert!(dst.would_learn_from(&full));
        assert!(Metadata::merge_shared(&mut dst, &full), "learns DC1");
        assert_ne!(Arc::as_ptr(&dst), before, "copy-on-write happened");
        assert_eq!(*dst, *full);
        assert!(!observer.is_complete(), "the aliased handle is untouched");

        let settled = Arc::as_ptr(&dst);
        assert!(
            !Metadata::merge_shared(&mut dst, &full),
            "no-op learns nothing"
        );
        assert_eq!(Arc::as_ptr(&dst), settled, "no-op never copies");

        let mut alias = Arc::clone(&dst);
        assert!(
            !Metadata::merge_shared(&mut alias, &dst),
            "ptr_eq fast path"
        );
    }

    #[test]
    fn assigned_to_matches_fragments_of() {
        let m = meta_with_both_dcs();
        assert_eq!(
            m.assigned_to(fs(11)).collect::<Vec<_>>(),
            m.fragments_of(fs(11))
        );
        assert_eq!(m.assigned_to(fs(99)).count(), 0);
    }

    #[test]
    fn wire_size_grows_with_locations() {
        let empty = Metadata::new(Policy::paper_default(), dc(0), 1);
        let full = meta_with_both_dcs();
        assert!(full.wire_size() > empty.wire_size());
        assert_eq!(full.wire_size(), 10 + 6 * 12);
    }

    #[test]
    fn delta_base_tag_propagates_and_costs_wire_bytes() {
        let ts = Timestamp::MIN;
        let mut m = meta_with_both_dcs();
        assert_eq!(m.delta_base(), None);
        let plain_size = m.wire_size();
        m.set_delta_base(ts);
        assert_eq!(m.delta_base(), Some(ts));
        assert_eq!(m.wire_size(), plain_size + 9);

        // A replica without the tag learns it on merge.
        let mut untagged = meta_with_both_dcs();
        assert!(untagged.would_learn_from(&m));
        assert!(untagged.merge(&m));
        assert_eq!(untagged.delta_base(), Some(ts));
        assert!(!untagged.merge(&m), "second merge is a no-op");
    }

    #[test]
    #[should_panic(expected = "full per-DC fragment count")]
    fn short_dc_decision_panics() {
        let mut m = Metadata::new(Policy::paper_default(), dc(0), 1);
        m.add_dc_locations(dc(0), vec![Location { fs: fs(1), disk: 0 }]);
    }
}
