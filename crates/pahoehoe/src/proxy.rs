//! The proxy: executes put and get operations on behalf of a client.
//!
//! Implements the optimized two-round protocols of Figures 2 and 3 of the
//! paper:
//!
//! * **Put** — ask every KLS for locations; *as soon as* any data center's
//!   locations are decided (first KLS answer per DC wins), stream the
//!   current metadata to all KLSs and the DC's sibling fragments to its
//!   FSs; report success to the client once the policy's threshold of
//!   distinct fragments is durably stored; if *everything* is acknowledged,
//!   optionally broadcast Put-AMR indications (§4.1).
//! * **Get** — ask every KLS for all versions-with-metadata; start
//!   retrieving the newest version as soon as the first KLS answers;
//!   decode once any `k` sibling fragments arrive; fall back to an earlier
//!   version only when safe (`can_try_earlier`: some KLS lacked complete
//!   metadata for the current version, or some FS answered ⊥ — either
//!   proves the version is not AMR); abort on timeout.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use bytes::Bytes;
use erasure::{Codec, Fragment, FragmentIndex};
use simnet::{Actor, Context, NodeId, SimDuration, TimerId};

use crate::messages::{
    Message, OpId, EV_DEGRADED_READS, EV_DELTAS_ENCODED, EV_DELTA_BYTES_SAVED, EV_DELTA_FALLBACKS,
    EV_DELTA_FRAG_BYTES, EV_FULL_FRAG_BYTES, EV_STRIPE_CACHE_HITS, EV_STRIPE_CACHE_MISSES,
};
use crate::metadata::Metadata;
use crate::protocol::{FragMask, ProtocolMode};
use crate::topology::{DataCenterId, Topology};
use crate::types::{Key, ObjectVersion, Timestamp};
use erasure::DELTA_WINDOW_BYTES;

const TAG_PUT: u64 = 1 << 56;
const TAG_GET: u64 = 2 << 56;
const TAG_GET_ATTEMPT: u64 = 3 << 56;
const TAG_MASK: u64 = 0xff << 56;

/// Stripe-cache capacity: how many keys' last fully-acked stripes a proxy
/// retains as delta bases. Small and deterministic — like the decode
/// matrix inversion cache — so memory stays bounded per proxy.
const STRIPE_CACHE_CAP: usize = 32;

/// Maximum consecutive delta generations for one key before the proxy
/// forces a full encode. Bounds the version chain an FS-side reader of the
/// metadata graph can ever observe (§8.8) and re-anchors the cache with
/// dense bytes at a fixed cadence.
pub const MAX_DELTA_CHAIN: u8 = 4;

/// The last fully-acked stripe of one key, retained as a delta base.
struct CachedStripe {
    /// The acked value bytes (shared handle; never copied on insert).
    value: Bytes,
    /// The acked version's timestamp — the `delta_base` tag of a
    /// successor delta put.
    ts: Timestamp,
    /// The acked version's complete metadata (delta puts reuse its
    /// locations verbatim: delta fragments must land index-for-index on
    /// the base version's servers).
    meta: Arc<Metadata>,
    /// Consecutive delta generations behind this stripe (0 = full encode).
    chain: u8,
    /// Insertion order, for deterministic FIFO eviction.
    tick: u64,
}

/// Proxy tunables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyConfig {
    /// Give up collecting put acknowledgments after this long; if the
    /// success threshold was not reached by then, the client gets the
    /// paper's "unknown" (failure) answer.
    pub put_timeout: SimDuration,
    /// Abort a get after this long.
    pub get_timeout: SimDuration,
    /// Per-version patience during a get: after this long without
    /// decoding, the proxy stops waiting for stragglers and — only if it
    /// holds proof the version is not AMR — falls back to an earlier
    /// version (otherwise the get aborts at `get_timeout`).
    pub get_attempt_timeout: SimDuration,
    /// Versions per timestamp-retrieval page (§3.5: the proxy
    /// "iteratively retrieves timestamps … instead of retrieving
    /// information about all object versions at once").
    pub ts_page_size: u16,
    /// Offset added to the simulation clock when minting timestamps,
    /// modeling the "loosely synchronized" NTP clock of §3.1.
    pub clock_skew: SimDuration,
    /// Whether to broadcast AMR indications after fully acknowledged puts
    /// (the Put-AMR optimization; mirrors
    /// [`ConvergenceOptions::put_amr_indication`](crate::ConvergenceOptions)).
    pub put_amr_indication: bool,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            put_timeout: SimDuration::from_secs(3),
            get_timeout: SimDuration::from_secs(5),
            get_attempt_timeout: SimDuration::from_secs(1),
            ts_page_size: 8,
            clock_skew: SimDuration::ZERO,
            put_amr_indication: true,
        }
    }
}

/// State of one in-flight put.
struct PutOp {
    client: NodeId,
    client_op: OpId,
    meta: Arc<Metadata>,
    fragments: Vec<Fragment>,
    /// The client's value (shared handle), retained so a fully-acked put
    /// can seed the stripe cache in delta mode.
    value: Bytes,
    /// Consecutive delta generations this put extends (0 = full encode).
    chain: u8,
    /// Whether this put shipped windowed delta fragments.
    is_delta: bool,
    /// KLSs that acknowledged *complete* metadata.
    kls_complete: BTreeSet<NodeId>,
    /// `(fs, fragment)` pairs durably acknowledged (maintained in
    /// reference mode only; the optimized path tracks the same facts in
    /// `acked`).
    frag_acks: BTreeSet<(NodeId, FragmentIndex)>,
    /// Distinct fragment indices durably stored (reference mode only).
    distinct_frags: BTreeSet<FragmentIndex>,
    /// Distinct fragment indices durably stored, as a 256-bit mask
    /// (fragments are only ever stored by — and acknowledged from — the
    /// FS they are assigned to, so the index alone identifies the ack).
    acked: FragMask,
    replied: bool,
    timer: TimerId,
}

/// What one KLS has told us during a get (timestamps arrive in
/// newest-first pages, §3.5).
#[derive(Default)]
struct KlsView {
    /// Timestamps this KLS has reported so far.
    reported: BTreeSet<Timestamp>,
    /// Oldest timestamp reported (pagination cursor).
    oldest: Option<Timestamp>,
    /// The KLS said no older versions remain.
    exhausted: bool,
    /// A page request is in flight.
    awaiting: bool,
}

impl KlsView {
    /// Pages are newest-first and contiguous, so a version newer than the
    /// oldest reported timestamp that this KLS did *not* report is
    /// provably absent from it — evidence the version is not AMR.
    fn provably_missing(&self, ts: Timestamp) -> bool {
        if self.reported.contains(&ts) {
            return false;
        }
        self.exhausted || self.oldest.is_some_and(|o| ts > o)
    }
}

/// State of one in-flight get.
struct GetOp {
    client: NodeId,
    key: Key,
    /// Versions not yet attempted.
    untried: BTreeSet<Timestamp>,
    /// Versions already attempted (pages may re-deliver them).
    tried: BTreeSet<Timestamp>,
    /// Merged per-version metadata from KLS answers.
    kls_meta: BTreeMap<Timestamp, Arc<Metadata>>,
    /// Versions some KLS reported with *incomplete* metadata (non-AMR
    /// evidence).
    kls_incomplete: BTreeSet<Timestamp>,
    /// Per-KLS pagination state.
    views: BTreeMap<NodeId, KlsView>,
    current: Option<GetAttempt>,
    timer: TimerId,
}

struct GetAttempt {
    ts: Timestamp,
    meta: Arc<Metadata>,
    fragments: BTreeMap<FragmentIndex, Fragment>,
    /// Whether any FS answered ⊥ for this version.
    saw_bottom: bool,
    /// Fragment requests sent.
    requested: usize,
    /// Replies received (fragments and ⊥ alike).
    responses: usize,
    /// Straggler patience; after it fires the attempt no longer waits.
    timer: TimerId,
    timed_out: bool,
}

/// A proxy server actor.
pub struct Proxy {
    topo: Arc<Topology>,
    my_dc: DataCenterId,
    /// Unique proxy identifier, the timestamp tie-breaker.
    uid: u32,
    cfg: ProxyConfig,
    /// Cost model for the protocol hot path (§8.6), captured at
    /// construction so concurrent simulations cannot race on the
    /// process-global switch.
    mode: ProtocolMode,
    /// Cached `topo.all_klss().count()` for the full-ack check.
    total_klss: usize,
    puts: BTreeMap<ObjectVersion, PutOp>,
    /// Timer-tag → object version for put timeouts.
    put_seq: BTreeMap<u64, ObjectVersion>,
    next_seq: u64,
    gets: BTreeMap<OpId, GetOp>,
    codecs: BTreeMap<(u8, u8), Codec>,
    /// Client operations already accepted, for idempotence under the
    /// duplicating channel of §3.1 (a duplicated `ClientPut` must not
    /// spawn a second put).
    seen_client_ops: BTreeSet<(NodeId, OpId)>,
    /// Completed puts for which the proxy verified full redundancy (used
    /// by tests; equals the number of Put-AMR indications broadcast when
    /// the optimization is on).
    puts_fully_acked: u64,
    /// Reusable scratch for the get decode path, so steady-state gets do
    /// not allocate a fragment list and a value buffer per decode.
    frag_scratch: Vec<Fragment>,
    decode_scratch: Vec<u8>,
    /// Last fully-acked stripe per key, the delta-coding base store
    /// (bounded FIFO; only populated in delta mode).
    stripe_cache: BTreeMap<Key, CachedStripe>,
    /// Monotone insertion counter for stripe-cache FIFO eviction.
    stripe_tick: u64,
}

impl Proxy {
    /// Creates a proxy in `my_dc` with unique id `uid`, using the
    /// process-global [`ProtocolMode`].
    pub fn new(topo: Arc<Topology>, my_dc: DataCenterId, uid: u32, cfg: ProxyConfig) -> Self {
        Self::with_mode(topo, my_dc, uid, cfg, ProtocolMode::current())
    }

    /// Creates a proxy with an explicit [`ProtocolMode`].
    pub fn with_mode(
        topo: Arc<Topology>,
        my_dc: DataCenterId,
        uid: u32,
        cfg: ProxyConfig,
        mode: ProtocolMode,
    ) -> Self {
        let total_klss = topo.all_klss().count();
        Proxy {
            topo,
            my_dc,
            uid,
            cfg,
            mode,
            total_klss,
            puts: BTreeMap::new(),
            put_seq: BTreeMap::new(),
            next_seq: 0,
            gets: BTreeMap::new(),
            codecs: BTreeMap::new(),
            seen_client_ops: BTreeSet::new(),
            puts_fully_acked: 0,
            frag_scratch: Vec::new(),
            decode_scratch: Vec::new(),
            stripe_cache: BTreeMap::new(),
            stripe_tick: 0,
        }
    }

    /// Puts this proxy verified as fully redundant.
    pub fn puts_fully_acked(&self) -> u64 {
        self.puts_fully_acked
    }

    fn codec(&mut self, k: u8, n: u8) -> &Codec {
        self.codecs.entry((k, n)).or_insert_with(|| {
            // lint:allow(panic-path): (k, n) validated against MAX_FRAGMENTS at put accept
            Codec::new(usize::from(k), usize::from(n)).expect("policy validated")
        })
    }

    /// The in-flight put for `ov`. Callers hold an `ov` they looked up in
    /// `self.puts` earlier on the same dispatch path, so absence is a
    /// protocol bug worth a loud failure.
    fn put_op(&self, ov: ObjectVersion) -> &PutOp {
        // lint:allow(panic-path): ov taken from a live self.puts entry on this dispatch path
        self.puts.get(&ov).expect("in-flight put")
    }

    // ---- put ----

    /// Allocation-free stripe-cache lookup: the delta-coding hot path runs
    /// once per put, so it must not allocate on hit or miss.
    // lint:hot
    fn stripe_lookup(&self, key: Key) -> Option<&CachedStripe> {
        self.stripe_cache.get(&key)
    }

    /// Inserts `stripe` as the delta base for `key`, evicting the
    /// oldest-inserted entry when the cache is full (deterministic FIFO,
    /// mirroring the codec's decode-matrix inversion cache).
    fn stripe_insert(&mut self, key: Key, mut stripe: CachedStripe) {
        stripe.tick = self.stripe_tick;
        self.stripe_tick += 1;
        if self.stripe_cache.len() >= STRIPE_CACHE_CAP && !self.stripe_cache.contains_key(&key) {
            if let Some(victim) = self
                .stripe_cache
                .iter()
                .min_by_key(|(_, s)| s.tick)
                .map(|(&k, _)| k)
            {
                self.stripe_cache.remove(&victim);
            }
        }
        self.stripe_cache.insert(key, stripe);
    }

    /// Attempts to encode `value` as an XOR-delta stripe against the
    /// cached base version of `key`. On success, fills `fragments` with
    /// windowed delta fragments and returns the complete, delta-tagged
    /// metadata plus the new chain depth. Falls back (`None`) on cache
    /// miss, length or policy change, an exhausted chain budget, or a
    /// dirty window too wide to be worth shipping.
    fn try_delta_encode(
        &mut self,
        ctx: &mut Context<'_, Message>,
        key: Key,
        value: &Bytes,
        policy: crate::policy::Policy,
        fragments: &mut Vec<Fragment>,
    ) -> Option<(Arc<Metadata>, u8)> {
        let Some(cached) = self.stripe_lookup(key) else {
            ctx.record_event(EV_STRIPE_CACHE_MISSES, 1);
            return None;
        };
        ctx.record_event(EV_STRIPE_CACHE_HITS, 1);
        let usable = cached.value.len() == value.len()
            && !value.is_empty()
            && cached.chain < MAX_DELTA_CHAIN
            && *cached.meta.policy() == policy
            && cached.meta.is_complete();
        if !usable {
            ctx.record_event(EV_DELTA_FALLBACKS, 1);
            return None;
        }
        let (base_value, base_ts, base_chain, base_meta) = (
            cached.value.clone(),
            cached.ts,
            cached.chain,
            Arc::clone(&cached.meta),
        );
        let codec = self.codec(policy.k, policy.n);
        let flen = codec.fragment_len(value.len());
        let (_, w) = codec.delta_window(&base_value, value);
        // Worth-shipping gates: the window header must not eat the
        // savings, and a mostly-rewritten value encodes cheaper in full.
        if w + DELTA_WINDOW_BYTES >= flen || w * 4 > flen * 3 {
            ctx.record_event(EV_DELTA_FALLBACKS, 1);
            return None;
        }
        codec.encode_delta_into(&base_value, value, fragments);
        let mut tagged = Metadata::clone(&base_meta);
        tagged.set_delta_base(base_ts);
        ctx.record_event(EV_DELTAS_ENCODED, 1);
        let payload: u64 = fragments.iter().map(|f| f.wire_len() as u64).sum();
        ctx.record_event(EV_DELTA_FRAG_BYTES, payload);
        let full: u64 = (fragments.len() * flen) as u64;
        ctx.record_event(EV_DELTA_BYTES_SAVED, full.saturating_sub(payload));
        Some((Arc::new(tagged), base_chain.saturating_add(1)))
    }

    fn start_put(
        &mut self,
        ctx: &mut Context<'_, Message>,
        client: NodeId,
        client_op: OpId,
        key: Key,
        value: Bytes,
        policy: crate::policy::Policy,
    ) {
        policy.validate();
        let ts = Timestamp::new(ctx.now().saturating_add(self.cfg.clock_skew), self.uid);
        let ov = ObjectVersion::new(key, ts);
        let mut fragments = Vec::new();
        let delta = if self.mode.delta {
            self.try_delta_encode(ctx, key, &value, policy, &mut fragments)
        } else {
            None
        };
        let (meta, chain, is_delta) = match delta {
            Some((meta, chain)) => (meta, chain, true),
            None => {
                if self.mode.share_metadata {
                    // Zero-copy encode: data fragments are windows of the
                    // client's value; only parity is freshly written.
                    self.codec(policy.k, policy.n)
                        .encode_value(&value, &mut fragments);
                } else {
                    // Reference cost model: the seed's allocating stripe
                    // encode.
                    self.codec(policy.k, policy.n)
                        .encode_into(&value, &mut fragments);
                }
                // Recorded in every mode: the delta bench compares a
                // delta-off run's full-stripe bytes against a delta run's
                // mixed ledger.
                let payload: u64 = fragments.iter().map(|f| f.len() as u64).sum();
                ctx.record_event(EV_FULL_FRAG_BYTES, payload);
                let meta = Arc::new(Metadata::new(policy, self.my_dc, value.len()));
                (meta, 0, false)
            }
        };

        let seq = self.next_seq;
        self.next_seq += 1;
        let timer = ctx.schedule_timer(self.cfg.put_timeout, TAG_PUT | seq);
        self.put_seq.insert(seq, ov);
        self.puts.insert(
            ov,
            PutOp {
                client,
                client_op,
                meta: Arc::clone(&meta),
                fragments,
                value,
                chain,
                is_delta,
                kls_complete: BTreeSet::new(),
                frag_acks: BTreeSet::new(),
                distinct_frags: BTreeSet::new(),
                acked: FragMask::new(),
                replied: false,
                timer,
            },
        );

        if is_delta {
            // Delta fast path: the base version's metadata is complete and
            // its locations are reused verbatim, so there is nothing to
            // decide — store the tagged metadata at every KLS and the
            // windowed fragments index-for-index on the base's servers.
            let klss: Vec<NodeId> = self.topo.all_klss().collect();
            for kls in klss {
                ctx.send(
                    kls,
                    Message::StoreMetadata {
                        ov,
                        meta: self.mode.share(&meta),
                    },
                );
            }
            let sends: Vec<(NodeId, Fragment)> = meta
                .assignments()
                // lint:allow(panic-path): assignment indexes are < n == fragments.len()
                .map(|(idx, loc)| (loc.fs, self.put_op(ov).fragments[idx as usize].clone()))
                .collect();
            for (fs, fragment) in sends {
                ctx.send(
                    fs,
                    Message::StoreFragment {
                        ov,
                        meta: self.mode.share(&meta),
                        fragment,
                    },
                );
            }
        } else {
            let klss: Vec<NodeId> = self.topo.all_klss().collect();
            for kls in klss {
                ctx.send(
                    kls,
                    Message::DecideLocs {
                        ov,
                        policy,
                        home_dc: self.my_dc,
                    },
                );
            }
        }
    }

    fn on_locations_decided(
        &mut self,
        ctx: &mut Context<'_, Message>,
        ov: ObjectVersion,
        dc: DataCenterId,
        locations: Vec<crate::metadata::Location>,
    ) {
        let Some(op) = self.puts.get_mut(&ov) else {
            return;
        };
        // `useful_locs`: only the first decision per data center counts.
        // In optimized mode the copy-on-write clone fires at most once per
        // decision wave; every send below is then reference-counted.
        if !Arc::make_mut(&mut op.meta).add_dc_locations(dc, locations) {
            return;
        }
        let meta = Arc::clone(&op.meta);
        // Forward the (possibly still partial) metadata to every KLS
        // immediately — the paper's first latency optimization — and to
        // the FSs of previously decided data centers, whose stored
        // metadata snapshot is now stale. These repeated per-wave updates
        // are the paper's "two sets of location messages and two location
        // updates instead of one" that keep the optimized put above the
        // idealized minimum (§5.2). Fragments themselves are sent exactly
        // once per location.
        let klss: Vec<NodeId> = self.topo.all_klss().collect();
        for kls in klss {
            ctx.send(
                kls,
                Message::StoreMetadata {
                    ov,
                    meta: self.mode.share(&meta),
                },
            );
        }
        let stale_fss: BTreeSet<NodeId> = meta
            .assignments()
            .filter(|(idx, _)| meta.dc_of_fragment(*idx) != dc)
            .map(|(_, loc)| loc.fs)
            .collect();
        for fs in stale_fss {
            ctx.send(
                fs,
                Message::StoreMetadata {
                    ov,
                    meta: self.mode.share(&meta),
                },
            );
        }
        // Send this data center's sibling fragments to its FSs.
        let sends: Vec<(NodeId, Fragment)> = meta
            .assignments()
            .filter(|(idx, _)| meta.dc_of_fragment(*idx) == dc)
            // lint:allow(panic-path): assignment indexes are < n == fragments.len()
            .map(|(idx, loc)| (loc.fs, self.put_op(ov).fragments[idx as usize].clone()))
            .collect();
        for (fs, fragment) in sends {
            ctx.send(
                fs,
                Message::StoreFragment {
                    ov,
                    meta: self.mode.share(&meta),
                    fragment,
                },
            );
        }
    }

    fn on_put_progress(&mut self, ctx: &mut Context<'_, Message>, ov: ObjectVersion) {
        let Some(op) = self.puts.get_mut(&ov) else {
            return;
        };
        // Early success: enough distinct fragments durably stored.
        let distinct = if self.mode.share_metadata {
            op.acked.count()
        } else {
            op.distinct_frags.len()
        };
        if !op.replied && distinct >= usize::from(op.meta.policy().put_success_threshold) {
            op.replied = true;
            let (client, client_op) = (op.client, op.client_op);
            ctx.send(
                client,
                Message::ClientPutReply {
                    op: client_op,
                    ov,
                    success: true,
                },
            );
        }
        // Full acknowledgment: every KLS holds complete metadata and every
        // assigned fragment is durably stored -> the proxy knows the
        // version is AMR.
        // Field-level borrow (not put_op) so puts_fully_acked stays assignable.
        // lint:allow(panic-path): ov taken from a live self.puts entry on this dispatch path
        let op = &self.puts[&ov];
        if !op.meta.is_complete() {
            return;
        }
        let fully_acked = if self.mode.share_metadata {
            // Each assigned fragment index is stored by exactly one FS, so
            // the mask count reaching the assignment count is the same
            // condition as the reference mode's pairwise subset check.
            op.kls_complete.len() == self.total_klss && op.acked.count() == op.meta.location_count()
        } else {
            // Reference cost model: rebuild both sets on every
            // acknowledgment, as the seed protocol core did.
            let all_kls: BTreeSet<NodeId> = self.topo.all_klss().collect();
            let all_assigned: BTreeSet<(NodeId, FragmentIndex)> = op
                .meta
                .assignments()
                .map(|(idx, loc)| (loc.fs, idx))
                .collect();
            op.kls_complete.is_superset(&all_kls) && all_assigned.is_subset(&op.frag_acks)
        };
        if fully_acked {
            self.puts_fully_acked += 1;
            let meta = Arc::clone(&op.meta);
            let (value, chain) = (op.value.clone(), op.chain);
            if self.mode.delta {
                // Only fully-acked stripes become delta bases: every
                // assigned FS then provably holds the (dense, resolved)
                // base fragment a successor delta will need.
                self.stripe_insert(
                    ov.key,
                    CachedStripe {
                        value,
                        ts: ov.ts,
                        meta: Arc::clone(&meta),
                        chain,
                        tick: 0,
                    },
                );
            }
            if self.cfg.put_amr_indication {
                for fs in meta.sibling_fss() {
                    ctx.send(
                        fs,
                        Message::AmrIndication {
                            ov,
                            meta: self.mode.share(&meta),
                        },
                    );
                }
            }
            self.finish_put(ctx, ov, true);
        }
    }

    fn finish_put(
        &mut self,
        ctx: &mut Context<'_, Message>,
        ov: ObjectVersion,
        success_if_unreplied: bool,
    ) {
        let Some(op) = self.puts.remove(&ov) else {
            return;
        };
        ctx.cancel_timer(op.timer);
        self.put_seq.retain(|_, v| *v != ov);
        // A delta put that timed out may have an unresolvable base (e.g.
        // compacted under a concurrent writer). Evict the cached stripe so
        // the client's retry re-anchors with a full encode instead of
        // looping on the same dead base.
        if op.is_delta && !success_if_unreplied {
            self.stripe_cache.remove(&ov.key);
        }
        if !op.replied {
            ctx.send(
                op.client,
                Message::ClientPutReply {
                    op: op.client_op,
                    ov,
                    success: success_if_unreplied,
                },
            );
        }
    }

    // ---- get ----

    fn start_get(&mut self, ctx: &mut Context<'_, Message>, client: NodeId, op: OpId, key: Key) {
        let timer = ctx.schedule_timer(self.cfg.get_timeout, TAG_GET | op);
        let mut views = BTreeMap::new();
        for kls in self.topo.all_klss() {
            views.insert(
                kls,
                KlsView {
                    awaiting: true,
                    ..KlsView::default()
                },
            );
        }
        self.gets.insert(
            op,
            GetOp {
                client,
                key,
                untried: BTreeSet::new(),
                tried: BTreeSet::new(),
                kls_meta: BTreeMap::new(),
                kls_incomplete: BTreeSet::new(),
                views,
                current: None,
                timer,
            },
        );
        let limit = self.cfg.ts_page_size;
        let klss: Vec<NodeId> = self.topo.all_klss().collect();
        for kls in klss {
            ctx.send(
                kls,
                Message::RetrieveTs {
                    op,
                    key,
                    limit,
                    older_than: None,
                },
            );
        }
    }

    fn on_retrieve_ts_reply(
        &mut self,
        ctx: &mut Context<'_, Message>,
        op: OpId,
        from: NodeId,
        versions: Vec<(Timestamp, Arc<Metadata>)>,
        more: bool,
    ) {
        let Some(get) = self.gets.get_mut(&op) else {
            return;
        };
        {
            let view = get.views.entry(from).or_default();
            view.awaiting = false;
            view.exhausted |= !more;
            for (ts, _) in &versions {
                view.reported.insert(*ts);
                view.oldest = Some(match view.oldest {
                    Some(o) if o < *ts => o,
                    _ => *ts,
                });
            }
        }
        for (ts, meta) in versions {
            if !meta.is_complete() {
                get.kls_incomplete.insert(ts);
            }
            match get.kls_meta.get_mut(&ts) {
                Some(m) => {
                    Metadata::merge_shared(m, &meta);
                }
                None => {
                    get.kls_meta.insert(ts, meta);
                    let in_current = get.current.as_ref().is_some_and(|c| c.ts == ts);
                    if !in_current && !get.tried.contains(&ts) {
                        get.untried.insert(ts);
                    }
                }
            }
        }
        if get.current.is_none() {
            self.next_ts(ctx, op);
        } else {
            // New evidence may unblock the current attempt.
            self.maybe_advance(ctx, op);
        }
    }

    /// Non-AMR evidence for `ts` from the KLS side: some KLS reported it
    /// with incomplete metadata, or some KLS provably does not store it.
    fn kls_evidence(get: &GetOp, ts: Timestamp) -> bool {
        get.kls_incomplete.contains(&ts) || get.views.values().any(|v| v.provably_missing(ts))
    }

    /// The paper's `next_ts`: move to the newest untried version, or
    /// finish with failure once every KLS has answered and nothing is
    /// left to try.
    fn next_ts(&mut self, ctx: &mut Context<'_, Message>, op: OpId) {
        let attempt_timeout = self.cfg.get_attempt_timeout;
        let Some(get) = self.gets.get_mut(&op) else {
            return;
        };
        if let Some(old) = get.current.take() {
            ctx.cancel_timer(old.timer);
        }
        match get.untried.iter().next_back().copied() {
            Some(ts) => {
                get.untried.remove(&ts);
                get.tried.insert(ts);
                // lint:allow(panic-path): untried is populated from kls_meta keys
                let meta = Arc::clone(&get.kls_meta[&ts]);
                let ov = ObjectVersion::new(get.key, ts);
                let requests: Vec<(NodeId, FragmentIndex)> =
                    meta.assignments().map(|(idx, loc)| (loc.fs, idx)).collect();
                let timer = ctx.schedule_timer(attempt_timeout, TAG_GET_ATTEMPT | op);
                let no_locations = requests.is_empty();
                get.current = Some(GetAttempt {
                    ts,
                    meta,
                    fragments: BTreeMap::new(),
                    // A version with no locations at all is provably not
                    // AMR and immediately hopeless.
                    saw_bottom: no_locations,
                    requested: requests.len(),
                    responses: 0,
                    timer,
                    timed_out: false,
                });
                if no_locations {
                    self.maybe_advance(ctx, op);
                    return;
                }
                for (fs, idx) in requests {
                    ctx.send(
                        fs,
                        Message::RetrieveFrag {
                            op,
                            ov,
                            fragment: idx,
                        },
                    );
                }
            }
            None => {
                // Nothing left from the pages so far: fetch the next page
                // from every KLS that may hold older versions, or fail
                // once every KLS is exhausted.
                let key = get.key;
                let limit = self.cfg.ts_page_size;
                let mut requests = Vec::new();
                let mut all_exhausted = true;
                for (&kls, view) in get.views.iter_mut() {
                    if view.exhausted {
                        continue;
                    }
                    all_exhausted = false;
                    if !view.awaiting {
                        view.awaiting = true;
                        requests.push((kls, view.oldest));
                    }
                }
                if all_exhausted {
                    self.finish_get(ctx, op, None);
                    return;
                }
                for (kls, older_than) in requests {
                    ctx.send(
                        kls,
                        Message::RetrieveTs {
                            op,
                            key,
                            limit,
                            older_than,
                        },
                    );
                }
                // else: wait for pages or the get timeout.
            }
        }
    }

    fn on_retrieve_frag_reply(
        &mut self,
        ctx: &mut Context<'_, Message>,
        op: OpId,
        ov: ObjectVersion,
        data: Option<Fragment>,
    ) {
        let Some(get) = self.gets.get_mut(&op) else {
            return;
        };
        let Some(current) = get.current.as_mut() else {
            return;
        };
        if current.ts != ov.ts {
            return; // stale reply from an abandoned attempt
        }
        current.responses += 1;
        match data {
            Some(frag) => {
                current.fragments.insert(frag.index(), frag);
            }
            None => current.saw_bottom = true,
        }
        // can_decode?
        let k = usize::from(current.meta.policy().k);
        if current.fragments.len() >= k {
            let mut frags = std::mem::take(&mut self.frag_scratch);
            frags.clear();
            frags.extend(current.fragments.values().cloned());
            let value_len = current.meta.value_len();
            let policy = *current.meta.policy();
            let mut value = std::mem::take(&mut self.decode_scratch);
            self.codec(policy.k, policy.n)
                .decode_into(&frags, value_len, &mut value)
                // lint:allow(panic-path): fragments.len() >= k checked above, all checksum-verified
                .expect("k verified fragments decode");
            let blob = Bytes::copy_from_slice(&value);
            frags.clear();
            self.frag_scratch = frags;
            self.decode_scratch = value;
            // A successful decode that stepped over a ⊥ reply is a
            // degraded read: the value was recoverable but redundancy is
            // impaired (the repair benchmark's quality-of-service signal).
            if self
                .gets
                .get(&op)
                .and_then(|g| g.current.as_ref())
                .is_some_and(|c| c.saw_bottom)
            {
                ctx.record_event(EV_DEGRADED_READS, 1);
            }
            self.finish_get(ctx, op, Some((ov, blob)));
            return;
        }
        self.maybe_advance(ctx, op);
    }

    /// `can_try_earlier` with patience. The *safety* half is the paper's:
    /// the current version may be abandoned only with proof it is not AMR
    /// (incomplete KLS metadata or a ⊥ fragment — the latest AMR version
    /// never produces either, so it is never skipped). The *liveness*
    /// half keeps the proxy from abandoning a decodable version while
    /// replies are still in flight: it moves on only once the attempt is
    /// hopeless — even if every outstanding request answered with a
    /// fragment it could not reach `k` — or the per-attempt patience
    /// expired.
    fn maybe_advance(&mut self, ctx: &mut Context<'_, Message>, op: OpId) {
        let Some(get) = self.gets.get(&op) else {
            return;
        };
        let Some(current) = get.current.as_ref() else {
            return;
        };
        let not_amr = current.saw_bottom
            || Self::kls_evidence(get, current.ts)
            || !current.meta.is_complete();
        let outstanding = current.requested - current.responses;
        let k = usize::from(current.meta.policy().k);
        let hopeless = current.fragments.len() + outstanding < k || current.timed_out;
        if not_amr && hopeless {
            self.next_ts(ctx, op);
        } else if !not_amr && current.timed_out {
            // Cannot safely try an earlier version and the current one is
            // not answering: the get aborts (§3.5).
            self.finish_get(ctx, op, None);
        }
    }

    fn finish_get(
        &mut self,
        ctx: &mut Context<'_, Message>,
        op: OpId,
        result: Option<(ObjectVersion, Bytes)>,
    ) {
        let Some(get) = self.gets.remove(&op) else {
            return;
        };
        ctx.cancel_timer(get.timer);
        if let Some(current) = get.current {
            ctx.cancel_timer(current.timer);
        }
        ctx.send(get.client, Message::ClientGetReply { op, result });
    }
}

impl Actor<Message> for Proxy {
    fn on_message(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: Message) {
        match msg {
            Message::ClientPut {
                op,
                key,
                value,
                policy,
            } => {
                if self.seen_client_ops.insert((from, op)) {
                    self.start_put(ctx, from, op, key, value, policy);
                }
            }
            Message::ClientGet { op, key } => {
                if self.seen_client_ops.insert((from, op)) {
                    self.start_get(ctx, from, op, key);
                }
            }
            Message::DecideLocsReply { ov, dc, locations } => {
                self.on_locations_decided(ctx, ov, dc, locations);
            }
            Message::StoreMetadataReply { ov, complete } => {
                // FSs also acknowledge metadata updates; only KLS
                // acknowledgments feed the AMR condition.
                if let Some(op) = self.puts.get_mut(&ov) {
                    if complete && self.topo.is_kls(from) {
                        op.kls_complete.insert(from);
                    }
                    self.on_put_progress(ctx, ov);
                }
            }
            Message::StoreFragmentReply { ov, fragment } => {
                if let Some(op) = self.puts.get_mut(&ov) {
                    if self.mode.share_metadata {
                        // The reply necessarily comes from the FS the
                        // fragment is assigned to (stores are only ever
                        // sent there), so the index alone is the ack.
                        op.acked.insert(fragment);
                    } else {
                        op.frag_acks.insert((from, fragment));
                        op.distinct_frags.insert(fragment);
                    }
                    self.on_put_progress(ctx, ov);
                }
            }
            Message::RetrieveTsReply {
                op, versions, more, ..
            } => {
                self.on_retrieve_ts_reply(ctx, op, from, versions, more);
            }
            Message::RetrieveFragReply { op, ov, data, .. } => {
                self.on_retrieve_frag_reply(ctx, op, ov, data);
            }
            other => {
                debug_assert!(false, "proxy received unexpected {:?}", other);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, tag: u64) {
        let low = tag & !TAG_MASK;
        match tag & TAG_MASK {
            TAG_PUT => {
                if let Some(ov) = self.put_seq.get(&low).copied() {
                    // Unreached threshold by the deadline: the client gets
                    // "unknown" (failure); convergence may still finish
                    // the version later.
                    self.finish_put(ctx, ov, false);
                }
            }
            TAG_GET => {
                let op = low;
                if self.gets.contains_key(&op) {
                    self.finish_get(ctx, op, None);
                }
            }
            TAG_GET_ATTEMPT => {
                let op = low;
                if let Some(get) = self.gets.get_mut(&op) {
                    if let Some(current) = get.current.as_mut() {
                        current.timed_out = true;
                        self.maybe_advance(ctx, op);
                    }
                }
            }
            _ => debug_assert!(false, "unknown proxy timer tag {tag:#x}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig, ClusterLayout};
    use crate::convergence::ConvergenceOptions;
    use crate::policy::Policy;
    use simnet::{FaultPlan, SimTime};

    /// Tiny cluster: 2 DCs x (1 KLS + 1 FS), policy (2, 4).
    fn tiny_config() -> ClusterConfig {
        let mut cfg = ClusterConfig::paper_default();
        cfg.layout = ClusterLayout {
            dcs: 2,
            kls_per_dc: 1,
            fs_per_dc: 1,
        };
        cfg.policy = Policy::new(2, 4, 2, 2);
        cfg
    }

    #[test]
    fn timestamps_are_unique_and_monotonic_per_proxy() {
        let mut cluster = Cluster::build(tiny_config(), 1);
        cluster.put(b"a", vec![1; 100]);
        cluster.put(b"a", vec![2; 100]);
        cluster.run_to_convergence();
        let client = cluster.client();
        let versions: Vec<_> = client.success_versions().iter().collect();
        assert_eq!(versions.len(), 2);
        assert!(versions[0].ts < versions[1].ts);
        assert_eq!(versions[0].ts.proxy(), versions[1].ts.proxy());
    }

    #[test]
    fn clock_skew_shifts_timestamps() {
        let mut cfg = tiny_config();
        cfg.proxy.clock_skew = SimDuration::from_secs(100);
        let mut cluster = Cluster::build(cfg, 1);
        cluster.put(b"a", vec![1; 10]);
        cluster.run_to_convergence();
        let ov = *cluster.client().success_versions().iter().next().unwrap();
        assert!(
            ov.ts.clock_micros() >= 100_000_000,
            "skew applied: {:?}",
            ov.ts
        );
    }

    #[test]
    fn fully_acked_put_broadcasts_amr_indications() {
        let mut cluster = Cluster::build(tiny_config(), 3);
        cluster.put(b"x", vec![9; 500]);
        let report = cluster.run_to_convergence();
        assert_eq!(cluster.proxy().puts_fully_acked(), 1);
        // One indication per sibling FS (2 FSs in the tiny world).
        assert_eq!(report.metrics.kind("AMRIndication").count, 2);
    }

    #[test]
    fn put_amr_disabled_still_fully_acks_without_indications() {
        let mut cfg = tiny_config();
        cfg.convergence = ConvergenceOptions::naive();
        let mut cluster = Cluster::build(cfg, 3);
        cluster.put(b"x", vec![9; 500]);
        let report = cluster.run_to_convergence();
        assert_eq!(cluster.proxy().puts_fully_acked(), 1);
        assert_eq!(report.metrics.kind("AMRIndication").count, 0);
    }

    #[test]
    fn put_fails_cleanly_when_no_fragments_can_be_stored() {
        // Both FSs unreachable forever: the put can never meet its
        // threshold; the proxy must answer failure at its timeout, and
        // the client will retry until the harness deadline.
        let layout = ClusterLayout {
            dcs: 2,
            kls_per_dc: 1,
            fs_per_dc: 1,
        };
        let mut faults = FaultPlan::none();
        let forever = SimDuration::from_secs(100_000);
        faults.add_node_outage(layout.fs(0, 0), SimTime::ZERO, forever);
        faults.add_node_outage(layout.fs(1, 0), SimTime::ZERO, forever);
        let mut cfg = tiny_config();
        cfg.max_sim_time = SimDuration::from_secs(30);
        let mut cluster = Cluster::build_with_faults(cfg, 5, faults);
        cluster.put(b"doomed", vec![1; 100]);
        let report = cluster.run_to_convergence();
        assert_eq!(report.puts_succeeded, 0);
        assert!(report.puts_attempted >= 2, "client kept retrying");
        assert_eq!(report.amr_versions, 0);
    }

    #[test]
    fn get_of_missing_key_fails_after_all_kls_answer() {
        let mut cluster = Cluster::build(tiny_config(), 6);
        cluster.put(b"exists", vec![3; 64]);
        cluster.run_to_convergence();
        assert_eq!(cluster.get(b"never-written"), None);
        // The failure came from exhaustive KLS answers, not a timeout:
        // well under the 5 s get timeout.
        assert!(cluster.sim().now().as_secs_f64() < 60.0);
    }

    #[test]
    fn get_decodes_from_partial_replies_during_outage() {
        // One FS down: its two fragments are unreachable, but the other
        // FS's two fragments are exactly k and must decode.
        let layout = ClusterLayout {
            dcs: 2,
            kls_per_dc: 1,
            fs_per_dc: 1,
        };
        let outage_start = SimTime::ZERO + SimDuration::from_secs(60);
        let mut faults = FaultPlan::none();
        faults.add_node_outage(layout.fs(1, 0), outage_start, SimDuration::from_secs(600));
        let mut cluster = Cluster::build_with_faults(tiny_config(), 8, faults);
        cluster.put(b"k", vec![0xAB; 4000]);
        cluster.run_to_convergence();
        cluster
            .sim_mut()
            .run_until_time(outage_start + SimDuration::from_secs(5));
        assert_eq!(cluster.get(b"k"), Some(vec![0xAB; 4000]));
    }

    #[test]
    fn proxy_codec_cache_reuses_instances() {
        let topo = crate::topology::Topology::new(vec![(
            vec![simnet::NodeId::new(0)],
            vec![simnet::NodeId::new(1)],
        )]);
        let mut proxy = Proxy::new(topo, DataCenterId::new(0), 0, ProxyConfig::default());
        let a = proxy.codec(2, 4) as *const Codec;
        let b = proxy.codec(2, 4) as *const Codec;
        assert_eq!(a, b, "same parameters reuse the cached codec");
        let c = proxy.codec(4, 12) as *const Codec;
        assert_ne!(a, c);
    }
}
