//! Convergence configuration: the naïve protocol plus the paper's
//! optimizations (§4), each independently switchable.

use simnet::SimDuration;

use crate::repair::RepairOptions;

/// How fragment servers schedule their periodic convergence rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundSchedule {
    /// Every FS fires rounds at the same fixed phase and period. This is
    /// the worst case for the FS-AMR-indication optimization (the paper's
    /// *FSAMR-S* configuration): sibling steps run simultaneously, so the
    /// indications arrive too late to save work.
    Synchronized,
    /// Rounds are "scheduled uniformly randomly between every 30 and 90
    /// seconds" (§4.1), de-synchronizing siblings so one FS's indication
    /// can cancel the others' steps (*FSAMR-U*).
    Unsynchronized,
}

/// Tunable parameters and optimization switches for convergence.
///
/// The presets correspond to the configurations evaluated in the paper:
/// [`naive`](ConvergenceOptions::naive), [`fs_amr_synchronized`]
/// (FSAMR-S), [`fs_amr_unsynchronized`] (FSAMR-U), [`put_amr`] (Fig. 6's
/// *PutAMR*), [`sibling`] (Fig. 6's *Sibling*) and
/// [`all`](ConvergenceOptions::all) (Fig. 5's *PutAMR* bar and Fig. 6's
/// *All*).
///
/// [`fs_amr_synchronized`]: ConvergenceOptions::fs_amr_synchronized
/// [`fs_amr_unsynchronized`]: ConvergenceOptions::fs_amr_unsynchronized
/// [`put_amr`]: ConvergenceOptions::put_amr
/// [`sibling`]: ConvergenceOptions::sibling
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceOptions {
    /// FS-AMR indications (§4.1): an FS that completes verification
    /// broadcasts an AMR indication so its siblings skip their own steps.
    pub fs_amr_indication: bool,
    /// Put-AMR indications (§4.1): the proxy broadcasts AMR indications at
    /// the end of a fully successful put, eliminating convergence entirely
    /// in the failure-free case.
    pub put_amr_indication: bool,
    /// Sibling fragment recovery (§4.2): one FS retrieves `k` fragments
    /// and regenerates *all* missing sibling fragments, pushing them to
    /// the siblings, instead of every FS retrieving `k` fragments itself.
    pub sibling_recovery: bool,
    /// Round scheduling; see [`RoundSchedule`].
    pub schedule: RoundSchedule,
    /// An FS only initiates convergence on versions older than this, so an
    /// in-flight put can finish first ("currently 300 seconds", §4.1; the
    /// naïve protocol has no such delay).
    pub min_age: SimDuration,
    /// Lower bound of the unsynchronized round interval (paper: 30 s).
    pub round_min: SimDuration,
    /// Upper bound of the unsynchronized round interval (paper: 90 s).
    pub round_max: SimDuration,
    /// Fixed period of synchronized rounds (midpoint of the paper's
    /// 30–90 s range).
    pub sync_period: SimDuration,
    /// Exponential-backoff base for repeatedly unsuccessful convergence
    /// steps on one object version (§3.5: "the older the non-AMR object
    /// version, the longer before a convergence step is tried again").
    pub backoff_base: SimDuration,
    /// Cap on the per-version backoff delay.
    pub backoff_cap: SimDuration,
    /// Stop attempting convergence for versions older than this
    /// ("in practice, we set this parameter to two months", §3.5).
    /// `None` retries forever — the experiments use `None` and rely on the
    /// harness's stop predicate instead.
    pub give_up_age: Option<SimDuration>,
    /// How long a sibling-recovering FS accumulates `ConvergeFsReply`
    /// need-reports before retrieving fragments ("waits some time", §4.2).
    pub recovery_wait: SimDuration,
    /// Abandon an in-flight fragment recovery after this long (retried
    /// with backoff at a later round).
    pub recovery_timeout: SimDuration,
    /// Periodic disk-scrub interval: each scrub re-hashes every stored
    /// fragment and drops corrupted ones back into convergence (§3.1's
    /// elided corruption detection). `None` (the default, matching the
    /// paper's experiments) disables scrubbing; corruption is then still
    /// caught on the read path.
    pub scrub_interval: Option<SimDuration>,
    /// How many fragment payload bytes one scrub tick may re-hash before
    /// yielding. Scrubbing walks the store with a persistent cursor, so
    /// its cost per event is proportional to scanned bytes instead of the
    /// whole store (a multi-tick pass resumes where the last tick
    /// stopped). Only meaningful when [`scrub_interval`] is set.
    ///
    /// [`scrub_interval`]: Self::scrub_interval
    pub scrub_chunk_bytes: usize,
    /// Background repair engine configuration. `None` (the default — the
    /// paper has no repair engine, and the pinned sweep digests assume
    /// its absence) runs no repair actors; `Some` adds one
    /// [`RepairActor`](crate::repair::RepairActor) per data center fed by
    /// periodic FS inventory reports.
    pub repair: Option<RepairOptions>,
}

impl ConvergenceOptions {
    fn base() -> Self {
        ConvergenceOptions {
            fs_amr_indication: false,
            put_amr_indication: false,
            sibling_recovery: false,
            schedule: RoundSchedule::Synchronized,
            min_age: SimDuration::ZERO,
            round_min: SimDuration::from_secs(30),
            round_max: SimDuration::from_secs(90),
            sync_period: SimDuration::from_secs(60),
            backoff_base: SimDuration::from_secs(60),
            backoff_cap: SimDuration::from_secs(600),
            give_up_age: None,
            recovery_wait: SimDuration::from_millis(500),
            recovery_timeout: SimDuration::from_secs(5),
            scrub_interval: None,
            scrub_chunk_bytes: 64 * 1024,
            repair: None,
        }
    }

    /// Naïve convergence (§3.4): no indications, no sibling recovery,
    /// synchronized rounds.
    pub fn naive() -> Self {
        ConvergenceOptions::base()
    }

    /// *FSAMR-S*: FS AMR indications with synchronized round starts — the
    /// configuration the paper shows costs ~13 % **more** messages than
    /// naïve, because simultaneous sibling steps make the indications pure
    /// overhead.
    pub fn fs_amr_synchronized() -> Self {
        ConvergenceOptions {
            fs_amr_indication: true,
            ..ConvergenceOptions::base()
        }
    }

    /// *FSAMR-U*: FS AMR indications with unsynchronized rounds (~57 %
    /// fewer messages than naïve in the failure-free case). Also Fig. 6's
    /// *FSAMR* setting.
    pub fn fs_amr_unsynchronized() -> Self {
        ConvergenceOptions {
            fs_amr_indication: true,
            schedule: RoundSchedule::Unsynchronized,
            ..ConvergenceOptions::base()
        }
    }

    /// Fig. 6's *PutAMR* setting: proxy AMR indications only (with the
    /// 300 s minimum age that lets puts finish), unsynchronized rounds.
    pub fn put_amr() -> Self {
        ConvergenceOptions {
            put_amr_indication: true,
            min_age: SimDuration::from_secs(300),
            schedule: RoundSchedule::Unsynchronized,
            ..ConvergenceOptions::base()
        }
    }

    /// Fig. 6's *Sibling* setting: unsynchronized sibling fragment
    /// recovery only.
    pub fn sibling() -> Self {
        ConvergenceOptions {
            sibling_recovery: true,
            schedule: RoundSchedule::Unsynchronized,
            ..ConvergenceOptions::base()
        }
    }

    /// Every optimization enabled (Fig. 5's *PutAMR* bar, Fig. 6's *All*).
    pub fn all() -> Self {
        ConvergenceOptions {
            fs_amr_indication: true,
            put_amr_indication: true,
            sibling_recovery: true,
            schedule: RoundSchedule::Unsynchronized,
            min_age: SimDuration::from_secs(300),
            ..ConvergenceOptions::base()
        }
    }

    /// Returns the backoff delay after `attempts` unsuccessful convergence
    /// steps: `base * 2^(attempts-1)`, capped; zero before any attempt.
    pub fn backoff_delay(&self, attempts: u32) -> SimDuration {
        if attempts == 0 {
            return SimDuration::ZERO;
        }
        let factor = 1u64 << (attempts - 1).min(20);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

impl Default for ConvergenceOptions {
    fn default() -> Self {
        ConvergenceOptions::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_configurations() {
        let naive = ConvergenceOptions::naive();
        assert!(!naive.fs_amr_indication);
        assert!(!naive.put_amr_indication);
        assert!(!naive.sibling_recovery);
        assert_eq!(naive.min_age, SimDuration::ZERO);

        let s = ConvergenceOptions::fs_amr_synchronized();
        assert!(s.fs_amr_indication);
        assert_eq!(s.schedule, RoundSchedule::Synchronized);

        let u = ConvergenceOptions::fs_amr_unsynchronized();
        assert_eq!(u.schedule, RoundSchedule::Unsynchronized);

        let p = ConvergenceOptions::put_amr();
        assert!(p.put_amr_indication && !p.fs_amr_indication);
        assert_eq!(p.min_age, SimDuration::from_secs(300));

        let sib = ConvergenceOptions::sibling();
        assert!(sib.sibling_recovery && !sib.fs_amr_indication);

        let all = ConvergenceOptions::all();
        assert!(all.fs_amr_indication && all.put_amr_indication && all.sibling_recovery);
    }

    #[test]
    fn round_interval_matches_paper() {
        let o = ConvergenceOptions::default();
        assert_eq!(o.round_min, SimDuration::from_secs(30));
        assert_eq!(o.round_max, SimDuration::from_secs(90));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let o = ConvergenceOptions::naive();
        assert_eq!(o.backoff_delay(0), SimDuration::ZERO);
        assert_eq!(o.backoff_delay(1), SimDuration::from_secs(60));
        assert_eq!(o.backoff_delay(2), SimDuration::from_secs(120));
        assert_eq!(o.backoff_delay(3), SimDuration::from_secs(240));
        assert_eq!(o.backoff_delay(4), SimDuration::from_secs(480));
        assert_eq!(o.backoff_delay(5), SimDuration::from_secs(600), "capped");
        assert_eq!(o.backoff_delay(63), SimDuration::from_secs(600));
    }

    #[test]
    fn default_is_fully_optimized() {
        assert_eq!(ConvergenceOptions::default(), ConvergenceOptions::all());
    }
}
