//! The Key Lookup Server (KLS).
//!
//! A KLS maintains two persistent stores (§3.2): a **timestamp store**
//! mapping each key to its object versions, and a **metadata store**
//! mapping each object version to its `(policy, locations)` metadata. It
//! answers location-decision requests for *its own* data center, absorbs
//! metadata stores from proxies, answers convergence probes from fragment
//! servers, and serves the version list for gets.
//!
//! # Location decisions
//!
//! `which_locs` interprets the policy "to balance load and capacity across
//! the FSs" (§3.2). We implement it as a *deterministic* rendezvous
//! placement: the FSs of the data center are ranked by a hash of
//! `(object version, fs)` and fragments are dealt round-robin across that
//! ranking, at most `max_frags_per_fs` each. Every KLS in a DC therefore
//! computes the identical decision for a given object version, which keeps
//! per-DC location merging conflict-free (the paper's "too many locations"
//! inefficiency, §3.5, cannot arise) while still spreading load uniformly
//! across fragment servers over many objects.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use simnet::{Actor, Context, NodeId};

use crate::messages::Message;
use crate::metadata::{Location, Metadata};
use crate::policy::Policy;
use crate::protocol::ProtocolMode;
use crate::topology::{DataCenterId, Topology};
use crate::types::{Key, ObjectVersion, Timestamp};

/// A key lookup server actor.
pub struct Kls {
    topo: Arc<Topology>,
    my_dc: DataCenterId,
    mode: ProtocolMode,
    storets: BTreeMap<Key, BTreeSet<Timestamp>>,
    storemeta: BTreeMap<ObjectVersion, Arc<Metadata>>,
}

impl Kls {
    /// Creates the KLS for data center `my_dc`, adopting the process-wide
    /// [`ProtocolMode::current`].
    pub fn new(topo: Arc<Topology>, my_dc: DataCenterId) -> Self {
        Kls::with_mode(topo, my_dc, ProtocolMode::current())
    }

    /// Creates the KLS with an explicit [`ProtocolMode`] (differential
    /// tests pin modes per cluster instead of racing on the process-wide
    /// switches).
    pub fn with_mode(topo: Arc<Topology>, my_dc: DataCenterId, mode: ProtocolMode) -> Self {
        Kls {
            topo,
            my_dc,
            mode,
            storets: BTreeMap::new(),
            storemeta: BTreeMap::new(),
        }
    }

    /// Deterministic, load-balanced fragment placement for one data
    /// center: `frags_per_dc` locations over the DC's fragment servers,
    /// at most `max_frags_per_fs` per server, ranked by rendezvous hash.
    ///
    /// # Panics
    ///
    /// Panics if the DC lacks capacity for the policy
    /// (`fss * max_frags_per_fs < frags_per_dc`).
    pub fn which_locs(
        topo: &Topology,
        dc: DataCenterId,
        ov: ObjectVersion,
        policy: &Policy,
    ) -> Vec<Location> {
        let fss = topo.fss_in(dc);
        let capacity = fss.len() * policy.max_frags_per_fs as usize;
        assert!(
            capacity >= policy.frags_per_dc as usize,
            "data center {dc} lacks capacity for {policy:?}"
        );
        let mut ranked: Vec<NodeId> = fss.to_vec();
        ranked.sort_by_key(|fs| (Self::placement_hash(ov, *fs), *fs));
        if topo.rack_aware() {
            return Self::rack_aware_locs(topo, dc, &ranked, policy);
        }
        // Deal fragments round-robin across the ranking so the first k
        // (data) fragments spread over distinct servers where possible.
        let mut locs = Vec::with_capacity(policy.frags_per_dc as usize);
        let mut round = 0u8;
        'outer: loop {
            for &fs in &ranked {
                locs.push(Location { fs, disk: round });
                if locs.len() == policy.frags_per_dc as usize {
                    break 'outer;
                }
            }
            round += 1;
            debug_assert!(round < policy.max_frags_per_fs);
        }
        locs
    }

    /// Failure-domain-aware variant of the deal: group the ranked FSs by
    /// rack (racks ordered by first appearance in the ranking, so the
    /// rendezvous hash still rotates which rack leads), then deal one
    /// fragment per rack per sweep, round-robin inside each rack with
    /// `disk` counting a server's placements. When racks ≥ fragments the
    /// first sweep finishes the stripe on all-distinct racks; with fewer
    /// racks the per-rack counts stay within one of each other until a
    /// rack runs out of capacity (max-spread degradation).
    fn rack_aware_locs(
        topo: &Topology,
        dc: DataCenterId,
        ranked: &[NodeId],
        policy: &Policy,
    ) -> Vec<Location> {
        use std::collections::VecDeque;

        let mut rack_order: Vec<usize> = Vec::new();
        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        for &fs in ranked {
            let rack = topo.rack_of(dc, fs).unwrap_or(0);
            match rack_order.iter().position(|&r| r == rack) {
                Some(i) => {
                    if let Some(g) = groups.get_mut(i) {
                        g.push(fs);
                    }
                }
                None => {
                    rack_order.push(rack);
                    groups.push(vec![fs]);
                }
            }
        }
        // Each rack's deal order: its ranked members round-robin, a
        // server's n-th placement landing on disk n.
        let mut queues: Vec<VecDeque<Location>> = groups
            .iter()
            .map(|group| {
                (0..policy.max_frags_per_fs)
                    .flat_map(|disk| group.iter().map(move |&fs| Location { fs, disk }))
                    .collect()
            })
            .collect();
        let want = policy.frags_per_dc as usize;
        let mut locs = Vec::with_capacity(want);
        while locs.len() < want {
            let mut progressed = false;
            for q in &mut queues {
                if locs.len() == want {
                    break;
                }
                if let Some(l) = q.pop_front() {
                    locs.push(l);
                    progressed = true;
                }
            }
            assert!(progressed, "data center {dc} lacks capacity for {policy:?}");
        }
        locs
    }

    fn placement_hash(ov: ObjectVersion, fs: NodeId) -> u64 {
        let mut h = 0x9e37_79b9_7f4a_7c15u64;
        for v in [
            ov.key.as_u64(),
            ov.ts.clock_micros(),
            u64::from(ov.ts.proxy()),
            fs.index() as u64,
        ] {
            h ^= v;
            h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h ^= h >> 31;
        }
        h
    }

    /// Merges `meta` into the metadata store and records the version in
    /// the timestamp store. Returns whether anything new was learned.
    /// Adopting a first sighting is a refcount bump (or, in reference
    /// mode, the seed's deep copy); merging copies-on-write only when the
    /// probe actually teaches this KLS something.
    // lint:hot
    fn absorb(&mut self, ov: ObjectVersion, meta: &Arc<Metadata>) -> bool {
        self.storets.entry(ov.key).or_default().insert(ov.ts);
        match self.storemeta.get_mut(&ov) {
            Some(existing) => Metadata::merge_shared(existing, meta),
            None => {
                let adopted = self.mode.share(meta);
                self.storemeta.insert(ov, adopted);
                true
            }
        }
    }

    // ---- state inspection (used by the harness and tests) ----

    /// The stored metadata for `ov`, if any.
    pub fn meta(&self, ov: ObjectVersion) -> Option<&Metadata> {
        self.storemeta.get(&ov).map(Arc::as_ref)
    }

    /// Whether this KLS stores *complete* metadata for `ov` (the per-KLS
    /// half of the AMR condition).
    pub fn has_complete_meta(&self, ov: ObjectVersion) -> bool {
        self.storemeta.get(&ov).is_some_and(|m| m.is_complete())
    }

    /// Known timestamps for `key`, oldest first.
    pub fn versions_of(&self, key: Key) -> Vec<Timestamp> {
        self.storets
            .get(&key)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Every object version this KLS knows about.
    pub fn known_versions(&self) -> impl Iterator<Item = ObjectVersion> + '_ {
        self.storemeta.keys().copied()
    }
}

impl Actor<Message> for Kls {
    fn on_message(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: Message) {
        match msg {
            // Proxy location request: suggest locations for my DC; the
            // decision is not persisted (the proxy will store chosen
            // metadata explicitly, §3.2 pseudocode).
            Message::DecideLocs {
                ov,
                policy,
                home_dc: _,
            } => {
                let locations = Self::which_locs(&self.topo, self.my_dc, ov, &policy);
                ctx.send(
                    from,
                    Message::DecideLocsReply {
                        ov,
                        dc: self.my_dc,
                        locations,
                    },
                );
            }

            // FS location request during a convergence step. Unlike the
            // proxy path, the KLS persists the decision before replying
            // and pushes it to the sibling FSs (§3.5), so concurrent
            // repairs cannot fan out into divergent decisions.
            Message::FsDecideLocs { ov, meta } => {
                let already_known = self
                    .storemeta
                    .get(&ov)
                    .is_some_and(|m| m.has_dc(self.my_dc));
                // Learn everything the FS knows (including the true value
                // length), then decide locations for my DC if nobody has.
                self.absorb(ov, &meta);
                let locations = match self.storemeta.get(&ov) {
                    Some(m) if m.has_dc(self.my_dc) => {
                        // lint:allow(panic-path): the match guard checked has_dc
                        m.dc_locations(self.my_dc).expect("checked has_dc").to_vec()
                    }
                    _ => Self::which_locs(&self.topo, self.my_dc, ov, meta.policy()),
                };
                let mut fresh = self.mode.share(&meta);
                Arc::make_mut(&mut fresh).add_dc_locations(self.my_dc, locations.clone());
                let newly_decided = !already_known && self.absorb(ov, &fresh);
                ctx.send(
                    from,
                    Message::DecideLocsReply {
                        ov,
                        dc: self.my_dc,
                        locations,
                    },
                );
                // Indicate a *fresh* decision to the sibling FSs so they
                // learn the locations without probing themselves.
                if let Some(meta) = newly_decided
                    .then(|| self.storemeta.get(&ov).map(Arc::clone))
                    .flatten()
                {
                    for fs in meta.sibling_fss() {
                        if fs != from {
                            ctx.send(
                                fs,
                                Message::LocsIndication {
                                    ov,
                                    meta: self.mode.share(&meta),
                                },
                            );
                        }
                    }
                }
            }

            Message::StoreMetadata { ov, meta } => {
                self.absorb(ov, &meta);
                let complete = self.has_complete_meta(ov);
                ctx.send(from, Message::StoreMetadataReply { ov, complete });
            }

            Message::ConvergeKls { ov, meta } => {
                self.absorb(ov, &meta);
                let verified = self.has_complete_meta(ov);
                ctx.send(from, Message::ConvergeKlsReply { ov, verified });
            }

            // A coalesced round's probes: identical to the singular form,
            // entry by entry, replying per entry (replies are not part of
            // the round and are never batched).
            Message::ConvergeKlsBatch { entries } => {
                for (ov, meta) in entries {
                    self.absorb(ov, &meta);
                    let verified = self.has_complete_meta(ov);
                    ctx.send(from, Message::ConvergeKlsReply { ov, verified });
                }
            }

            Message::RetrieveTs {
                op,
                key,
                limit,
                older_than,
            } => {
                // Page newest-first, strictly older than the cursor.
                let mut all = self.versions_of(key);
                all.reverse(); // newest first
                let page: Vec<Timestamp> = all
                    .into_iter()
                    .filter(|ts| older_than.is_none_or(|cur| *ts < cur))
                    .collect();
                let more = page.len() > usize::from(limit);
                let versions: Vec<(Timestamp, Arc<Metadata>)> = page
                    .into_iter()
                    .take(usize::from(limit))
                    .filter_map(|ts| {
                        let ov = ObjectVersion::new(key, ts);
                        self.storemeta.get(&ov).map(|m| (ts, self.mode.share(m)))
                    })
                    .collect();
                ctx.send(
                    from,
                    Message::RetrieveTsReply {
                        op,
                        key,
                        versions,
                        more,
                    },
                );
            }

            other => {
                debug_assert!(false, "KLS received unexpected message {:?}", other);
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, Message>, _tag: u64) {
        // KLSs are purely reactive.
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::SimTime;

    fn topo() -> Arc<Topology> {
        Topology::new(vec![
            (
                vec![NodeId::new(0), NodeId::new(1)],
                vec![NodeId::new(2), NodeId::new(3), NodeId::new(4)],
            ),
            (
                vec![NodeId::new(5), NodeId::new(6)],
                vec![NodeId::new(7), NodeId::new(8), NodeId::new(9)],
            ),
        ])
    }

    fn ov(n: u64) -> ObjectVersion {
        ObjectVersion::new(Key::from_u64(n), Timestamp::new(SimTime::from_micros(n), 0))
    }

    #[test]
    fn which_locs_respects_policy_shape() {
        let t = topo();
        let p = Policy::paper_default();
        let locs = Kls::which_locs(&t, DataCenterId::new(0), ov(1), &p);
        assert_eq!(locs.len(), 6);
        // Every FS belongs to DC0 and hosts exactly two fragments.
        let mut per_fs: BTreeMap<NodeId, usize> = BTreeMap::new();
        for l in &locs {
            assert!(t.fss_in(DataCenterId::new(0)).contains(&l.fs));
            *per_fs.entry(l.fs).or_default() += 1;
        }
        assert!(per_fs.values().all(|&c| c == 2));
        // Disks distinguish collocated fragments.
        let mut pairs: Vec<(NodeId, u8)> = locs.iter().map(|l| (l.fs, l.disk)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 6, "(fs, disk) pairs are distinct");
    }

    #[test]
    fn which_locs_is_deterministic_and_balanced() {
        let t = topo();
        let p = Policy::paper_default();
        let a = Kls::which_locs(&t, DataCenterId::new(0), ov(7), &p);
        let b = Kls::which_locs(&t, DataCenterId::new(0), ov(7), &p);
        assert_eq!(a, b, "same decision everywhere");

        // Across many object versions, first-slot placement spreads.
        let mut first_counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        for i in 0..300 {
            let locs = Kls::which_locs(&t, DataCenterId::new(0), ov(i), &p);
            *first_counts.entry(locs[0].fs).or_default() += 1;
        }
        assert_eq!(first_counts.len(), 3, "every FS leads sometimes");
        for (&fs, &c) in &first_counts {
            assert!((50..=150).contains(&c), "placement skew on {fs}: {c}/300");
        }
    }

    #[test]
    fn which_locs_interleaves_data_fragments() {
        // The first k=4 fragments (data) land on 3 distinct servers, not
        // two fragments each on two servers.
        let t = topo();
        let p = Policy::paper_default();
        let locs = Kls::which_locs(&t, DataCenterId::new(0), ov(3), &p);
        let first_three: BTreeSet<NodeId> = locs[..3].iter().map(|l| l.fs).collect();
        assert_eq!(first_three.len(), 3);
    }

    #[test]
    fn rack_aware_locs_spread_across_racks() {
        // 6 FSs in 3 racks (positions mod 3): the paper policy's 6
        // fragments must land one per rack in the first sweep, then one
        // more per rack, every (fs, disk) pair distinct.
        let t = Topology::with_racks(
            vec![(
                vec![NodeId::new(0)],
                (1..=6).map(NodeId::new).collect::<Vec<_>>(),
            )],
            3,
        );
        let p = Policy::paper_default();
        let dc = DataCenterId::new(0);
        for i in 0..50 {
            let locs = Kls::which_locs(&t, dc, ov(i), &p);
            assert_eq!(locs.len(), 6);
            let first_sweep: BTreeSet<usize> = locs[..3]
                .iter()
                .map(|l| t.rack_of(dc, l.fs).unwrap())
                .collect();
            assert_eq!(first_sweep.len(), 3, "first sweep covers every rack");
            let mut per_rack: BTreeMap<usize, usize> = BTreeMap::new();
            for l in &locs {
                *per_rack.entry(t.rack_of(dc, l.fs).unwrap()).or_default() += 1;
            }
            assert!(
                per_rack.values().all(|&c| c == 2),
                "balanced racks: {per_rack:?}"
            );
            let mut pairs: Vec<(NodeId, u8)> = locs.iter().map(|l| (l.fs, l.disk)).collect();
            pairs.sort_unstable();
            pairs.dedup();
            assert_eq!(pairs.len(), 6, "(fs, disk) pairs are distinct");
        }
    }

    #[test]
    fn single_rack_placement_matches_legacy_deal() {
        let legacy = topo();
        let racked = Topology::with_racks(
            vec![
                (
                    vec![NodeId::new(0), NodeId::new(1)],
                    vec![NodeId::new(2), NodeId::new(3), NodeId::new(4)],
                ),
                (
                    vec![NodeId::new(5), NodeId::new(6)],
                    vec![NodeId::new(7), NodeId::new(8), NodeId::new(9)],
                ),
            ],
            1,
        );
        let p = Policy::paper_default();
        for i in 0..50 {
            assert_eq!(
                Kls::which_locs(&legacy, DataCenterId::new(0), ov(i), &p),
                Kls::which_locs(&racked, DataCenterId::new(0), ov(i), &p),
                "one rack degenerates to the legacy deal"
            );
        }
    }

    #[test]
    #[should_panic(expected = "lacks capacity")]
    fn undersized_dc_panics() {
        let small = Topology::new(vec![(
            vec![NodeId::new(0)],
            vec![NodeId::new(1), NodeId::new(2)],
        )]);
        let p = Policy::paper_default(); // needs 6 per DC, capacity 4
        let _ = Kls::which_locs(&small, DataCenterId::new(0), ov(0), &p);
    }

    #[test]
    fn retrieve_ts_pages_newest_first() {
        use crate::testutil::Driver;
        use simnet::Simulation;

        let t = topo();
        let p = Policy::paper_default();
        let kls_node = NodeId::new(0);

        // Build a KLS with five versions of one key, then page with
        // limit 2 through a driver.
        let key = Key::from_u64(42);
        let ts = |i: u64| Timestamp::new(SimTime::from_micros(i * 1000), 0);
        let mut seed_kls = Kls::new(t.clone(), DataCenterId::new(0));
        for i in 1..=5 {
            let v = ObjectVersion::new(key, ts(i));
            let mut meta = Metadata::new(p, DataCenterId::new(0), 10);
            meta.add_dc_locations(
                DataCenterId::new(0),
                Kls::which_locs(&t, DataCenterId::new(0), v, &p),
            );
            seed_kls.absorb(v, &Arc::new(meta));
        }

        let mut sim = Simulation::new(1);
        let added = sim.add_actor(seed_kls);
        assert_eq!(added, kls_node);
        let driver = sim.add_actor(Driver::new(vec![
            (
                kls_node,
                Message::RetrieveTs {
                    op: 1,
                    key,
                    limit: 2,
                    older_than: None,
                },
            ),
            (
                kls_node,
                Message::RetrieveTs {
                    op: 2,
                    key,
                    limit: 2,
                    older_than: Some(ts(4)),
                },
            ),
            (
                kls_node,
                Message::RetrieveTs {
                    op: 3,
                    key,
                    limit: 10,
                    older_than: Some(ts(2)),
                },
            ),
        ]));
        sim.run_until_quiescent();

        let d: &Driver = sim.actor(driver);
        assert_eq!(d.received.len(), 3);
        let page = |op_want: u64| {
            d.received
                .iter()
                .find_map(|(_, m)| match m {
                    Message::RetrieveTsReply {
                        op, versions, more, ..
                    } if *op == op_want => Some((
                        versions.iter().map(|(ts, _)| *ts).collect::<Vec<_>>(),
                        *more,
                    )),
                    _ => None,
                })
                .expect("reply present")
        };
        // Page 1: newest two, more pending.
        assert_eq!(page(1), (vec![ts(5), ts(4)], true));
        // Cursor at ts(4): next two older.
        assert_eq!(page(2), (vec![ts(3), ts(2)], true));
        // Cursor at ts(2), big limit: the final version, exhausted.
        assert_eq!(page(3), (vec![ts(1)], false));
    }

    #[test]
    fn absorb_accumulates_versions_and_merges() {
        let t = topo();
        let mut kls = Kls::new(t.clone(), DataCenterId::new(0));
        let p = Policy::paper_default();
        let v = ov(1);

        let mut partial = Metadata::new(p, DataCenterId::new(0), 9);
        partial.add_dc_locations(
            DataCenterId::new(0),
            Kls::which_locs(&t, DataCenterId::new(0), v, &p),
        );
        let partial = Arc::new(partial);
        assert!(kls.absorb(v, &partial));
        assert!(!kls.has_complete_meta(v));
        assert_eq!(kls.versions_of(v.key), vec![v.ts]);

        let mut rest = (*partial).clone();
        rest.add_dc_locations(
            DataCenterId::new(1),
            Kls::which_locs(&t, DataCenterId::new(1), v, &p),
        );
        let rest = Arc::new(rest);
        assert!(kls.absorb(v, &rest));
        assert!(kls.has_complete_meta(v));
        assert!(!kls.absorb(v, &rest), "idempotent");
        assert_eq!(kls.known_versions().count(), 1);
    }
}
