//! Determinism lint: a token-level scanner for simulation-hostile code.
//!
//! The whole point of `simnet` is that a run is a pure function of its
//! seed. A handful of std constructs silently break that property when
//! they leak into actor code, and none of them is caught by the compiler:
//!
//! * `HashMap`/`HashSet` — iteration order varies across runs (randomized
//!   SipHash keys), so any protocol decision derived from iterating one is
//!   nondeterministic. Actor state must use `BTreeMap`/`BTreeSet`.
//! * `SystemTime` / `Instant` — wall clocks. Actors must use the virtual
//!   clock ([`Context::now`](simnet::Context::now)).
//! * `thread_rng` / `rand::random` — ambient OS-seeded randomness. Actors
//!   must draw from the simulation's seeded RNG
//!   ([`Context::rng`](simnet::Context::rng)).
//! * `std::thread::spawn` — free-running concurrency whose interleaving
//!   the event queue cannot replay.
//! * `f32`/`f64` map or set keys — NaN breaks `Ord`, and float summation
//!   order then depends on map iteration order.
//!
//! One rule guards performance rather than determinism: functions preceded
//! by a standalone `// lint:hot` marker line are declared allocation-free
//! hot paths (codec inner loops), and `to_vec()` / `Vec::new` inside them
//! is flagged (`hot-path-alloc`) — per-call allocations are exactly what
//! the `_into` codec APIs exist to avoid.
//!
//! The scanner lexes each file just enough to be trustworthy — comments,
//! (raw) string literals and char literals are stripped before matching
//! (via the shared [`rustlite`](crate::rustlite) front-end), so prose and
//! test fixtures never trigger findings — and it walks `crates/*/src`
//! only, skipping `vendor/` and generated code. A finding on a line where
//! the hazard is deliberate and safe is suppressed with
//! `// lint:allow(<rule>)` on the same line, the preceding line, or —
//! when the finding sits on an item behind attributes — the line above
//! the attribute block.
//!
//! Deeper, semantic workspace rules (dispatch exhaustiveness, mode
//! parity, panic paths, unsafe confinement, registry sync) live in
//! [`analysis`](crate::analysis); this module stays the cheap token pass.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::rustlite::{self, allowed, allows_by_line, ident, punct, Spanned, Tok};

/// The rule set: `(name, what it flags and why)`.
pub const RULES: &[(&str, &str)] = &[
    (
        "hash-collections",
        "HashMap/HashSet: iteration order is randomized per process; use BTreeMap/BTreeSet in \
         simulation-visible state",
    ),
    (
        "wall-clock",
        "SystemTime/Instant: wall clocks diverge between runs; use the simulation's virtual clock",
    ),
    (
        "ambient-rng",
        "thread_rng()/rand::random(): OS-seeded randomness is unreproducible; draw from the \
         simulation's seeded RNG",
    ),
    (
        "thread-spawn",
        "std::thread::spawn: free-running threads interleave nondeterministically with the \
         event queue",
    ),
    (
        "float-key",
        "f32/f64 map or set keys: NaN breaks ordering and float key order perturbs iteration",
    ),
    (
        "hot-path-alloc",
        "to_vec()/Vec::new inside a function marked hot: declared allocation-free hot paths \
         must write into caller-owned scratch",
    ),
    (
        "shared-mutable",
        "static mut / Atomic* / lazy_static / OnceLock / LazyLock / OnceCell: cross-actor \
         mutable globals leak state between runs and across parallel shards; keep mutable \
         state inside actors or the engine",
    ),
];

/// Files (matched by path suffix) allowed to hold process-global mutable
/// state for the `shared-mutable` rule. Each is a deliberate, documented
/// process-wide switch — protocol/codec/queue mode toggles read once at
/// construction — not simulation-visible state. Everything else, in
/// particular the parallel engine, must stay free of shared mutability so
/// worker scheduling cannot leak into a run.
pub const SHARED_MUTABLE_ALLOWED: &[&str] = &[
    "crates/simnet/src/engine.rs",
    "crates/pahoehoe/src/protocol.rs",
    "crates/erasure/src/checksum.rs",
    "crates/erasure/src/codec.rs",
];

/// Index of `rule` in [`RULES`] — the bit it occupies in the CLI's
/// per-rule exit code (see `bin/lint.rs`).
pub fn rule_bit(rule: &str) -> Option<usize> {
    RULES.iter().position(|(name, _)| *name == rule)
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (of the offending token).
    pub col: usize,
    /// Rule name (a key of [`RULES`]).
    pub rule: &'static str,
    /// The offending source excerpt.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.rule,
            self.excerpt
        )
    }
}

impl Finding {
    /// This finding as one JSON object (hand-rolled; the workspace builds
    /// offline with no serde).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"file":"{}","line":{},"col":{},"rule":"{}","excerpt":"{}"}}"#,
            json_escape(&self.file.display().to_string()),
            self.line,
            self.col,
            self.rule,
            json_escape(&self.excerpt)
        )
    }
}

/// Escapes a string for embedding in a JSON literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// After a `Map<`/`Set<` at `open`, returns the first type ident of the key
/// parameter (skipping `&`, `mut` and lifetimes).
fn first_type_param(toks: &[Spanned], open: usize) -> Option<&str> {
    let mut j = open + 1;
    loop {
        match toks.get(j).map(|s| &s.tok) {
            Some(Tok::Punct('&')) => j += 1,
            Some(Tok::Punct('\'')) => j += 2, // lifetime: quote + name
            Some(Tok::Punct(',')) => j += 1,  // only reachable after lifetimes
            Some(Tok::Ident(id)) if id == "mut" => j += 1,
            Some(Tok::Ident(id)) => return Some(id),
            _ => return None,
        }
    }
}

/// Token ranges `[start, end)` of the bodies of functions marked hot: a
/// standalone `// lint:hot` line applies to the next `fn` below it. The
/// marker must begin the (trimmed) line, so mentions in strings, trailing
/// comments, or docs never open a span.
fn hot_fn_spans(toks: &[Spanned], src_lines: &[&str]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for marker_line in src_lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with("// lint:hot"))
        .map(|(i, _)| i + 1)
    {
        let Some(fn_idx) = toks
            .iter()
            .position(|s| s.line > marker_line && matches!(&s.tok, Tok::Ident(id) if id == "fn"))
        else {
            continue;
        };
        let Some(open) = (fn_idx..toks.len()).find(|&j| punct(toks, j) == Some('{')) else {
            continue;
        };
        spans.push((open, rustlite::brace_range(toks, open)));
    }
    spans
}

fn scan_tokens(toks: &[Spanned], src_lines: &[&str], file: &Path) -> Vec<Finding> {
    let hot = hot_fn_spans(toks, src_lines);
    let in_hot = |i: usize| hot.iter().any(|&(s, e)| i >= s && i < e);
    let mut findings = Vec::new();
    let mut push = |i: usize, rule: &'static str| {
        let sp = &toks[i];
        findings.push(Finding {
            file: file.to_path_buf(),
            line: sp.line,
            col: sp.col,
            rule,
            excerpt: src_lines
                .get(sp.line - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        });
    };
    for i in 0..toks.len() {
        let Some(id) = ident(toks, i) else { continue };
        match id {
            "HashMap" | "HashSet" => push(i, "hash-collections"),
            "SystemTime" | "Instant" => push(i, "wall-clock"),
            "thread_rng" => push(i, "ambient-rng"),
            "random" if rustlite::preceded_by(toks, i, "rand") => push(i, "ambient-rng"),
            "spawn" if rustlite::preceded_by(toks, i, "thread") => push(i, "thread-spawn"),
            "to_vec" if in_hot(i) && punct(toks, i + 1) == Some('(') => push(i, "hot-path-alloc"),
            "new" if in_hot(i) && rustlite::preceded_by(toks, i, "Vec") => {
                push(i, "hot-path-alloc")
            }
            "static" if ident(toks, i + 1) == Some("mut") => push(i, "shared-mutable"),
            "lazy_static" | "OnceLock" | "LazyLock" | "OnceCell" => push(i, "shared-mutable"),
            // Atomic types by prefix (AtomicBool, AtomicU8, ...); plain
            // `Ordering` never fires — it names a policy, not state.
            id if id.starts_with("Atomic") => push(i, "shared-mutable"),
            _ => {}
        }
        if (id.ends_with("Map") || id.ends_with("Set")) && punct(toks, i + 1) == Some('<') {
            if let Some(key) = first_type_param(toks, i + 1) {
                if key == "f32" || key == "f64" {
                    push(i, "float-key");
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Whether `file` sits on the [`SHARED_MUTABLE_ALLOWED`] allowlist.
fn shared_mutable_allowed_file(file: &Path) -> bool {
    let p = file.to_string_lossy().replace('\\', "/");
    SHARED_MUTABLE_ALLOWED.iter().any(|sfx| p.ends_with(sfx))
}

/// Lints one file's source text.
pub fn lint_source(file: &Path, src: &str) -> Vec<Finding> {
    let code = rustlite::strip_noncode(src);
    let toks = rustlite::tokenize(&code);
    let lines: Vec<&str> = src.lines().collect();
    let allows = allows_by_line(src);
    let shared_ok = shared_mutable_allowed_file(file);
    scan_tokens(&toks, &lines, file)
        .into_iter()
        .filter(|f| !(shared_ok && f.rule == "shared-mutable"))
        .filter(|f| !allowed(&allows, &lines, f.line, f.rule))
        .collect()
}

/// Lints one file on disk.
pub fn lint_file(path: &Path) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    Ok(lint_source(path, &src))
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// reports.
pub(crate) fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**/*.rs` under the workspace root.
/// `vendor/` (offline dependency stand-ins) and everything outside `src`
/// (tests may contain deliberate hazards as fixtures) are out of scope by
/// construction.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for file in files {
        findings.extend(lint_file(&file)?);
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src)
    }

    #[test]
    fn flags_each_hazard_class() {
        let rules = |src: &str| -> Vec<&'static str> {
            lint_str(src).into_iter().map(|f| f.rule).collect()
        };
        assert_eq!(
            rules("use std::collections::HashMap;"),
            vec!["hash-collections"]
        );
        assert_eq!(rules("let s: HashSet<u32> = x;"), vec!["hash-collections"]);
        assert_eq!(rules("let t = Instant::now();"), vec!["wall-clock"]);
        assert_eq!(rules("let t = SystemTime::now();"), vec!["wall-clock"]);
        assert_eq!(rules("let r = rand::thread_rng();"), vec!["ambient-rng"]);
        assert_eq!(rules("let x: u8 = rand::random();"), vec!["ambient-rng"]);
        assert_eq!(rules("std::thread::spawn(|| {});"), vec!["thread-spawn"]);
        assert_eq!(rules("let m: BTreeMap<f64, u32> = x;"), vec!["float-key"]);
        assert_eq!(rules("let m: BTreeSet<f32> = x;"), vec!["float-key"]);
    }

    #[test]
    fn clean_constructs_pass() {
        assert!(lint_str("use std::collections::BTreeMap;").is_empty());
        assert!(
            lint_str("let m: BTreeMap<u64, f64> = x;").is_empty(),
            "float value is fine"
        );
        assert!(
            lint_str("scope.spawn(|| {});").is_empty(),
            "scoped spawn method is fine"
        );
        assert!(
            lint_str("let v = rng.random::<f64>();").is_empty(),
            "seeded rng is fine"
        );
        assert!(lint_str("let t = ctx.now();").is_empty());
    }

    #[test]
    fn comments_strings_and_chars_are_ignored() {
        assert!(lint_str("// HashMap in a comment\n").is_empty());
        assert!(lint_str("/* nested /* HashMap */ still comment */\n").is_empty());
        assert!(lint_str("let s = \"HashMap and thread_rng\";").is_empty());
        assert!(lint_str("let s = r#\"Instant::now() \"quoted\"\"#;").is_empty());
        assert!(lint_str("let c = 'h'; let l: &'static str = x;").is_empty());
        assert!(lint_str("let b = b\"SystemTime\";").is_empty());
    }

    #[test]
    fn lifetimes_do_not_hide_float_keys() {
        assert_eq!(
            lint_str("fn f(m: &RateMap<'a, f64>) {}")[0].rule,
            "float-key"
        );
    }

    #[test]
    fn hot_marker_flags_allocations_in_next_fn_only() {
        // The markers here sit mid-line inside string literals, so no line
        // of THIS file starts with one (the workspace lint scans lint.rs
        // itself and must stay clean).
        let src = "// lint:hot\nfn f(d: &[u8]) -> Vec<u8> { d.to_vec() }\n";
        let findings = lint_str(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "hot-path-alloc");

        let src = "// lint:hot\nfn f() { let v: Vec<u8> = Vec::new(); }\n";
        assert_eq!(lint_str(src)[0].rule, "hot-path-alloc");

        // The span ends at the function's closing brace.
        let src = "// lint:hot\nfn f(d: &mut [u8]) { d[0] ^= 1; }\nfn g(d: &[u8]) -> Vec<u8> { d.to_vec() }\n";
        assert!(lint_str(src).is_empty(), "only the marked fn is scanned");

        // Unmarked allocations pass; `to_vec` without a call does not fire.
        assert!(lint_str("fn f(d: &[u8]) -> Vec<u8> { d.to_vec() }").is_empty());
        let src = "// lint:hot\nfn f() { let to_vec = 1; let _ = to_vec; }\n";
        assert!(lint_str(src).is_empty());

        // A doc mention of the marker mid-line opens no span.
        let src = "//! functions marked `// lint:hot` are scanned\nfn f(d: &[u8]) -> Vec<u8> { d.to_vec() }\n";
        assert!(lint_str(src).is_empty());

        // lint:allow suppresses like any other rule.
        let src =
            "// lint:hot\nfn f(d: &[u8]) -> Vec<u8> {\n    // lint:allow(hot-path-alloc)\n    d.to_vec()\n}\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn allow_suppresses_on_same_and_previous_line() {
        assert!(
            lint_str("let m: HashMap<u32, u32> = x; // lint:allow(hash-collections)").is_empty()
        );
        assert!(
            lint_str("// lint:allow(hash-collections)\nlet m: HashMap<u32, u32> = x;").is_empty()
        );
        // The wrong rule does not suppress.
        assert_eq!(
            lint_str("let m: HashMap<u32, u32> = x; // lint:allow(wall-clock)").len(),
            1
        );
        // An allow two lines up does not suppress (no attributes between).
        assert_eq!(
            lint_str("// lint:allow(hash-collections)\n\nlet m: HashMap<u32, u32> = x;").len(),
            1
        );
    }

    #[test]
    fn allow_reaches_through_attribute_lines() {
        // The satellite fix: a marker above `#[derive(...)]` suppresses a
        // finding on the item line below the attributes.
        let src = "// lint:allow(hash-collections)\n#[derive(Debug, Default)]\n#[allow(dead_code)]\nstruct S { m: HashMap<u32, u32> }\n";
        assert!(lint_str(src).is_empty());
        // But an intervening code line still breaks the chain.
        let src = "// lint:allow(hash-collections)\nstruct T;\nstruct S { m: HashMap<u32, u32> }\n";
        assert_eq!(lint_str(src).len(), 1);
    }

    #[test]
    fn findings_carry_position_and_excerpt() {
        let f = &lint_str("let a = 1;\nlet t = Instant::now();\n")[0];
        assert_eq!(f.line, 2);
        assert_eq!(f.col, 9);
        assert_eq!(f.excerpt, "let t = Instant::now();");
        assert_eq!(
            f.to_json(),
            r#"{"file":"test.rs","line":2,"col":9,"rule":"wall-clock","excerpt":"let t = Instant::now();"}"#
        );
    }

    #[test]
    fn rule_bits_are_stable() {
        assert_eq!(rule_bit("hash-collections"), Some(0));
        assert_eq!(rule_bit("hot-path-alloc"), Some(5));
        assert_eq!(rule_bit("shared-mutable"), Some(6));
        assert_eq!(rule_bit("nonexistent"), None);
    }

    #[test]
    fn flags_shared_mutable_state() {
        let rules = |src: &str| -> Vec<&'static str> {
            lint_str(src).into_iter().map(|f| f.rule).collect()
        };
        assert_eq!(
            rules("static mut COUNTER: u32 = 0;"),
            vec!["shared-mutable"]
        );
        assert_eq!(
            rules("static FLAG: AtomicBool = AtomicBool::new(false);"),
            vec!["shared-mutable", "shared-mutable"]
        );
        assert_eq!(
            rules("let n = AtomicUsize::new(0);"),
            vec!["shared-mutable"]
        );
        assert_eq!(
            rules("static CELL: OnceLock<u32> = OnceLock::new();"),
            vec!["shared-mutable", "shared-mutable"]
        );
        assert_eq!(rules("use std::sync::LazyLock;"), vec!["shared-mutable"]);
        assert_eq!(
            rules("use once_cell::sync::OnceCell;"),
            vec!["shared-mutable"]
        );
        assert_eq!(rules("lazy_static! { }"), vec!["shared-mutable"]);
    }

    #[test]
    fn shared_mutable_ignores_benign_lookalikes() {
        // `Ordering` names a memory-order policy, not shared state.
        assert!(lint_str("use std::sync::atomic::Ordering;").is_empty());
        assert!(lint_str("x.load(Ordering::Relaxed);").is_empty());
        // Immutable statics and interior-mutability-free types are fine.
        assert!(lint_str("static NAME: &str = \"pahoehoe\";").is_empty());
        assert!(lint_str("let c = std::cell::Cell::new(0);").is_empty());
        // Mentions in comments and strings never fire.
        assert!(lint_str("// static mut is forbidden\n").is_empty());
        assert!(lint_str("let s = \"AtomicBool\";").is_empty());
    }

    #[test]
    fn shared_mutable_allowlist_is_path_scoped() {
        let src = "static M: AtomicBool = AtomicBool::new(false);";
        for sfx in SHARED_MUTABLE_ALLOWED {
            let path = PathBuf::from("/work").join(sfx);
            assert!(
                lint_source(&path, src).is_empty(),
                "{sfx} is allowlisted for process-wide switches"
            );
        }
        // The parallel engine is deliberately NOT allowlisted: shared
        // mutability there could leak worker scheduling into a run.
        let findings = lint_source(Path::new("/work/crates/simnet/src/parallel.rs"), src);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.rule == "shared-mutable"));
        // lint:allow still works on non-allowlisted files.
        let allowed_src = "static M: AtomicBool = AtomicBool::new(false); \
                           // lint:allow(shared-mutable)";
        assert!(lint_source(Path::new("/work/crates/x/src/lib.rs"), allowed_src).is_empty());
    }
}
