//! Determinism lint: a token-level scanner for simulation-hostile code.
//!
//! The whole point of `simnet` is that a run is a pure function of its
//! seed. A handful of std constructs silently break that property when
//! they leak into actor code, and none of them is caught by the compiler:
//!
//! * `HashMap`/`HashSet` — iteration order varies across runs (randomized
//!   SipHash keys), so any protocol decision derived from iterating one is
//!   nondeterministic. Actor state must use `BTreeMap`/`BTreeSet`.
//! * `SystemTime` / `Instant` — wall clocks. Actors must use the virtual
//!   clock ([`Context::now`](simnet::Context::now)).
//! * `thread_rng` / `rand::random` — ambient OS-seeded randomness. Actors
//!   must draw from the simulation's seeded RNG
//!   ([`Context::rng`](simnet::Context::rng)).
//! * `std::thread::spawn` — free-running concurrency whose interleaving
//!   the event queue cannot replay.
//! * `f32`/`f64` map or set keys — NaN breaks `Ord`, and float summation
//!   order then depends on map iteration order.
//!
//! One rule guards performance rather than determinism: functions preceded
//! by a standalone `// lint:hot` marker line are declared allocation-free
//! hot paths (codec inner loops), and `to_vec()` / `Vec::new` inside them
//! is flagged (`hot-path-alloc`) — per-call allocations are exactly what
//! the `_into` codec APIs exist to avoid.
//!
//! The scanner lexes each file just enough to be trustworthy — comments,
//! (raw) string literals and char literals are stripped before matching,
//! so prose and test fixtures never trigger findings — and it walks
//! `crates/*/src` only, skipping `vendor/` and generated code. A finding
//! on a line where the hazard is deliberate and safe is suppressed with
//! `// lint:allow(<rule>)` on the same or the preceding line.
//!
//! No external dependencies: the lexer is ~100 lines of hand-rolled state
//! machine, which is all this job needs.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// The rule set: `(name, what it flags and why)`.
pub const RULES: &[(&str, &str)] = &[
    (
        "hash-collections",
        "HashMap/HashSet: iteration order is randomized per process; use BTreeMap/BTreeSet in \
         simulation-visible state",
    ),
    (
        "wall-clock",
        "SystemTime/Instant: wall clocks diverge between runs; use the simulation's virtual clock",
    ),
    (
        "ambient-rng",
        "thread_rng()/rand::random(): OS-seeded randomness is unreproducible; draw from the \
         simulation's seeded RNG",
    ),
    (
        "thread-spawn",
        "std::thread::spawn: free-running threads interleave nondeterministically with the \
         event queue",
    ),
    (
        "float-key",
        "f32/f64 map or set keys: NaN breaks ordering and float key order perturbs iteration",
    ),
    (
        "hot-path-alloc",
        "to_vec()/Vec::new inside a function marked hot: declared allocation-free hot paths \
         must write into caller-owned scratch",
    ),
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (of the offending token).
    pub col: usize,
    /// Rule name (a key of [`RULES`]).
    pub rule: &'static str,
    /// The offending source excerpt.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.rule,
            self.excerpt
        )
    }
}

// ---------------------------------------------------------------------------
// Lexing
// ---------------------------------------------------------------------------

/// Replaces comments, string literals and char literals with spaces
/// (newlines preserved), so the token scan only ever sees code. Handles
/// nested block comments, raw strings with arbitrary `#` counts, byte
/// strings, escapes, and the char-literal/lifetime ambiguity.
fn strip_noncode(src: &str) -> String {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let n = chars.len();

    // Appends `c` as-is if it's a newline (line structure must survive),
    // else a space.
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }

    while i < n {
        let c = chars[i];
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                blank(&mut out, chars[i]);
                i += 1;
            }
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    blank(&mut out, chars[i]);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    blank(&mut out, chars[i]);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"…", r#"…"#, br##"…"##, …
        let raw_start = if c == 'r' && i + 1 < n && (chars[i + 1] == '"' || chars[i + 1] == '#') {
            Some(i + 1)
        } else if c == 'b'
            && i + 2 < n
            && chars[i + 1] == 'r'
            && (chars[i + 2] == '"' || chars[i + 2] == '#')
        {
            Some(i + 2)
        } else {
            None
        };
        if let Some(mut j) = raw_start {
            let mut hashes = 0usize;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && chars[j] == '"' {
                // Blank from `i` through the closing quote+hashes.
                j += 1; // past the opening quote
                loop {
                    if j >= n {
                        break;
                    }
                    if chars[j] == '"'
                        && chars[j + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == '#')
                            .count()
                            == hashes
                    {
                        j += 1 + hashes;
                        break;
                    }
                    j += 1;
                }
                for &ch in &chars[i..j.min(n)] {
                    blank(&mut out, ch);
                }
                i = j;
                continue;
            }
            // `r` not followed by a string: fall through as a normal ident.
        }
        // Plain (byte) string.
        if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"') {
            if c == 'b' {
                blank(&mut out, c);
                i += 1;
            }
            blank(&mut out, chars[i]); // opening quote
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    blank(&mut out, chars[i]);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                    continue;
                }
                let done = chars[i] == '"';
                blank(&mut out, chars[i]);
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // Char literal vs lifetime: a char literal closes with `'` within a
        // couple of chars; a lifetime never does.
        if c == '\'' {
            let is_char_lit = if i + 1 < n && chars[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && chars[i + 2] == '\''
            };
            if is_char_lit {
                blank(&mut out, chars[i]); // opening quote
                i += 1;
                while i < n {
                    if chars[i] == '\\' && i + 1 < n {
                        blank(&mut out, chars[i]);
                        blank(&mut out, chars[i + 1]);
                        i += 2;
                        continue;
                    }
                    let done = chars[i] == '\'';
                    blank(&mut out, chars[i]);
                    i += 1;
                    if done {
                        break;
                    }
                }
                continue;
            }
            // Lifetime: keep the quote as code (the token scan uses it to
            // skip lifetime parameters).
        }
        out.push(c);
        i += 1;
    }
    out
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn tokenize(code: &str) -> Vec<Spanned> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = code.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c == '\n' {
            chars.next();
            line += 1;
            col = 1;
            continue;
        }
        if c.is_whitespace() {
            chars.next();
            col += 1;
            continue;
        }
        if c.is_alphanumeric() || c == '_' {
            let (start_line, start_col) = (line, col);
            let mut ident = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_alphanumeric() || c == '_' {
                    ident.push(c);
                    chars.next();
                    col += 1;
                } else {
                    break;
                }
            }
            out.push(Spanned {
                tok: Tok::Ident(ident),
                line: start_line,
                col: start_col,
            });
            continue;
        }
        out.push(Spanned {
            tok: Tok::Punct(c),
            line,
            col,
        });
        chars.next();
        col += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn ident(toks: &[Spanned], i: usize) -> Option<&str> {
    match toks.get(i).map(|s| &s.tok) {
        Some(Tok::Ident(s)) => Some(s),
        _ => None,
    }
}

fn punct(toks: &[Spanned], i: usize) -> Option<char> {
    match toks.get(i).map(|s| &s.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Whether token `i` is directly preceded by `prefix ::`.
fn preceded_by(toks: &[Spanned], i: usize, prefix: &str) -> bool {
    i >= 3
        && punct(toks, i - 1) == Some(':')
        && punct(toks, i - 2) == Some(':')
        && ident(toks, i - 3) == Some(prefix)
}

/// After a `Map<`/`Set<` at `open`, returns the first type ident of the key
/// parameter (skipping `&`, `mut` and lifetimes).
fn first_type_param(toks: &[Spanned], open: usize) -> Option<&str> {
    let mut j = open + 1;
    loop {
        match toks.get(j).map(|s| &s.tok) {
            Some(Tok::Punct('&')) => j += 1,
            Some(Tok::Punct('\'')) => j += 2, // lifetime: quote + name
            Some(Tok::Punct(',')) => j += 1,  // only reachable after lifetimes
            Some(Tok::Ident(id)) if id == "mut" => j += 1,
            Some(Tok::Ident(id)) => return Some(id),
            _ => return None,
        }
    }
}

/// Token ranges `[start, end)` of the bodies of functions marked hot: a
/// standalone `// lint:hot` line applies to the next `fn` below it. The
/// marker must begin the (trimmed) line, so mentions in strings, trailing
/// comments, or docs never open a span.
fn hot_fn_spans(toks: &[Spanned], src_lines: &[&str]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for marker_line in src_lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with("// lint:hot"))
        .map(|(i, _)| i + 1)
    {
        let Some(fn_idx) = toks
            .iter()
            .position(|s| s.line > marker_line && matches!(&s.tok, Tok::Ident(id) if id == "fn"))
        else {
            continue;
        };
        let Some(open) = (fn_idx..toks.len()).find(|&j| punct(toks, j) == Some('{')) else {
            continue;
        };
        let mut depth = 0usize;
        let mut end = toks.len();
        for j in open..toks.len() {
            match punct(toks, j) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        spans.push((open, end));
    }
    spans
}

fn scan_tokens(toks: &[Spanned], src_lines: &[&str], file: &Path) -> Vec<Finding> {
    let hot = hot_fn_spans(toks, src_lines);
    let in_hot = |i: usize| hot.iter().any(|&(s, e)| i >= s && i < e);
    let mut findings = Vec::new();
    let mut push = |i: usize, rule: &'static str| {
        let sp = &toks[i];
        findings.push(Finding {
            file: file.to_path_buf(),
            line: sp.line,
            col: sp.col,
            rule,
            excerpt: src_lines
                .get(sp.line - 1)
                .map(|l| l.trim().to_string())
                .unwrap_or_default(),
        });
    };
    for i in 0..toks.len() {
        let Some(id) = ident(toks, i) else { continue };
        match id {
            "HashMap" | "HashSet" => push(i, "hash-collections"),
            "SystemTime" | "Instant" => push(i, "wall-clock"),
            "thread_rng" => push(i, "ambient-rng"),
            "random" if preceded_by(toks, i, "rand") => push(i, "ambient-rng"),
            "spawn" if preceded_by(toks, i, "thread") => push(i, "thread-spawn"),
            "to_vec" if in_hot(i) && punct(toks, i + 1) == Some('(') => push(i, "hot-path-alloc"),
            "new" if in_hot(i) && preceded_by(toks, i, "Vec") => push(i, "hot-path-alloc"),
            _ => {}
        }
        if (id.ends_with("Map") || id.ends_with("Set")) && punct(toks, i + 1) == Some('<') {
            if let Some(key) = first_type_param(toks, i + 1) {
                if key == "f32" || key == "f64" {
                    push(i, "float-key");
                }
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// `lint:allow` suppression
// ---------------------------------------------------------------------------

/// Rules allowed per line: `line -> rule names` parsed from
/// `lint:allow(rule, rule)` markers anywhere on the line (they live in
/// comments, so the *raw* source is searched).
fn allows_by_line(src: &str) -> BTreeMap<usize, Vec<String>> {
    let mut out: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (idx, line) in src.lines().enumerate() {
        let mut rest = line;
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rules = out.entry(idx + 1).or_default();
            for rule in rest[..close].split(',') {
                rules.push(rule.trim().to_string());
            }
            rest = &rest[close + 1..];
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Lints one file's source text.
pub fn lint_source(file: &Path, src: &str) -> Vec<Finding> {
    let code = strip_noncode(src);
    let toks = tokenize(&code);
    let lines: Vec<&str> = src.lines().collect();
    let allows = allows_by_line(src);
    let allowed = |line: usize, rule: &str| {
        [line, line.saturating_sub(1)]
            .iter()
            .filter_map(|l| allows.get(l))
            .any(|rules| rules.iter().any(|r| r == rule))
    };
    scan_tokens(&toks, &lines, file)
        .into_iter()
        .filter(|f| !allowed(f.line, f.rule))
        .collect()
}

/// Lints one file on disk.
pub fn lint_file(path: &Path) -> std::io::Result<Vec<Finding>> {
    let src = std::fs::read_to_string(path)?;
    Ok(lint_source(path, &src))
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// reports.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**/*.rs` under the workspace root.
/// `vendor/` (offline dependency stand-ins) and everything outside `src`
/// (tests may contain deliberate hazards as fixtures) are out of scope by
/// construction.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            rs_files(&src, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for file in files {
        findings.extend(lint_file(&file)?);
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(src: &str) -> Vec<Finding> {
        lint_source(Path::new("test.rs"), src)
    }

    #[test]
    fn flags_each_hazard_class() {
        let rules = |src: &str| -> Vec<&'static str> {
            lint_str(src).into_iter().map(|f| f.rule).collect()
        };
        assert_eq!(
            rules("use std::collections::HashMap;"),
            vec!["hash-collections"]
        );
        assert_eq!(rules("let s: HashSet<u32> = x;"), vec!["hash-collections"]);
        assert_eq!(rules("let t = Instant::now();"), vec!["wall-clock"]);
        assert_eq!(rules("let t = SystemTime::now();"), vec!["wall-clock"]);
        assert_eq!(rules("let r = rand::thread_rng();"), vec!["ambient-rng"]);
        assert_eq!(rules("let x: u8 = rand::random();"), vec!["ambient-rng"]);
        assert_eq!(rules("std::thread::spawn(|| {});"), vec!["thread-spawn"]);
        assert_eq!(rules("let m: BTreeMap<f64, u32> = x;"), vec!["float-key"]);
        assert_eq!(rules("let m: BTreeSet<f32> = x;"), vec!["float-key"]);
    }

    #[test]
    fn clean_constructs_pass() {
        assert!(lint_str("use std::collections::BTreeMap;").is_empty());
        assert!(
            lint_str("let m: BTreeMap<u64, f64> = x;").is_empty(),
            "float value is fine"
        );
        assert!(
            lint_str("scope.spawn(|| {});").is_empty(),
            "scoped spawn method is fine"
        );
        assert!(
            lint_str("let v = rng.random::<f64>();").is_empty(),
            "seeded rng is fine"
        );
        assert!(lint_str("let t = ctx.now();").is_empty());
    }

    #[test]
    fn comments_strings_and_chars_are_ignored() {
        assert!(lint_str("// HashMap in a comment\n").is_empty());
        assert!(lint_str("/* nested /* HashMap */ still comment */\n").is_empty());
        assert!(lint_str("let s = \"HashMap and thread_rng\";").is_empty());
        assert!(lint_str("let s = r#\"Instant::now() \"quoted\"\"#;").is_empty());
        assert!(lint_str("let c = 'h'; let l: &'static str = x;").is_empty());
        assert!(lint_str("let b = b\"SystemTime\";").is_empty());
    }

    #[test]
    fn lifetimes_do_not_hide_float_keys() {
        assert_eq!(
            lint_str("fn f(m: &RateMap<'a, f64>) {}")[0].rule,
            "float-key"
        );
    }

    #[test]
    fn hot_marker_flags_allocations_in_next_fn_only() {
        // The markers here sit mid-line inside string literals, so no line
        // of THIS file starts with one (the workspace lint scans lint.rs
        // itself and must stay clean).
        let src = "// lint:hot\nfn f(d: &[u8]) -> Vec<u8> { d.to_vec() }\n";
        let findings = lint_str(src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "hot-path-alloc");

        let src = "// lint:hot\nfn f() { let v: Vec<u8> = Vec::new(); }\n";
        assert_eq!(lint_str(src)[0].rule, "hot-path-alloc");

        // The span ends at the function's closing brace.
        let src = "// lint:hot\nfn f(d: &mut [u8]) { d[0] ^= 1; }\nfn g(d: &[u8]) -> Vec<u8> { d.to_vec() }\n";
        assert!(lint_str(src).is_empty(), "only the marked fn is scanned");

        // Unmarked allocations pass; `to_vec` without a call does not fire.
        assert!(lint_str("fn f(d: &[u8]) -> Vec<u8> { d.to_vec() }").is_empty());
        let src = "// lint:hot\nfn f() { let to_vec = 1; let _ = to_vec; }\n";
        assert!(lint_str(src).is_empty());

        // A doc mention of the marker mid-line opens no span.
        let src = "//! functions marked `// lint:hot` are scanned\nfn f(d: &[u8]) -> Vec<u8> { d.to_vec() }\n";
        assert!(lint_str(src).is_empty());

        // lint:allow suppresses like any other rule.
        let src =
            "// lint:hot\nfn f(d: &[u8]) -> Vec<u8> {\n    // lint:allow(hot-path-alloc)\n    d.to_vec()\n}\n";
        assert!(lint_str(src).is_empty());
    }

    #[test]
    fn allow_suppresses_on_same_and_previous_line() {
        assert!(
            lint_str("let m: HashMap<u32, u32> = x; // lint:allow(hash-collections)").is_empty()
        );
        assert!(
            lint_str("// lint:allow(hash-collections)\nlet m: HashMap<u32, u32> = x;").is_empty()
        );
        // The wrong rule does not suppress.
        assert_eq!(
            lint_str("let m: HashMap<u32, u32> = x; // lint:allow(wall-clock)").len(),
            1
        );
        // An allow two lines up does not suppress.
        assert_eq!(
            lint_str("// lint:allow(hash-collections)\n\nlet m: HashMap<u32, u32> = x;").len(),
            1
        );
    }

    #[test]
    fn findings_carry_position_and_excerpt() {
        let f = &lint_str("let a = 1;\nlet t = Instant::now();\n")[0];
        assert_eq!(f.line, 2);
        assert_eq!(f.col, 9);
        assert_eq!(f.excerpt, "let t = Instant::now();");
    }
}
