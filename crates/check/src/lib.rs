#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Correctness tooling for the Pahoehoe reproduction.
//!
//! Four pillars, corresponding to the four binaries this crate ships:
//!
//! 1. **Invariant-checking model checker** (`cargo run -p check --bin
//!    explore`). The [`invariants`] module defines the protocol properties
//!    the paper claims (durability of acknowledged puts, convergence to
//!    AMR, no resurrection of abandoned versions, checksum integrity,
//!    metrics sanity) as an extensible registry checked after **every**
//!    simulation event via [`simnet::Simulation::set_inspector`]. The
//!    [`explorer`] module sweeps seeds × fault plans × all six
//!    [`ConvergenceOptions`](pahoehoe::ConvergenceOptions) presets,
//!    shrinks any violating run to a minimal `(seed, faults, options)`
//!    triple and dumps its message trace.
//!
//! 2. **Determinism lint** (`cargo run -p check --bin lint`). The [`lint`]
//!    module is a token-level Rust source scanner flagging constructs that
//!    undermine seeded-simulation reproducibility: hash-ordered
//!    collections in actor state, wall clocks, ambient RNGs, thread
//!    spawning and floating-point map keys. `// lint:allow(<rule>)`
//!    suppresses a finding where the hazard is deliberate and safe.
//!
//! 3. **Semantic analyzer** (`cargo run -p check --bin analyze`). The
//!    [`analysis`] module layers five workspace-wide rules over the
//!    shared [`rustlite`] front-end (a dependency-free lexer → fn/match
//!    model → intra-file call graph): dispatch exhaustiveness across
//!    actors, mode-switch test parity, panic-path justification,
//!    unsafe confinement and kind-registry coherence.
//!
//! 4. **Mutation-testing harness** (`cargo run -p check --bin mutate`).
//!    The [`mutate`] module applies protocol-targeted source mutations
//!    (quorum off-by-one, comparison flips, ack drops, `FragMask`
//!    bit-flips, timer-generation skips) in a scratch build tree, runs
//!    the explorer smoke sweep against each mutant, and measures the
//!    invariant **kill-rate** — evidence the invariants would catch a
//!    real protocol bug, not just a claim that they exist.

pub mod analysis;
pub mod explorer;
pub mod invariants;
pub mod lint;
pub mod mutate;
pub mod rustlite;
