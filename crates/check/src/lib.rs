#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Correctness tooling for the Pahoehoe reproduction.
//!
//! Two pillars, corresponding to the two binaries this crate ships:
//!
//! 1. **Invariant-checking model checker** (`cargo run -p check --bin
//!    explore`). The [`invariants`] module defines the protocol properties
//!    the paper claims (durability of acknowledged puts, convergence to
//!    AMR, no resurrection of abandoned versions, checksum integrity,
//!    metrics sanity) as an extensible registry checked after **every**
//!    simulation event via [`simnet::Simulation::set_inspector`]. The
//!    [`explorer`] module sweeps seeds × fault plans × all six
//!    [`ConvergenceOptions`](pahoehoe::ConvergenceOptions) presets,
//!    shrinks any violating run to a minimal `(seed, faults, options)`
//!    triple and dumps its message trace.
//!
//! 2. **Determinism lint** (`cargo run -p check --bin lint`). The [`lint`]
//!    module is a token-level Rust source scanner flagging constructs that
//!    undermine seeded-simulation reproducibility: hash-ordered
//!    collections in actor state, wall clocks, ambient RNGs, thread
//!    spawning and floating-point map keys. `// lint:allow(<rule>)`
//!    suppresses a finding where the hazard is deliberate and safe.

pub mod explorer;
pub mod invariants;
pub mod lint;
